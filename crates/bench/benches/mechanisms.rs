//! Mechanism computational cost: the paper's complexity claim (§5.5).
//!
//! The REF proportional-elasticity mechanism is a closed-form expression
//! (Eq. 13) while the welfare-optimizing alternatives require geometric
//! programming; this bench quantifies the gap across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ref_core::mechanism::{EqualSlowdown, MaxWelfare, Mechanism, ProportionalElasticity};
use ref_core::resource::Capacity;
use ref_core::utility::CobbDouglas;

fn agents(n: usize) -> Vec<CobbDouglas> {
    (0..n)
        .map(|i| {
            let a = 0.15 + 0.7 * (i as f64 / (n.max(2) - 1) as f64);
            CobbDouglas::new(0.5 + 0.1 * i as f64, vec![a * 0.8, (1.0 - a) * 0.8]).unwrap()
        })
        .collect()
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_allocate");
    for n in [2_usize, 4, 8] {
        let pop = agents(n);
        let capacity = Capacity::new(vec![6.0 * n as f64, 3.0 * n as f64]).unwrap();
        group.bench_with_input(
            BenchmarkId::new("proportional_elasticity", n),
            &n,
            |b, _| {
                b.iter(|| {
                    ProportionalElasticity
                        .allocate(std::hint::black_box(&pop), &capacity)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("max_welfare_without_fairness", n),
            &n,
            |b, _| {
                b.iter(|| {
                    MaxWelfare::without_fairness()
                        .allocate(std::hint::black_box(&pop), &capacity)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("max_welfare_with_fairness", n),
            &n,
            |b, _| {
                b.iter(|| {
                    MaxWelfare::with_fairness()
                        .allocate(std::hint::black_box(&pop), &capacity)
                        .unwrap()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("equal_slowdown", n), &n, |b, _| {
            b.iter(|| {
                EqualSlowdown::new()
                    .allocate(std::hint::black_box(&pop), &capacity)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mechanisms
}
criterion_main!(benches);
