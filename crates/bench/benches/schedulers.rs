//! Per-decision cost of the enforcement schedulers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ref_sched::{LotteryScheduler, StrideScheduler, WeightedFairQueue};

fn bench_schedulers(c: &mut Criterion) {
    let weights = vec![0.4, 0.3, 0.2, 0.1];
    let decisions = 10_000_u64;

    let mut group = c.benchmark_group("schedulers");
    group.throughput(Throughput::Elements(decisions));

    group.bench_function("wfq", |b| {
        b.iter(|| {
            let mut q: WeightedFairQueue<u64> = WeightedFairQueue::new(weights.clone()).unwrap();
            for i in 0..decisions {
                for cl in 0..weights.len() {
                    q.enqueue(cl, i, 1.0).unwrap();
                }
                q.dequeue();
            }
            q.service_shares()
        })
    });

    group.bench_function("lottery", |b| {
        b.iter(|| {
            let mut s = LotteryScheduler::new(weights.clone()).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            for _ in 0..decisions {
                s.draw(&mut rng);
            }
            s.service_shares()
        })
    });

    group.bench_function("stride", |b| {
        b.iter(|| {
            let mut s = StrideScheduler::new(weights.clone()).unwrap();
            for _ in 0..decisions {
                s.next_quantum();
            }
            s.service_shares()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers
}
criterion_main!(benches);
