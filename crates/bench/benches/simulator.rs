//! Simulator throughput: cost of the profiling substrate.
//!
//! One Fig. 8/9 reproduction simulates 25 configurations for each of 28
//! workloads, so instructions-per-second of the timing model bounds the
//! wall-clock of the whole evaluation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ref_sim::cache::SetAssociativeCache;
use ref_sim::config::PlatformConfig;
use ref_sim::system::SingleCoreSystem;
use ref_workloads::profiles::by_name;

fn bench_simulator(c: &mut Criterion) {
    let platform = PlatformConfig::asplos14();
    let instructions = 50_000_u64;

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(instructions));
    for name in ["histogram", "dedup"] {
        let bench = by_name(name).unwrap();
        group.bench_function(format!("single_core_{name}"), |b| {
            b.iter(|| {
                let mut sys = SingleCoreSystem::new(&platform);
                sys.run(bench.stream(1), std::hint::black_box(instructions))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cache");
    let accesses = 100_000_u64;
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("l2_access_stream", |b| {
        b.iter(|| {
            let mut cache = SetAssociativeCache::from_config(&platform.l2);
            for i in 0..accesses {
                let _ = cache.access(std::hint::black_box(i * 64 % (1 << 22)));
            }
            cache.stats()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator
}
criterion_main!(benches);
