//! Solver micro-benchmarks: the numerical kernels behind fitting (QR least
//! squares) and the geometric-programming mechanisms (Cholesky-based Newton
//! steps, full GP solves).

use criterion::{criterion_group, criterion_main, Criterion};
use ref_solver::gp::{GeometricProgram, Monomial, Posynomial};
use ref_solver::{lstsq, Cholesky, Matrix, Qr};

fn design_25x3() -> (Matrix, Vec<f64>) {
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for (i, &bw) in [0.8, 1.6, 3.2, 6.4, 12.8].iter().enumerate() {
        for (j, &mb) in [0.125, 0.25, 0.5, 1.0, 2.0].iter().enumerate() {
            rows.push(vec![1.0, f64::ln(bw), f64::ln(mb)]);
            y.push(0.3 * f64::ln(bw) + 0.5 * f64::ln(mb) + 0.01 * (i + j) as f64);
        }
    }
    let flat: Vec<f64> = rows.into_iter().flatten().collect();
    (Matrix::from_vec(25, 3, flat).unwrap(), y)
}

fn bench_solver(c: &mut Criterion) {
    let (x, y) = design_25x3();
    c.bench_function("qr_least_squares_25x3", |b| {
        b.iter(|| {
            Qr::new(std::hint::black_box(&x))
                .unwrap()
                .solve_least_squares(&y)
                .unwrap()
        })
    });
    c.bench_function("lstsq_fit_with_r_squared", |b| {
        b.iter(|| lstsq::fit(std::hint::black_box(&x), &y).unwrap())
    });

    let spd = {
        let a = Matrix::from_fn(16, 16, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let mut m = a.matmul(&a.transpose()).unwrap();
        for i in 0..16 {
            m[(i, i)] += 1.0;
        }
        m
    };
    let rhs = vec![1.0; 16];
    c.bench_function("cholesky_solve_16", |b| {
        b.iter(|| {
            Cholesky::new(std::hint::black_box(&spd))
                .unwrap()
                .solve(&rhs)
                .unwrap()
        })
    });

    c.bench_function("gp_solve_nash_2x2", |b| {
        b.iter(|| {
            let welfare = Monomial::new(1.0, vec![0.6, 0.4, 0.2, 0.8]).unwrap();
            let mut gp = GeometricProgram::minimize(4, welfare.reciprocal().into()).unwrap();
            gp.add_constraint(
                Posynomial::from_monomials(vec![
                    Monomial::new(1.0 / 24.0, vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
                    Monomial::new(1.0 / 24.0, vec![0.0, 0.0, 1.0, 0.0]).unwrap(),
                ])
                .unwrap(),
            )
            .unwrap();
            gp.add_constraint(
                Posynomial::from_monomials(vec![
                    Monomial::new(1.0 / 12.0, vec![0.0, 1.0, 0.0, 0.0]).unwrap(),
                    Monomial::new(1.0 / 12.0, vec![0.0, 0.0, 0.0, 1.0]).unwrap(),
                ])
                .unwrap(),
            )
            .unwrap();
            gp.solve(&[6.0, 3.0, 6.0, 3.0]).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_solver
}
criterion_main!(benches);
