//! Solver micro-benchmarks: the numerical kernels behind fitting (QR least
//! squares) and the geometric-programming mechanisms (Cholesky-based Newton
//! steps, full GP solves), plus the fast-path comparisons — incremental
//! row-append vs from-scratch refactorization, and warm- vs cold-started
//! GP solves. The fast-path groups assert agreement (1e-10 coefficients,
//! 1e-6 allocations) before timing, so a numerical regression fails the
//! bench run rather than silently shifting the numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use ref_solver::gp::{GeometricProgram, GpWarmStart, Monomial, Posynomial};
use ref_solver::{lstsq, Cholesky, Matrix, Qr, UpdatableLstsq};

fn design_25x3() -> (Matrix, Vec<f64>) {
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for (i, &bw) in [0.8, 1.6, 3.2, 6.4, 12.8].iter().enumerate() {
        for (j, &mb) in [0.125, 0.25, 0.5, 1.0, 2.0].iter().enumerate() {
            rows.push(vec![1.0, f64::ln(bw), f64::ln(mb)]);
            y.push(0.3 * f64::ln(bw) + 0.5 * f64::ln(mb) + 0.01 * (i + j) as f64);
        }
    }
    let flat: Vec<f64> = rows.into_iter().flatten().collect();
    (Matrix::from_vec(25, 3, flat).unwrap(), y)
}

fn bench_solver(c: &mut Criterion) {
    let (x, y) = design_25x3();
    c.bench_function("qr_least_squares_25x3", |b| {
        b.iter(|| {
            Qr::new(std::hint::black_box(&x))
                .unwrap()
                .solve_least_squares(&y)
                .unwrap()
        })
    });
    c.bench_function("lstsq_fit_with_r_squared", |b| {
        b.iter(|| lstsq::fit(std::hint::black_box(&x), &y).unwrap())
    });

    let spd = {
        let a = Matrix::from_fn(16, 16, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let mut m = a.matmul(&a.transpose()).unwrap();
        for i in 0..16 {
            m[(i, i)] += 1.0;
        }
        m
    };
    let rhs = vec![1.0; 16];
    c.bench_function("cholesky_solve_16", |b| {
        b.iter(|| {
            Cholesky::new(std::hint::black_box(&spd))
                .unwrap()
                .solve(&rhs)
                .unwrap()
        })
    });

    c.bench_function("gp_solve_nash_2x2", |b| {
        b.iter(|| {
            let welfare = Monomial::new(1.0, vec![0.6, 0.4, 0.2, 0.8]).unwrap();
            let mut gp = GeometricProgram::minimize(4, welfare.reciprocal().into()).unwrap();
            gp.add_constraint(
                Posynomial::from_monomials(vec![
                    Monomial::new(1.0 / 24.0, vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
                    Monomial::new(1.0 / 24.0, vec![0.0, 0.0, 1.0, 0.0]).unwrap(),
                ])
                .unwrap(),
            )
            .unwrap();
            gp.add_constraint(
                Posynomial::from_monomials(vec![
                    Monomial::new(1.0 / 12.0, vec![0.0, 1.0, 0.0, 0.0]).unwrap(),
                    Monomial::new(1.0 / 12.0, vec![0.0, 0.0, 0.0, 1.0]).unwrap(),
                ])
                .unwrap(),
            )
            .unwrap();
            gp.solve(&[6.0, 3.0, 6.0, 3.0]).unwrap()
        })
    });
}

/// Epoch-fit observation stream: raw 2-resource inputs and responses.
fn epoch_stream(epochs: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let inputs: Vec<Vec<f64>> = (0..epochs)
        .map(|i| {
            let a = 1.0 + 23.0 * ((i % 7) as f64) / 6.0;
            let b = 0.5 + 11.5 * ((i % 5) as f64) / 4.0;
            vec![a.ln(), b.ln()]
        })
        .collect();
    let ys: Vec<f64> = inputs
        .iter()
        .enumerate()
        .map(|(i, row)| 0.6 * row[0] + 0.4 * row[1] + 0.01 * (1.0 + i as f64).ln())
        .collect();
    (inputs, ys)
}

fn bench_append_vs_refactor(c: &mut Criterion) {
    const EPOCHS: usize = 48;
    let (inputs, ys) = epoch_stream(EPOCHS);

    // Agreement gate: the final-epoch coefficients of both paths must
    // match to 1e-10 before any timing is trusted.
    let design = lstsq::design_with_intercept(&inputs).unwrap();
    let batch = lstsq::fit(&design, &ys).unwrap();
    let mut triangle = UpdatableLstsq::new(3);
    for (row, y) in inputs.iter().zip(&ys) {
        triangle.append(&[1.0, row[0], row[1]], *y).unwrap();
    }
    let incr = triangle.solve().unwrap();
    for (a, b) in batch.coefficients().iter().zip(incr.coefficients()) {
        assert!(
            (a - b).abs() < 1e-10,
            "incremental fit diverged from batch fit: {a} vs {b}"
        );
    }

    let mut group = c.benchmark_group("append_vs_refactor");
    group.bench_function("refactor_every_epoch", |b| {
        b.iter(|| {
            let mut last = 0.0;
            for m in 4..=EPOCHS {
                let design =
                    lstsq::design_with_intercept(std::hint::black_box(&inputs[..m])).unwrap();
                let fit = lstsq::fit(&design, &ys[..m]).unwrap();
                last = fit.coefficients()[1];
            }
            last
        })
    });
    group.bench_function("append_every_epoch", |b| {
        b.iter(|| {
            let mut triangle = UpdatableLstsq::new(3);
            let mut last = 0.0;
            for (m, (row, y)) in inputs.iter().zip(&ys).enumerate() {
                triangle
                    .append(std::hint::black_box(&[1.0, row[0], row[1]]), *y)
                    .unwrap();
                if m + 1 >= 4 {
                    last = triangle.solve().unwrap().coefficients()[1];
                }
            }
            last
        })
    });
    group.finish();
}

fn paper_nash_gp() -> (GeometricProgram, Vec<f64>) {
    let welfare = Monomial::new(1.0, vec![0.6, 0.4, 0.2, 0.8]).unwrap();
    let mut gp = GeometricProgram::minimize(4, welfare.reciprocal().into()).unwrap();
    gp.add_constraint(
        Posynomial::from_monomials(vec![
            Monomial::new(1.0 / 24.0, vec![1.0, 0.0, 0.0, 0.0]).unwrap(),
            Monomial::new(1.0 / 24.0, vec![0.0, 0.0, 1.0, 0.0]).unwrap(),
        ])
        .unwrap(),
    )
    .unwrap();
    gp.add_constraint(
        Posynomial::from_monomials(vec![
            Monomial::new(1.0 / 12.0, vec![0.0, 1.0, 0.0, 0.0]).unwrap(),
            Monomial::new(1.0 / 12.0, vec![0.0, 0.0, 0.0, 1.0]).unwrap(),
        ])
        .unwrap(),
    )
    .unwrap();
    (gp, vec![6.0, 3.0, 6.0, 3.0])
}

fn bench_warm_vs_cold_gp(c: &mut Criterion) {
    let (gp, x0) = paper_nash_gp();
    let cold = gp.solve(&x0).unwrap();
    let hint = GpWarmStart::from_solution(&cold);

    // Agreement gate: warm-started allocations must match the cold solve
    // to 1e-6 before any timing is trusted.
    let warm = gp.solve_warm(&x0, Some(&hint)).unwrap();
    for (a, b) in cold.x.iter().zip(&warm.x) {
        assert!(
            (a - b).abs() < 1e-6,
            "warm-started GP diverged from cold solve: {a} vs {b}"
        );
    }

    let mut group = c.benchmark_group("warm_vs_cold_gp");
    group.bench_function("cold_start", |b| {
        b.iter(|| gp.solve(std::hint::black_box(&x0)).unwrap())
    });
    group.bench_function("warm_start", |b| {
        b.iter(|| {
            gp.solve_warm(std::hint::black_box(&x0), Some(&hint))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_solver, bench_append_vs_refactor, bench_warm_vs_cold_gp
}
criterion_main!(benches);
