//! Ablation: profiling-grid density vs fit stability.
//!
//! The paper samples 25 configurations (5 cache sizes x 5 bandwidths).
//! This ablation refits selected workloads on 3x3, 5x5 and 7x7 grids and
//! reports how much the re-scaled elasticities move — quantifying how much
//! profiling effort the mechanism actually needs.

use ref_bench::pipeline::{fit_points, init_jobs};
use ref_core::fitting::fit_cobb_douglas;
use ref_sim::config::{Bandwidth, CacheSize};
use ref_workloads::profiler::{profile, ProfilerOptions};
use ref_workloads::profiles::by_name;

fn geometric_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect()
}

fn main() {
    init_jobs();
    let workloads = ["raytrace", "histogram", "canneal", "dedup", "fft"];
    // 5x5 (the paper's grid) first so sparser/denser grids report drift
    // against it.
    let densities = [5_usize, 3, 7];

    println!("Ablation: grid density vs fitted (re-scaled) elasticities");
    println!();
    println!(
        "{:<12} {:>6} {:>9} {:>9} {:>8} {:>8}",
        "workload", "grid", "a_mem", "a_cache", "R^2", "configs"
    );
    for name in workloads {
        let bench = by_name(name).expect("known workload");
        let mut reference: Option<f64> = None;
        for n in densities {
            let opts = ProfilerOptions {
                warmup_instructions: 80_000,
                instructions: 150_000,
                cache_sizes: geometric_grid(128.0 * 1024.0, 2048.0 * 1024.0, n)
                    .into_iter()
                    .map(|b| CacheSize::from_bytes((b / 512.0).round() as u64 * 512))
                    .collect(),
                bandwidths: geometric_grid(0.8, 12.8, n)
                    .into_iter()
                    .map(Bandwidth::from_gb_per_sec)
                    .collect(),
                ..ProfilerOptions::default()
            };
            let grid = profile(bench, &opts);
            let fit = fit_cobb_douglas(&fit_points(&grid)).expect("full-rank grid");
            let u = fit.utility().rescaled();
            let drift = match reference {
                Some(ref5) if n != 5 => format!("  (drift vs 5x5: {:+.3})", u.elasticity(1) - ref5),
                _ => String::new(),
            };
            if n == 5 {
                reference = Some(u.elasticity(1));
            }
            println!(
                "{:<12} {:>4}x{} {:>9.3} {:>9.3} {:>8.3} {:>8}{}",
                name,
                n,
                n,
                u.elasticity(0),
                u.elasticity(1),
                fit.r_squared(),
                n * n,
                drift
            );
        }
        println!();
    }
    println!("expected shape: elasticities stable to a few hundredths from 3x3 up,");
    println!("so the paper's 25-configuration profile is comfortably sufficient.");
}
