//! Ablation: DRAM page policy vs fitted elasticities.
//!
//! The paper's Table-1 controller is closed-page. This ablation refits
//! representative workloads under an open-page controller (row-buffer
//! hits pay CAS-only latency) and reports how the elasticities and the
//! C/M classification move — probing whether REF's inputs are robust to
//! the memory controller's policy.

use ref_bench::pipeline::{fit_points, init_jobs};
use ref_core::fitting::fit_cobb_douglas;
use ref_sim::config::{PagePolicy, PlatformConfig};
use ref_sim::system::SingleCoreSystem;
use ref_workloads::profiler::{ProfileGrid, ProfilePoint, ProfilerOptions};
use ref_workloads::profiles::{by_name, Benchmark};

/// Profiles under an explicit page policy (the library profiler always
/// uses the platform default, i.e. closed page).
fn profile_with_policy(
    bench: &Benchmark,
    opts: &ProfilerOptions,
    policy: PagePolicy,
) -> ProfileGrid {
    let base = PlatformConfig::asplos14().with_page_policy(policy);
    let mut points = Vec::new();
    for &bandwidth in &opts.bandwidths {
        for &cache in &opts.cache_sizes {
            let mut platform = base.with_l2_size(cache).with_bandwidth(bandwidth);
            platform.core.dependent_load_fraction = bench.params.dependent_fraction;
            let warmup = (opts.warmup_instructions as f64
                * (0.30 / bench.params.memory_fraction).max(1.0)) as u64;
            let mut system = SingleCoreSystem::new(&platform);
            let report = system.run_with_warmup(bench.stream(opts.seed), warmup, opts.instructions);
            points.push(ProfilePoint {
                cache,
                bandwidth,
                ipc: report.ipc(),
            });
        }
    }
    ProfileGrid {
        workload: bench.name.to_string(),
        points,
    }
}

fn main() {
    init_jobs();
    let opts = ProfilerOptions {
        warmup_instructions: 80_000,
        instructions: 150_000,
        ..ProfilerOptions::default()
    };
    let workloads = ["raytrace", "histogram", "canneal", "dedup", "streamcluster"];

    println!("Ablation: closed-page vs open-page DRAM controller");
    println!();
    println!(
        "{:<14} {:>12} {:>9} {:>9} {:>7}",
        "workload", "policy", "a_mem", "a_cache", "class"
    );
    for name in workloads {
        let bench = by_name(name).expect("known workload");
        for (label, policy) in [
            ("closed-page", PagePolicy::ClosedPage),
            ("open-page", PagePolicy::OpenPage),
        ] {
            let grid = profile_with_policy(bench, &opts, policy);
            let fit = fit_cobb_douglas(&fit_points(&grid)).expect("full-rank grid");
            let u = fit.utility().rescaled();
            let class = if u.elasticity(1) > 0.5 { "C" } else { "M" };
            println!(
                "{:<14} {:>12} {:>9.3} {:>9.3} {:>7}",
                name,
                label,
                u.elasticity(0),
                u.elasticity(1),
                class
            );
        }
        println!();
    }
    println!("expected shape: open-page shifts streaming workloads' latencies down");
    println!("but leaves the C/M classification — and hence REF's allocations — intact.");
}
