//! Ablation: hardware prefetching vs fitted elasticities.
//!
//! A next-line prefetcher converts part of a streaming workload's latency
//! exposure into pure bandwidth demand. This ablation refits representative
//! workloads with the prefetcher enabled and reports how the elasticities
//! move — probing whether REF's inputs are robust to the core's prefetch
//! configuration.

use ref_bench::pipeline::{fit_points, init_jobs};
use ref_core::fitting::fit_cobb_douglas;
use ref_sim::config::PlatformConfig;
use ref_sim::system::SingleCoreSystem;
use ref_workloads::profiler::{ProfileGrid, ProfilePoint, ProfilerOptions};
use ref_workloads::profiles::{by_name, Benchmark};

fn profile_with_prefetch(bench: &Benchmark, opts: &ProfilerOptions, prefetch: bool) -> ProfileGrid {
    let base = PlatformConfig::asplos14().with_next_line_prefetch(prefetch);
    let mut points = Vec::new();
    for &bandwidth in &opts.bandwidths {
        for &cache in &opts.cache_sizes {
            let mut platform = base.with_l2_size(cache).with_bandwidth(bandwidth);
            platform.core.dependent_load_fraction = bench.params.dependent_fraction;
            let warmup = (opts.warmup_instructions as f64
                * (0.30 / bench.params.memory_fraction).max(1.0)) as u64;
            let mut system = SingleCoreSystem::new(&platform);
            let report = system.run_with_warmup(bench.stream(opts.seed), warmup, opts.instructions);
            points.push(ProfilePoint {
                cache,
                bandwidth,
                ipc: report.ipc(),
            });
        }
    }
    ProfileGrid {
        workload: bench.name.to_string(),
        points,
    }
}

fn main() {
    init_jobs();
    let opts = ProfilerOptions {
        warmup_instructions: 80_000,
        instructions: 150_000,
        ..ProfilerOptions::default()
    };
    let workloads = [
        "raytrace",
        "histogram",
        "streamcluster",
        "dedup",
        "ocean_cp",
    ];

    println!("Ablation: next-line prefetcher off vs on");
    println!();
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>7} {:>10}",
        "workload", "prefetch", "a_mem", "a_cache", "class", "peak IPC"
    );
    for name in workloads {
        let bench = by_name(name).expect("known workload");
        for prefetch in [false, true] {
            let grid = profile_with_prefetch(bench, &opts, prefetch);
            let fit = fit_cobb_douglas(&fit_points(&grid)).expect("full-rank grid");
            let u = fit.utility().rescaled();
            let class = if u.elasticity(1) > 0.5 { "C" } else { "M" };
            let peak = grid
                .points
                .iter()
                .map(|p| p.ipc)
                .fold(f64::NEG_INFINITY, f64::max);
            println!(
                "{:<14} {:>10} {:>9.3} {:>9.3} {:>7} {:>10.3}",
                name,
                if prefetch { "on" } else { "off" },
                u.elasticity(0),
                u.elasticity(1),
                class,
                peak
            );
        }
        println!();
    }
    println!("expected shape: prefetching lifts streaming workloads' IPC and shifts");
    println!("some of their latency sensitivity into bandwidth demand, without");
    println!("flipping any C/M class — REF's inputs are robust to the prefetcher.");
}
