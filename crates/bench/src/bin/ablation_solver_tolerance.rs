//! Ablation: geometric-programming tolerance vs the closed form.
//!
//! §4.2 proves the REF closed form *is* the Nash-welfare optimum for
//! re-scaled utilities. This ablation solves that optimum with the interior
//! point method at decreasing duality-gap tolerances and reports distance
//! to the closed form and iteration counts — validating both the solver and
//! the paper's "computationally trivial" contrast.

use ref_bench::pipeline::capacity_for_agents;
use ref_core::mechanism::{Mechanism, ProportionalElasticity};
use ref_core::utility::CobbDouglas;
use ref_solver::barrier::BarrierOptions;
use ref_solver::gp::{GeometricProgram, Monomial, Posynomial};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Re-scaled agents: the GP optimum must equal the closed form.
    let agents = vec![
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        CobbDouglas::new(1.0, vec![0.5, 0.5])?,
    ];
    let capacity = capacity_for_agents(4);
    let exact = ProportionalElasticity.allocate(&agents, &capacity)?;

    println!("Ablation: interior-point tolerance vs REF closed form");
    println!();
    println!(
        "{:>12} {:>14} {:>18}",
        "tolerance", "outer iters", "max |x - closed|"
    );
    for tol in [1e-2, 1e-4, 1e-6, 1e-8] {
        let n = agents.len();
        let mut exps = vec![0.0; 2 * n];
        for (i, a) in agents.iter().enumerate() {
            exps[2 * i] = a.elasticity(0);
            exps[2 * i + 1] = a.elasticity(1);
        }
        let welfare = Monomial::new(1.0, exps)?;
        let mut gp = GeometricProgram::minimize(2 * n, welfare.reciprocal().into())?;
        for r in 0..2 {
            let terms: Vec<Monomial> = (0..n)
                .map(|i| {
                    let mut e = vec![0.0; 2 * n];
                    e[2 * i + r] = 1.0;
                    Monomial::new(1.0 / capacity.get(r), e).expect("valid monomial")
                })
                .collect();
            gp.add_constraint(Posynomial::from_monomials(terms)?)?;
        }
        gp.set_options(BarrierOptions {
            tolerance: tol,
            ..BarrierOptions::default()
        });
        let start = [
            capacity.get(0) / n as f64 * 0.9,
            capacity.get(1) / n as f64 * 0.9,
        ]
        .repeat(n);
        let sol = gp.solve(&start)?;
        let mut err: f64 = 0.0;
        for i in 0..n {
            for r in 0..2 {
                err = err.max((sol.x[2 * i + r] - exact.bundle(i).get(r)).abs());
            }
        }
        println!("{tol:>12.0e} {:>14} {err:>18.2e}", sol.outer_iterations);
    }
    println!();
    println!("expected shape: error falls with tolerance; even loose tolerances land");
    println!("within hundredths of the closed form, which REF computes in microseconds.");
    Ok(())
}
