//! Ablation: way-partitioning granularity.
//!
//! REF computes continuous cache shares, but hardware enforces them in
//! whole L2 ways. This ablation rounds the REF allocation to 4-, 8-, 16-
//! and 32-way partitions and reports each agent's utility loss relative to
//! the continuous allocation — the cost of coarse partitioning hardware.

use ref_bench::pipeline::capacity_for_agents;
use ref_core::mechanism::{Mechanism, ProportionalElasticity};
use ref_core::resource::Bundle;
use ref_core::utility::{CobbDouglas, Utility};
use ref_sim::cache::partition_ways;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let agents = vec![
        CobbDouglas::new(1.0, vec![0.30, 0.70])?, // cache heavy
        CobbDouglas::new(1.0, vec![0.85, 0.15])?, // bandwidth heavy
        CobbDouglas::new(1.0, vec![0.55, 0.45])?,
        CobbDouglas::new(1.0, vec![0.45, 0.55])?,
    ];
    let capacity = capacity_for_agents(4);
    let continuous = ProportionalElasticity.allocate(&agents, &capacity)?;
    let cache_shares: Vec<f64> = continuous
        .bundles()
        .iter()
        .map(|b| b.get(1) / capacity.get(1))
        .collect();

    println!("Ablation: rounding REF cache shares to whole L2 ways");
    println!();
    println!("continuous cache shares: {:?}", rounded(&cache_shares));
    println!();
    println!(
        "{:>6} | {:<24} | {:>22}",
        "ways", "rounded shares", "worst utility loss (%)"
    );
    for total_ways in [4_usize, 8, 16, 32] {
        let ways = partition_ways(total_ways, &cache_shares);
        let rounded_shares: Vec<f64> = ways.iter().map(|&w| w as f64 / total_ways as f64).collect();
        let mut worst_loss: f64 = 0.0;
        for (i, agent) in agents.iter().enumerate() {
            let exact = agent.value(continuous.bundle(i));
            let coarse = Bundle::new(vec![
                continuous.bundle(i).get(0),
                rounded_shares[i] * capacity.get(1),
            ])?;
            let loss = (1.0 - agent.value(&coarse) / exact) * 100.0;
            worst_loss = worst_loss.max(loss);
        }
        println!(
            "{:>6} | {:<24} | {:>22.2}",
            total_ways,
            format!("{:?}", ways),
            worst_loss
        );
    }
    println!();
    println!("expected shape: losses shrink roughly inversely with way count; the");
    println!("paper's 8-way L2 already keeps the worst-case utility loss small.");
    Ok(())
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
