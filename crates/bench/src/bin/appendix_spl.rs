//! Appendix A / §4.3: strategy-proofness in the large.
//!
//! Reproduces the paper's experiment: agents with uniformly random
//! elasticities; for each system size, a strategic agent computes its best
//! response (Eq. 15) and we measure the utility gain from lying and how far
//! the best report deviates from the truth. The paper finds tens of agents
//! suffice for SPL (64 agents being the motivating example).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use ref_core::resource::Capacity;
use ref_core::spl::{best_response, max_gain_from_lying};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Capacity::new(vec![100.0, 12.0])?; // >100 GB/s server (§4.3)
    let mut rng = ChaCha8Rng::seed_from_u64(0x59A7);

    println!("Appendix A: strategy-proofness in the large");
    println!("agents draw elasticities uniformly at random; strategic agent best-responds");
    println!();
    println!(
        "{:>7} {:>16} {:>18}",
        "agents", "max gain (%)", "report deviation"
    );
    for n in [2_usize, 4, 8, 16, 32, 64] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(0.05..0.95);
                vec![a, 1.0 - a]
            })
            .collect();
        let worst = max_gain_from_lying(&rows, &capacity)?;
        // Deviation of the first agent's best report from its truth.
        let totals: Vec<f64> = (0..2)
            .map(|r| rows.iter().map(|row| row[r]).sum::<f64>() - rows[0][r])
            .collect();
        let g = best_response(&rows[0], &totals, capacity.as_slice())?;
        println!(
            "{n:>7} {:>16.4} {:>18.4}",
            worst * 100.0,
            g.report_deviation(&rows[0])
        );
    }
    println!();
    println!("expected shape: gain and deviation fall toward zero as agents increase;");
    println!("with 64 agents a strategic agent does not deviate from its true elasticity.");
    Ok(())
}
