//! Supplementary experiment: Bubble-Up-style sensitivity curves (§4.4).
//!
//! Co-runs representative workloads against a tunable-pressure bubble and
//! prints each target's IPC degradation curve — the alternative profiling
//! route the paper cites for machines without partitionable hardware.

use ref_bench::pipeline::init_jobs;
use ref_workloads::bubble::bubble_profile;
use ref_workloads::profiles::by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    init_jobs();
    let pressures = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let targets = ["raytrace", "histogram", "canneal", "dedup", "radiosity"];

    println!("Bubble sensitivity: target IPC vs co-runner pressure");
    println!();
    print!("{:<12}", "pressure");
    for p in pressures {
        print!(" {p:>8.1}");
    }
    println!(" {:>12}", "sensitivity");
    for name in targets {
        let target = by_name(name).expect("known workload");
        let curve = bubble_profile(target, &pressures, 120_000, 11)?;
        print!("{name:<12}");
        for pt in &curve.points {
            print!(" {:>8.3}", pt.target_ipc);
        }
        println!(" {:>11.1}%", curve.sensitivity() * 100.0);
    }
    println!();
    println!("bandwidth-hungry workloads (dedup, canneal) and latency-bound workloads");
    println!("(high dependence) degrade most; compute-bound ones barely move. The");
    println!("degradation curve carries the same sensitivity signal as the 25-point");
    println!("sweep, without requiring partitionable hardware during profiling.");
    Ok(())
}
