//! Developer tool: fits every benchmark and prints the elasticity
//! spectrum with expected-class agreement. Used to tune the synthetic
//! workload parameters; `fig09_elasticities` is the paper-facing version.

use ref_bench::pipeline::init_jobs;
use ref_core::fitting::{fit_cobb_douglas, FitPoint};
use ref_workloads::profiler::{profile, ProfilerOptions};
use ref_workloads::profiles::{PreferenceClass, BENCHMARKS};

fn main() {
    init_jobs();
    let opts = ProfilerOptions {
        warmup_instructions: 80_000,
        instructions: 150_000,
        ..ProfilerOptions::default()
    };
    println!(
        "{:<18} {:>7} {:>7} {:>6}  class(exp)",
        "workload", "a_mem", "a_cache", "R2"
    );
    for b in &BENCHMARKS {
        let grid = profile(b, &opts);
        let pts: Vec<FitPoint> = grid
            .points
            .iter()
            .map(|p| {
                FitPoint::new(vec![p.bandwidth.gb_per_sec(), p.cache.mib_f64()], p.ipc).unwrap()
            })
            .collect();
        let fit = fit_cobb_douglas(&pts).unwrap();
        let u = fit.utility().rescaled();
        let class = if u.elasticity(1) > 0.5 { "C" } else { "M" };
        let exp = match b.expected_class {
            PreferenceClass::Cache => "C",
            PreferenceClass::Memory => "M",
        };
        let mark = if class == exp { "" } else { "  <-- MISMATCH" };
        println!(
            "{:<18} {:>7.3} {:>7.3} {:>6.3}  {}({}){}",
            b.name,
            u.elasticity(0),
            u.elasticity(1),
            fit.r_squared(),
            class,
            exp,
            mark
        );
    }
}
