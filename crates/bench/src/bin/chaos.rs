//! Kill-and-recover chaos harness for the durable ref-serve front-end.
//!
//! The parent process spawns itself (`--child`) as a WAL-backed server
//! that hammers its own market with client threads, lets it run for a
//! while, then SIGKILLs it mid-flight. After every kill the parent:
//!
//! 1. opens the WAL offline and computes the expected post-crash state
//!    (newest checkpoint + replayed tail, torn final record truncated),
//! 2. when the log is still contiguous from seq 0, cross-checks that a
//!    flat `replay` of the raw event log reaches the same snapshot,
//! 3. boots `Server::recover` on the same directory and demands the
//!    served snapshot be byte-identical to the offline expectation.
//!
//! Odd-numbered rounds additionally shear 1..32 bytes off the live
//! segment tail before recovery, simulating a torn final write on top
//! of the process kill. Any divergence exits non-zero; a clean run
//! writes `BENCH_chaos.json`.
//!
//! ```text
//! cargo run --release -p ref-bench --bin chaos -- [--rounds 6]
//!     [--duration-ms 250] [--out BENCH_chaos.json] [--quick]
//! ```

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MarketEngine};
use ref_serve::json::Value;
use ref_serve::{wal, CallOpts, Client, FaultPlan, ServeConfig, Server, Wal, WalConfig};

/// Checkpoint cadence for the chaos server: small enough that every
/// round spans several checkpoint-and-truncate cycles.
const CHECKPOINT_EVERY: u64 = 32;

/// Closed-loop client threads the child drives against itself.
const CHILD_CLIENTS: usize = 4;

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).expect("static capacity"))
}

fn wal_config(dir: &Path) -> WalConfig {
    // Sized so the first round stays within one segment (history intact,
    // flat-replay cross-check runs) while a multi-round run rolls
    // segments and checkpoints genuinely prune — later rounds then
    // recover from a checkpoint alone.
    WalConfig::new(dir)
        .with_checkpoint_every(CHECKPOINT_EVERY)
        .with_segment_max_bytes(192 * 1024)
}

// ---------------------------------------------------------------------
// Child: a WAL-backed server under self-inflicted load, run until
// killed.
// ---------------------------------------------------------------------

/// One self-load thread: join an agent (a duplicate rejoin after a
/// recovery is expected and fine), then hammer observe/query/demand
/// until the process is killed.
fn child_client(addr: &str, worker: usize) {
    let Ok(mut client) = Client::connect(addr) else {
        return;
    };
    let agent = worker as u64 + 1;
    // `market` = duplicate join after recovery; anything else is fatal
    // for this thread only — the parent judges disk state, not us.
    let _ = client.join_external(agent);
    let observe = Value::obj(vec![
        ("op", Value::str("observe")),
        ("agent", Value::from_u64(agent)),
        ("allocation", Value::num_array(&[1.5, 0.75])),
        ("performance", Value::Num(1.0 + worker as f64 * 0.01)),
    ]);
    let query = Value::obj(vec![
        ("op", Value::str("query")),
        ("agent", Value::from_u64(agent)),
    ]);
    let opts = CallOpts::default().with_seed(agent);
    let mut i = 0u64;
    loop {
        let outcome = if i % 7 == 6 {
            let elasticity = [0.4 + worker as f64 * 0.05, 0.5];
            client
                .demand(agent, Some((1.0, &elasticity[..])))
                .map(|_| ())
        } else if i % 3 == 2 {
            client.call_with(&query, &opts).map(|_| ())
        } else {
            client.call_with(&observe, &opts).map(|_| ())
        };
        if let Err(e) = outcome {
            // The server died under us (parent kill); exit quietly.
            if e.code().is_none() {
                return;
            }
        }
        i += 1;
    }
}

/// Child entry: boot (or recover) the durable server, announce the
/// address, and generate load until SIGKILLed.
fn run_child(dir: &Path) -> ! {
    let config = ServeConfig::new(market())
        .with_epoch_interval(Some(Duration::from_millis(1)))
        .with_wal(wal_config(dir));
    let server = if wal::dir_has_state(dir).expect("probe wal dir") {
        Server::recover("127.0.0.1:0", config)
    } else {
        Server::start("127.0.0.1:0", config)
    }
    .expect("boot chaos child server");
    // The parent parses this line to know the child is live.
    println!("ADDR {}", server.addr());
    let addr = server.addr().to_string();
    let workers: Vec<_> = (0..CHILD_CLIENTS)
        .map(|worker| {
            let addr = addr.clone();
            std::thread::spawn(move || child_client(&addr, worker))
        })
        .collect();
    for w in workers {
        let _ = w.join();
    }
    // Load threads only return when the server is gone; the expected
    // exit is the parent's SIGKILL long before this point.
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// Parent: kill, shear, recover, compare.
// ---------------------------------------------------------------------

struct Args {
    rounds: usize,
    duration_ms: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rounds: 6,
        duration_ms: 250,
        out: "BENCH_chaos.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?;
            }
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("bad --duration-ms: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--quick" => {
                args.rounds = 3;
                args.duration_ms = 150;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.rounds == 0 {
        return Err("--rounds must be at least 1".to_string());
    }
    Ok(args)
}

fn spawn_child(dir: &Path) -> std::io::Result<(Child, String)> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--child")
        .arg("--dir")
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    match line.strip_prefix("ADDR ") {
        Some(addr) => Ok((child, addr.trim().to_string())),
        None => {
            let _ = child.kill();
            Err(std::io::Error::other(format!(
                "child failed to announce its address: {line:?}"
            )))
        }
    }
}

/// Shear `bytes` off the live segment tail, returning how many bytes
/// were actually removed (an empty or missing segment shrinks by 0).
fn shear_tail(dir: &Path, bytes: u64) -> u64 {
    let Ok(Some(path)) = wal::last_segment_path(dir) else {
        return 0;
    };
    let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let cut = bytes.min(len);
    if cut == 0 {
        return 0;
    }
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .and_then(|f| f.set_len(len - cut))
        .expect("shear segment tail");
    cut
}

/// Open the WAL offline and rebuild the expected post-crash state:
/// newest checkpoint plus replayed tail. Returns (seq, snapshot text,
/// bytes the open truncated as a torn final record).
fn offline_expectation(dir: &Path) -> (u64, String, u64) {
    let rec = Wal::open(wal_config(dir), FaultPlan::none()).expect("offline wal open");
    let mut engine = match &rec.checkpoint {
        Some((_, snapshot)) => MarketEngine::restore(snapshot).expect("restore checkpoint"),
        None => MarketEngine::new(market()).expect("fresh engine"),
    };
    for event in &rec.tail {
        // Engine-level rejections were journaled too; replay ignores
        // them exactly as the live server did.
        let _ = engine.apply_now(event.clone());
    }
    (
        rec.wal.next_seq(),
        engine.snapshot().encode(),
        rec.truncated_bytes,
    )
}

fn main() {
    // Child mode: `chaos --child --dir <wal-dir>`.
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--child") {
        let dir = argv
            .iter()
            .position(|a| a == "--dir")
            .and_then(|i| argv.get(i + 1))
            .map(PathBuf::from)
            .expect("--child needs --dir");
        run_child(&dir);
    }

    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("chaos: {e}");
            std::process::exit(2);
        }
    };

    let dir = std::env::temp_dir().join(format!("ref-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "chaos: {} rounds x {}ms, wal dir {}",
        args.rounds,
        args.duration_ms,
        dir.display()
    );

    let mut rounds = Vec::new();
    for round in 0..args.rounds {
        let (mut child, addr) = match spawn_child(&dir) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("chaos: FATAL: cannot spawn child: {e}");
                std::process::exit(1);
            }
        };
        eprintln!("chaos: round {round}: child up at {addr}");
        std::thread::sleep(Duration::from_millis(args.duration_ms));
        child.kill().expect("SIGKILL child");
        child.wait().expect("reap child");

        // Odd rounds shear the tail on top of the kill: a torn final
        // write is the worst crash the durability contract admits.
        let shear = if round % 2 == 1 {
            shear_tail(&dir, 1 + (round as u64 * 7) % 31)
        } else {
            0
        };

        let (seq, expected, torn) = offline_expectation(&dir);

        // Cross-check: while no checkpoint has pruned history, a flat
        // replay of the raw log must agree with checkpoint + tail.
        let (first, events) = wal::read_events(&dir).expect("read wal events");
        let replay_checked = first == 0;
        if replay_checked {
            let replayed = ref_serve::replay(market(), &events).expect("flat replay");
            if replayed.snapshot().encode() != expected {
                eprintln!("chaos: FATAL: round {round}: flat replay diverges from checkpoint+tail");
                std::process::exit(1);
            }
        }

        // Live recovery must land on the offline expectation exactly.
        let recovered = Server::recover(
            "127.0.0.1:0",
            ServeConfig::new(market())
                .with_epoch_interval(None)
                .with_wal(wal_config(&dir)),
        )
        .expect("recover server");
        let mut client = Client::connect(recovered.addr()).expect("connect recovered");
        let served = client.snapshot().expect("snapshot recovered");
        recovered.shutdown();
        if served != expected {
            eprintln!(
                "chaos: FATAL: round {round}: recovered snapshot diverges from offline expectation"
            );
            std::process::exit(1);
        }

        eprintln!(
            "chaos: round {round}: seq {seq}, sheared {shear}B, torn {torn}B, \
             replay_checked={replay_checked}: recovered bit-identical"
        );
        rounds.push(Value::obj(vec![
            ("round", Value::from_u64(round as u64)),
            ("recovered_seq", Value::from_u64(seq)),
            ("sheared_bytes", Value::from_u64(shear)),
            ("torn_bytes", Value::from_u64(torn)),
            ("replay_checked", Value::Bool(replay_checked)),
            ("identical", Value::Bool(true)),
        ]));
    }

    let doc = Value::obj(vec![
        ("bench", Value::str("chaos")),
        ("rounds", Value::Arr(rounds)),
        ("duration_ms", Value::from_u64(args.duration_ms)),
        ("checkpoint_every", Value::from_u64(CHECKPOINT_EVERY)),
        ("identical", Value::Bool(true)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("chaos: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "chaos: all {} kill-and-recover rounds bit-identical; wrote {}",
        args.rounds, args.out
    );
}
