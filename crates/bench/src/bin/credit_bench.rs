//! Temporal sharing-incentive harness for the credit market.
//!
//! Per-epoch REF guarantees every agent its equal-share utility *within*
//! an epoch, but says nothing across epochs: an agent whose demand just
//! changed is served off a stale estimate and eats the reconvergence gap
//! with no compensation. The credit market meters exactly that gap and
//! tilts later epochs toward under-served agents, so cumulative utility
//! over any window tracks the cumulative equal share.
//!
//! This harness drives three deterministic traces through three
//! mechanisms — per-epoch REF (`max-welfare-fair`), `equal-slowdown`,
//! and `credit-max-welfare` — and writes `BENCH_credit.json` with
//! temporal-SI violation counts/rates, mean and worst cumulative
//! slowdown versus the equal share, and the final ledger drift:
//!
//! * **bursty**: half the population flips its demanded resource in
//!   synchronized bursts (plus join/leave churn), so every burst opens a
//!   reconvergence gap. Gate: credit produces *strictly fewer*
//!   temporal-SI violations than per-epoch REF.
//! * **steady**: fixed demands, no churn. Gate: credit produces *zero*
//!   violations — the ledger must not invent unfairness where per-epoch
//!   REF already suffices.
//! * **diurnal**: slow sinusoidal drift of every agent's elasticities,
//!   re-declared on a fixed cadence (reported, not gated).
//!
//! All runs must end with the ledger conserved (`|sum| <= 1e-6`). Any
//! failed gate exits non-zero.
//!
//! ```text
//! cargo run --release -p ref-bench --bin credit_bench -- [--quick]
//!     [--out BENCH_credit.json] [--epochs 240]
//! ```

use std::collections::BTreeMap;

use ref_core::resource::Capacity;
use ref_core::utility::{CobbDouglas, Utility};
use ref_market::{MarketConfig, MarketEngine, MarketEvent, MechanismKind, ObservationSource};
use ref_serve::json::Value;

/// Temporal window (epochs) the ledger audits over.
const WINDOW: u64 = 8;
/// Slack fraction of the cumulative equal share a window may fall short
/// by before it counts as a violation.
const SLACK: f64 = 0.03;
/// Warmup after any membership or demand change; must be shorter than
/// the window or every post-burst gap would be excused as warmup.
const WARMUP: u64 = 2;
/// Epochs between demand bursts (bursty) / re-declarations (diurnal).
const PERIOD: u64 = 24;
/// Conservation bound on the final ledger sum.
const DRIFT_BOUND: f64 = 1e-6;

struct Args {
    out: String,
    quick: bool,
    epochs: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_credit.json".to_string(),
        quick: false,
        epochs: 240,
    };
    let mut explicit_epochs = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => args.out = value("--out")?,
            "--quick" => args.quick = true,
            "--epochs" => {
                args.epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("bad --epochs: {e}"))?;
                explicit_epochs = true;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.quick && !explicit_epochs {
        // Four bursts still fit: enough for the gates, small enough for CI.
        args.epochs = 96;
    }
    if args.epochs < 2 * PERIOD {
        return Err(format!(
            "--epochs must cover two bursts (>= {})",
            2 * PERIOD
        ));
    }
    Ok(args)
}

fn truth(e0: f64) -> CobbDouglas {
    CobbDouglas::new(1.0, vec![e0, 1.0 - e0]).expect("interior elasticities")
}

fn join(id: u64, e0: f64) -> MarketEvent {
    MarketEvent::AgentJoined {
        id,
        source: ObservationSource::GroundTruth(truth(e0)),
    }
}

fn flip(id: u64, e0: f64) -> MarketEvent {
    MarketEvent::DemandChanged {
        id,
        new_truth: Some(truth(e0)),
    }
}

/// One trace: for each epoch, the control events submitted before that
/// epoch's tick. Identical (bit for bit) across all mechanisms.
fn build_trace(name: &str, epochs: u64) -> Vec<Vec<MarketEvent>> {
    let mut trace: Vec<Vec<MarketEvent>> = (0..epochs).map(|_| Vec::new()).collect();
    match name {
        // Agents 1-3 flip between wanting resource 0 (0.8) and resource
        // 1 (0.2) in synchronized bursts; agents 4-6 statically want
        // resource 1. In the flipped phase all six contend for resource
        // 1 while the stale estimates still steer 1-3 toward resource 0:
        // a real reconvergence gap every burst. A churner joins and
        // leaves inside each period so settlement runs under load.
        "bursty" => {
            for (i, e0) in [
                (1u64, 0.8),
                (2, 0.75),
                (3, 0.7),
                (4, 0.3),
                (5, 0.25),
                (6, 0.2),
            ] {
                trace[0].push(join(i, e0));
            }
            let mut phase = 0u32;
            for k in 1..epochs / PERIOD + 1 {
                let burst = k * PERIOD;
                if burst >= epochs {
                    break;
                }
                phase ^= 1;
                for (i, e0) in [(1u64, 0.8), (2, 0.75), (3, 0.7)] {
                    let e = if phase == 1 { 1.0 - e0 } else { e0 };
                    trace[burst as usize].push(flip(i, e));
                }
                let churner = 100 + k;
                if burst + 5 < epochs {
                    trace[(burst + 5) as usize].push(join(churner, 0.5));
                }
                if burst + PERIOD - 5 < epochs {
                    trace[(burst + PERIOD - 5) as usize]
                        .push(MarketEvent::AgentLeft { id: churner });
                }
            }
        }
        // Fixed spread of demands, no churn: nothing to compensate.
        "steady" => {
            for (i, e0) in [
                (1u64, 0.8),
                (2, 0.65),
                (3, 0.55),
                (4, 0.45),
                (5, 0.35),
                (6, 0.2),
            ] {
                trace[0].push(join(i, e0));
            }
        }
        // Every agent's elasticity drifts on a slow sinusoid, re-declared
        // every PERIOD epochs with staggered phases.
        "diurnal" => {
            let e_at = |i: u64, t: u64| {
                let phase =
                    std::f64::consts::TAU * (t as f64 / (4.0 * PERIOD as f64) + i as f64 / 6.0);
                0.5 + 0.3 * phase.sin()
            };
            for i in 1..=6u64 {
                trace[0].push(join(i, e_at(i, 0)));
            }
            for k in 1..epochs / PERIOD + 1 {
                let t = k * PERIOD;
                if t >= epochs {
                    break;
                }
                for i in 1..=6u64 {
                    trace[t as usize].push(flip(i, e_at(i, t)));
                }
            }
        }
        other => unreachable!("unknown trace {other}"),
    }
    trace
}

struct RunStats {
    violations: u64,
    violation_rate: f64,
    mean_cum_slowdown: f64,
    worst_cum_slowdown: f64,
    ledger_total: f64,
    ledger_max_abs: f64,
    credits_accrued: u64,
    credits_spent: u64,
    warm_start_hits: u64,
}

impl RunStats {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("temporal_si_violations", Value::from_u64(self.violations)),
            ("violation_rate", Value::Num(self.violation_rate)),
            ("mean_cum_slowdown", Value::Num(self.mean_cum_slowdown)),
            ("worst_cum_slowdown", Value::Num(self.worst_cum_slowdown)),
            ("ledger_total", Value::Num(self.ledger_total)),
            ("ledger_max_abs", Value::Num(self.ledger_max_abs)),
            ("credits_accrued", Value::from_u64(self.credits_accrued)),
            ("credits_spent", Value::from_u64(self.credits_spent)),
            ("warm_start_hits", Value::from_u64(self.warm_start_hits)),
        ])
    }
}

/// Drives one trace through one mechanism and measures it under ground
/// truth: the trace is generated here, so the harness knows every
/// agent's true utility at every epoch independent of what the market
/// has estimated.
fn run_trace(label: &str, trace: &[Vec<MarketEvent>]) -> Result<RunStats, String> {
    let mechanism =
        MechanismKind::from_label(label).ok_or_else(|| format!("unknown mechanism {label}"))?;
    let config = MarketConfig::new(Capacity::new(vec![12.0, 6.0]).expect("static capacity"))
        .with_mechanism(mechanism)
        .with_seed(0x0C_0FFEE)
        .with_warmup_epochs(WARMUP)
        .with_temporal_window(WINDOW)
        .with_temporal_slack(SLACK)
        .with_enforcement_quanta(0);
    let capacity = config.capacity.clone();
    let mut market = MarketEngine::new(config).map_err(|e| format!("boot: {e}"))?;

    // Ground truths tracked alongside the market, from the same events.
    let mut truths: BTreeMap<u64, CobbDouglas> = BTreeMap::new();
    // Per-agent cumulative (delivered, entitled) under ground truth.
    let mut cumulative: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    let mut agent_epochs = 0u64;

    for controls in trace {
        for event in controls {
            match event {
                MarketEvent::AgentJoined {
                    id,
                    source: ObservationSource::GroundTruth(u),
                } => {
                    truths.insert(*id, u.clone());
                }
                MarketEvent::DemandChanged {
                    id,
                    new_truth: Some(u),
                } => {
                    truths.insert(*id, u.clone());
                }
                MarketEvent::AgentLeft { id } => {
                    truths.remove(id);
                }
                _ => {}
            }
            market
                .apply_now(event.clone())
                .map_err(|e| format!("{label}: control event rejected: {e}"))?;
        }
        let report = market
            .apply_now(MarketEvent::EpochTick)
            .map_err(|e| format!("{label}: tick failed: {e}"))?
            .ok_or_else(|| format!("{label}: tick produced no report"))?;
        let Some(allocation) = &report.allocation else {
            continue;
        };
        let n = report.agents.len() as f64;
        let equal_share: Vec<f64> = capacity.as_slice().iter().map(|c| c / n).collect();
        for (i, id) in report.agents.iter().enumerate() {
            let u = &truths[id];
            let (d, e) = cumulative.entry(*id).or_insert((0.0, 0.0));
            *d += u.value_slice(allocation.bundle(i).as_slice());
            *e += u.value_slice(&equal_share);
            agent_epochs += 1;
        }
    }

    // Cumulative slowdown versus the equal share: sum(entitled) /
    // sum(delivered) per agent over its whole lifetime. 1.0 means the
    // agent got exactly its equal-share utility in aggregate.
    let slowdowns: Vec<f64> = cumulative
        .values()
        .filter(|(d, _)| *d > 0.0)
        .map(|(d, e)| e / d)
        .collect();
    let mean_cum_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
    let worst_cum_slowdown = slowdowns.iter().copied().fold(0.0, f64::max);

    let metrics = market.metrics();
    let ledger = market.ledger();
    Ok(RunStats {
        violations: metrics.temporal_si_violations,
        violation_rate: metrics.temporal_si_violations as f64 / agent_epochs.max(1) as f64,
        mean_cum_slowdown,
        worst_cum_slowdown,
        ledger_total: ledger.total(),
        ledger_max_abs: ledger.max_abs(),
        credits_accrued: metrics.credits_accrued,
        credits_spent: metrics.credits_spent,
        warm_start_hits: metrics.warm_start_hits,
    })
}

const MECHANISMS: &[(&str, &str)] = &[
    ("max_welfare_fair", "max-welfare-fair"),
    ("equal_slowdown", "equal-slowdown"),
    ("credit", "credit-max-welfare"),
];

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("credit_bench: {e}");
            std::process::exit(2);
        }
    };

    let mut traces = Vec::new();
    let mut drift_ok = true;
    let mut by_trace: BTreeMap<&str, BTreeMap<&str, RunStats>> = BTreeMap::new();
    for trace_name in ["bursty", "steady", "diurnal"] {
        let trace = build_trace(trace_name, args.epochs);
        let mut runs = BTreeMap::new();
        for &(key, label) in MECHANISMS {
            let stats = match run_trace(label, &trace) {
                Ok(stats) => stats,
                Err(e) => {
                    eprintln!("credit_bench: {trace_name}/{label}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "credit_bench: {trace_name:>7}/{label:<18} violations={:<4} \
                 worst_slowdown={:.4} ledger_sum={:+.2e}",
                stats.violations, stats.worst_cum_slowdown, stats.ledger_total
            );
            drift_ok &= stats.ledger_total.abs() <= DRIFT_BOUND;
            runs.insert(key, stats);
        }
        by_trace.insert(trace_name, runs);
    }

    let bursty_credit = by_trace["bursty"]["credit"].violations;
    let bursty_ref = by_trace["bursty"]["max_welfare_fair"].violations;
    let steady_credit = by_trace["steady"]["credit"].violations;
    let credit_beats_ref = bursty_credit < bursty_ref;
    let steady_clean = steady_credit == 0;
    let all_ok = credit_beats_ref && steady_clean && drift_ok;

    for (trace_name, runs) in &by_trace {
        traces.push((
            *trace_name,
            Value::obj(runs.iter().map(|(k, s)| (*k, s.to_json())).collect()),
        ));
    }
    let doc = Value::obj(vec![
        ("bench", Value::str("credit")),
        ("quick", Value::Bool(args.quick)),
        ("epochs", Value::from_u64(args.epochs)),
        (
            "config",
            Value::obj(vec![
                ("window", Value::from_u64(WINDOW)),
                ("slack", Value::Num(SLACK)),
                ("warmup", Value::from_u64(WARMUP)),
                ("period", Value::from_u64(PERIOD)),
            ]),
        ),
        ("traces", Value::obj(traces)),
        (
            "gates",
            Value::obj(vec![
                ("bursty_credit_violations", Value::from_u64(bursty_credit)),
                ("bursty_ref_violations", Value::from_u64(bursty_ref)),
                ("credit_beats_per_epoch_ref", Value::Bool(credit_beats_ref)),
                ("steady_credit_zero", Value::Bool(steady_clean)),
                ("ledger_drift_ok", Value::Bool(drift_ok)),
                ("all_ok", Value::Bool(all_ok)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("credit_bench: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("credit_bench: wrote {}", args.out);

    if !credit_beats_ref {
        eprintln!(
            "credit_bench: FATAL: credit ({bursty_credit}) must beat per-epoch REF \
             ({bursty_ref}) on the bursty trace"
        );
    }
    if !steady_clean {
        eprintln!("credit_bench: FATAL: {steady_credit} credit violations on the steady trace");
    }
    if !drift_ok {
        eprintln!("credit_bench: FATAL: a run ended with |ledger sum| > {DRIFT_BOUND}");
    }
    if !all_ok {
        std::process::exit(1);
    }
}
