//! Deterministic-simulation sweep: thousands of seeded fault schedules
//! against the in-process fleet, every standing invariant checked.
//!
//! Each seed drives [`ref_dst::run_seed`]: a 2-shard fleet with a
//! primary and standby per shard, real WALs on simulated disks, the real
//! replication frame protocol over a simulated network, and a seeded mix
//! of crashes, partitions, torn writes, failed fsyncs, bit flips,
//! divergence injection, and delay storms. A violation prints the seed
//! and the full per-event trace; `--seed N` replays that exact run
//! bit-identically.
//!
//! ```text
//! cargo run --release -p ref-bench --bin dst_sweep -- [--seeds 2000]
//!     [--quick] [--seed N] [--out BENCH_dst.json]
//! ```
//!
//! `--break-invariant ack|si` (test-only) deliberately breaks an
//! invariant to prove the sweep catches and reproduces violations.

use std::collections::BTreeMap;
use std::time::Instant;

use ref_dst::{run_seed, BreakKind, RunOutcome, SimOptions};
use ref_serve::json::Value;

struct Args {
    seeds: u64,
    first_seed: u64,
    only_seed: Option<u64>,
    quick: bool,
    break_invariant: Option<BreakKind>,
    out: String,
    trace: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 2000,
        first_seed: 0,
        only_seed: None,
        quick: false,
        break_invariant: None,
        out: "BENCH_dst.json".to_string(),
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match arg.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds: integer"),
            "--first-seed" => {
                args.first_seed = value("--first-seed")
                    .parse()
                    .expect("--first-seed: integer");
            }
            "--seed" => {
                args.only_seed = Some(value("--seed").parse().expect("--seed: integer"));
                args.trace = true;
            }
            "--quick" => {
                args.quick = true;
                if args.seeds > 200 {
                    args.seeds = 200;
                }
            }
            "--break-invariant" => {
                args.break_invariant = Some(match value("--break-invariant").as_str() {
                    "ack" => BreakKind::AckUnreplicated,
                    "si" => BreakKind::SiDuringPartial,
                    other => panic!("unknown invariant to break: {other} (want ack|si)"),
                });
            }
            "--out" => args.out = value("--out"),
            "--trace" => args.trace = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    args
}

fn print_violation(outcome: &RunOutcome, trace: bool) {
    eprintln!(
        "dst_sweep: seed {} VIOLATED {} invariant(s) [classes: {}]",
        outcome.seed,
        outcome.violations.len(),
        outcome.classes.join(",")
    );
    for v in &outcome.violations {
        eprintln!("dst_sweep:   {v}");
    }
    if trace {
        eprintln!("dst_sweep: --- per-event trace (seed {}) ---", outcome.seed);
        for line in &outcome.trace {
            eprintln!("  {line}");
        }
    } else {
        eprintln!("dst_sweep: trace tail:");
        for line in outcome
            .trace
            .iter()
            .rev()
            .take(30)
            .collect::<Vec<_>>()
            .iter()
            .rev()
        {
            eprintln!("  {line}");
        }
    }
    eprintln!(
        "dst_sweep: reproduce with: cargo run --release -p ref-bench --bin dst_sweep -- --seed {}",
        outcome.seed
    );
}

fn main() {
    let args = parse_args();
    let opts = SimOptions {
        quick: args.quick,
        break_invariant: args.break_invariant,
    };
    let started = Instant::now();

    let seeds: Vec<u64> = match args.only_seed {
        Some(seed) => vec![seed],
        None => (args.first_seed..args.first_seed + args.seeds).collect(),
    };

    let mut violated_seeds: Vec<u64> = Vec::new();
    let mut total_violations = 0u64;
    let mut total_events = 0u64;
    let mut total_acked = 0u64;
    let mut total_freezes = 0u64;
    let mut total_partial = 0u64;
    let mut class_histogram: BTreeMap<String, u64> = BTreeMap::new();
    let mut hash_of_hashes: u64 = 0xCBF2_9CE4_8422_2325;

    for (i, seed) in seeds.iter().copied().enumerate() {
        let outcome = run_seed(seed, &opts);
        total_events += outcome.sim_events;
        total_acked += outcome.acked_events;
        total_freezes += outcome.quorum_freezes;
        total_partial += outcome.partial_rounds;
        for class in &outcome.classes {
            *class_histogram.entry(class.clone()).or_insert(0) += 1;
        }
        for byte in outcome.trace_hash.to_le_bytes() {
            hash_of_hashes ^= u64::from(byte);
            hash_of_hashes = hash_of_hashes.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if !outcome.violations.is_empty() {
            violated_seeds.push(seed);
            total_violations += outcome.violations.len() as u64;
            print_violation(&outcome, args.trace);
        } else if args.only_seed.is_some() {
            eprintln!(
                "dst_sweep: seed {seed} clean: {} events, {} acked, hash {:016x}",
                outcome.sim_events, outcome.acked_events, outcome.trace_hash
            );
            if args.trace {
                for line in &outcome.trace {
                    println!("{line}");
                }
            }
        }
        if args.only_seed.is_none() && (i + 1) % 500 == 0 {
            eprintln!(
                "dst_sweep: {}/{} seeds, {} events, {} violation(s), {:.1}s",
                i + 1,
                seeds.len(),
                total_events,
                total_violations,
                started.elapsed().as_secs_f64()
            );
        }
    }

    let elapsed = started.elapsed();
    let events_per_sec = total_events as f64 / elapsed.as_secs_f64().max(1e-9);
    let classes = Value::obj(
        class_histogram
            .iter()
            .map(|(k, v)| (k.as_str(), Value::from_u64(*v)))
            .collect(),
    );
    let doc = Value::obj(vec![
        ("bench", Value::str("dst_sweep")),
        ("seeds_run", Value::from_u64(seeds.len() as u64)),
        (
            "first_seed",
            Value::from_u64(seeds.first().copied().unwrap_or(0)),
        ),
        ("quick", Value::Bool(args.quick)),
        (
            "break_invariant",
            match args.break_invariant {
                None => Value::Null,
                Some(BreakKind::AckUnreplicated) => Value::str("ack"),
                Some(BreakKind::SiDuringPartial) => Value::str("si"),
            },
        ),
        ("violations", Value::from_u64(total_violations)),
        (
            "violated_seeds",
            Value::Arr(violated_seeds.iter().map(|s| Value::from_u64(*s)).collect()),
        ),
        ("sim_events", Value::from_u64(total_events)),
        ("acked_events", Value::from_u64(total_acked)),
        ("quorum_freezes", Value::from_u64(total_freezes)),
        ("partial_rounds", Value::from_u64(total_partial)),
        ("classes", classes),
        (
            "fleet_trace_hash",
            Value::str(format!("{hash_of_hashes:016x}")),
        ),
        ("elapsed_secs", Value::Num(elapsed.as_secs_f64())),
        ("sim_events_per_sec", Value::Num(events_per_sec)),
        (
            "all_ok",
            Value::Bool(total_violations == 0 || args.break_invariant.is_some()),
        ),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("dst_sweep: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!(
        "dst_sweep: {} seeds, {} sim events ({:.0}/s), {} acked, {} freezes, {} violation(s) -> {}",
        seeds.len(),
        total_events,
        events_per_sec,
        total_acked,
        total_freezes,
        total_violations,
        args.out
    );

    // With a deliberately broken invariant the sweep must CATCH it;
    // on the real code path any violation is fatal.
    if args.break_invariant.is_some() {
        if total_violations == 0 && args.only_seed.is_none() {
            eprintln!("dst_sweep: FATAL: broken invariant was never caught");
            std::process::exit(1);
        }
    } else if total_violations > 0 {
        std::process::exit(1);
    }
}
