//! Kill-and-promote failover harness for the replicated ref-serve pair.
//!
//! The parent spawns itself (`--child`) as a WAL-backed *primary* with a
//! replication listener and synchronous acks, attaches an in-process
//! *standby* (auto-promotion armed), then drives closed-loop client
//! load against the primary while sampling replication lag. Mid-epoch
//! it SIGKILLs the primary and measures how long the standby takes to
//! promote itself. After every round the parent demands:
//!
//! 1. **zero acked-event loss** — every mutation the primary confirmed
//!    (synchronous replication: the reply implies a standby ack) is
//!    present in the promoted node's log,
//! 2. **bit-identical prefix** — replaying the dead primary's WAL up to
//!    the standby's promotion point reproduces the promoted state byte
//!    for byte (checked while both logs are contiguous from seq 0),
//! 3. **durable promotion** — the promoted server's final snapshot
//!    equals an offline checkpoint-plus-tail rebuild of its own WAL,
//! 4. the promoted node actually takes writes.
//!
//! A final round arms `FaultPlan::corrupt_standby_at` on the standby:
//! the fork must be *detected* (divergence fingerprint mismatch) and
//! the replica *fenced* — it must never promote, even once the primary
//! is killed and its election timer lapses. Any violation exits
//! non-zero; a clean run writes `BENCH_failover.json`.
//!
//! ```text
//! cargo run --release -p ref-bench --bin failover -- [--rounds 5]
//!     [--duration-ms 300] [--out BENCH_failover.json] [--quick]
//! ```

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MarketEngine, MarketEvent};
use ref_serve::json::Value;
use ref_serve::{
    wal, CallOpts, Client, FaultPlan, ReplConfig, Role, ServeConfig, Server, Wal, WalConfig,
};

/// Client threads the parent drives against the primary.
const LOAD_CLIENTS: usize = 3;

/// Checkpoint cadence: large enough that a round's history usually
/// stays contiguous from seq 0, so the prefix cross-check can run.
const CHECKPOINT_EVERY: u64 = 4096;

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![16.0, 8.0]).expect("static capacity"))
}

fn wal_config(dir: &Path) -> WalConfig {
    WalConfig::new(dir).with_checkpoint_every(CHECKPOINT_EVERY)
}

// ---------------------------------------------------------------------
// Child: the primary, run until SIGKILLed.
// ---------------------------------------------------------------------

/// Child entry: boot the replicated primary, announce both addresses,
/// and idle until killed — the parent generates the load so it can
/// count exactly which events were acknowledged.
fn run_child(dir: &Path) -> ! {
    let config = ServeConfig::new(market())
        .with_epoch_interval(Some(Duration::from_millis(2)))
        .with_wal(wal_config(dir))
        .with_repl(
            ReplConfig::primary("127.0.0.1:0")
                .with_heartbeat_interval(Duration::from_millis(10))
                .with_sync(true),
        );
    let server = Server::start("127.0.0.1:0", config).expect("boot failover child primary");
    println!("ADDR {}", server.addr());
    println!(
        "REPL {}",
        server.repl_addr().expect("primary repl listener")
    );
    // Expected exit is the parent's SIGKILL.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

// ---------------------------------------------------------------------
// Parent: load, kill, measure promotion, audit the promoted state.
// ---------------------------------------------------------------------

struct Args {
    rounds: usize,
    duration_ms: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        rounds: 5,
        duration_ms: 300,
        out: "BENCH_failover.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("bad --rounds: {e}"))?;
            }
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("bad --duration-ms: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--quick" => {
                args.rounds = 3;
                args.duration_ms = 150;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.rounds == 0 {
        return Err("--rounds must be at least 1".to_string());
    }
    Ok(args)
}

fn spawn_child(dir: &Path) -> std::io::Result<(Child, String, String)> {
    let exe = std::env::current_exe()?;
    let mut child = Command::new(exe)
        .arg("--child")
        .arg("--dir")
        .arg(dir)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut reader = BufReader::new(stdout);
    let mut read_tagged = |tag: &str| -> std::io::Result<String> {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        line.strip_prefix(tag)
            .map(|a| a.trim().to_string())
            .ok_or_else(|| std::io::Error::other(format!("expected {tag:?} line, got {line:?}")))
    };
    match (read_tagged("ADDR "), read_tagged("REPL ")) {
        (Ok(addr), Ok(repl)) => Ok((child, addr, repl)),
        (a, b) => {
            let _ = child.kill();
            Err(std::io::Error::other(format!(
                "child failed to announce itself: {a:?} / {b:?}"
            )))
        }
    }
}

/// One closed-loop load thread: join an agent, then hammer observes
/// until the primary dies. Every `Ok` reply was synchronously
/// replicated before it was sent, so `acked` counts events the promoted
/// standby *must* hold.
fn load_client(addr: &str, worker: usize, acked: &AtomicU64) {
    let Ok(mut client) = Client::connect(addr) else {
        return;
    };
    let agent = worker as u64 + 1;
    if client.join_external(agent).is_ok() {
        acked.fetch_add(1, Ordering::Relaxed);
    }
    let observe = Value::obj(vec![
        ("op", Value::str("observe")),
        ("agent", Value::from_u64(agent)),
        ("allocation", Value::num_array(&[1.5, 0.75])),
        ("performance", Value::Num(1.0 + worker as f64 * 0.01)),
    ]);
    let opts = CallOpts::default().with_retries(0).with_seed(agent);
    loop {
        match client.call_with(&observe, &opts) {
            Ok(_) => {
                acked.fetch_add(1, Ordering::Relaxed);
            }
            // `repl` = applied locally but unconfirmed (not acked, keep
            // going); any transport error means the primary is gone.
            Err(e) if e.code().is_some() => {}
            Err(_) => return,
        }
    }
}

/// Rebuilds the expected state of a WAL directory offline: newest
/// checkpoint plus replayed tail.
fn offline_expectation(dir: &Path) -> (u64, String) {
    let rec = Wal::open(wal_config(dir), FaultPlan::none()).expect("offline wal open");
    let mut engine = match &rec.checkpoint {
        Some((_, snapshot)) => MarketEngine::restore(snapshot).expect("restore checkpoint"),
        None => MarketEngine::new(market()).expect("fresh engine"),
    };
    for event in &rec.tail {
        let _ = engine.apply_now(event.clone());
    }
    (rec.wal.next_seq(), engine.snapshot().encode())
}

/// Replays `events` through a fresh engine and returns the snapshot.
fn replay_snapshot(events: &[MarketEvent]) -> String {
    let mut engine = MarketEngine::new(market()).expect("fresh engine");
    for event in events {
        let _ = engine.apply_now(event.clone());
    }
    engine.snapshot().encode()
}

fn fatal(round: usize, what: &str) -> ! {
    eprintln!("failover: FATAL: round {round}: {what}");
    std::process::exit(1);
}

struct RoundOutcome {
    failover_ms: f64,
    acked: u64,
    present: u64,
    promoted_seq: u64,
    prefix_checked: bool,
    lag_max: u64,
    lag_mean: f64,
}

/// One kill-and-promote round. Returns the audited outcome or exits.
fn run_round(
    round: usize,
    duration_ms: u64,
    primary_dir: &Path,
    standby_dir: &Path,
) -> RoundOutcome {
    let _ = std::fs::remove_dir_all(primary_dir);
    let _ = std::fs::remove_dir_all(standby_dir);
    let (mut child, addr, repl_addr) = match spawn_child(primary_dir) {
        Ok(t) => t,
        Err(e) => fatal(round, &format!("cannot spawn child: {e}")),
    };
    eprintln!("failover: round {round}: primary up at {addr} (repl {repl_addr})");

    let standby = Server::start(
        "127.0.0.1:0",
        ServeConfig::new(market())
            .with_epoch_interval(Some(Duration::from_millis(2)))
            .with_wal(wal_config(standby_dir))
            .with_repl(
                ReplConfig::standby("127.0.0.1:0", repl_addr)
                    .with_heartbeat_interval(Duration::from_millis(10))
                    .with_election_timeout(Duration::from_millis(150)),
            ),
    )
    .expect("boot in-process standby");

    // Drive load while sampling replication lag (primary seq - standby
    // seq) roughly every 10ms.
    let acked = AtomicU64::new(0);
    let (lag_max, lag_sum, lag_n) = std::thread::scope(|scope| {
        for worker in 0..LOAD_CLIENTS {
            let (addr, acked) = (addr.clone(), &acked);
            scope.spawn(move || load_client(&addr, worker, acked));
        }
        let mut pping = Client::connect(&*addr).expect("lag probe: primary");
        let mut sping = Client::connect(standby.addr()).expect("lag probe: standby");
        let seq_of = |c: &mut Client| {
            c.ping()
                .ok()
                .and_then(|r| r.get("wal_seq").and_then(Value::as_u64))
        };
        let (mut lag_max, mut lag_sum, mut lag_n) = (0u64, 0u64, 0u64);
        let deadline = Instant::now() + Duration::from_millis(duration_ms);
        while Instant::now() < deadline {
            if let (Some(p), Some(s)) = (seq_of(&mut pping), seq_of(&mut sping)) {
                let lag = p.saturating_sub(s);
                lag_max = lag_max.max(lag);
                lag_sum += lag;
                lag_n += 1;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Mid-epoch murder; the load threads die with the connection.
        child.kill().expect("SIGKILL primary");
        child.wait().expect("reap primary");
        (lag_max, lag_sum, lag_n)
    });
    let killed_at = Instant::now();

    // The standby's election timer lapses and it promotes itself.
    let promote_deadline = killed_at + Duration::from_secs(10);
    while standby.role() != Role::Primary {
        if Instant::now() > promote_deadline {
            fatal(round, "standby never auto-promoted");
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let failover_ms = killed_at.elapsed().as_secs_f64() * 1e3;
    let mut probe = Client::connect(standby.addr()).expect("connect promoted");
    let promoted_seq = probe
        .ping()
        .ok()
        .and_then(|r| r.get("wal_seq").and_then(Value::as_u64))
        .expect("promoted wal_seq");

    // The promoted node takes writes.
    probe
        .join_external(90 + round as u64)
        .expect("promoted join");
    probe
        .observe(90 + round as u64, &[1.0, 1.0], 2.0)
        .expect("promoted observe");

    // Durable promotion: the final snapshot equals an offline rebuild
    // of the promoted node's own WAL.
    let report = standby.shutdown();
    let (_, own_expected) = offline_expectation(standby_dir);
    if report.snapshot != own_expected {
        fatal(round, "promoted snapshot diverges from its own WAL rebuild");
    }

    // Bit-identical prefix: the promoted log is an exact copy of the
    // dead primary's log up to the promotion point (both contiguous
    // from seq 0 at this checkpoint cadence).
    let (s_first, s_events) = wal::read_events(standby_dir).expect("read standby wal");
    let (p_first, p_events) = wal::read_events(primary_dir).expect("read primary wal");
    let n = promoted_seq as usize;
    let prefix_checked = s_first == 0 && p_first == 0 && s_events.len() >= n && p_events.len() >= n;
    if prefix_checked && replay_snapshot(&s_events[..n]) != replay_snapshot(&p_events[..n]) {
        fatal(round, "promoted prefix diverges from the primary's WAL");
    }

    // Zero acked-event loss: every synchronously confirmed mutation is
    // in the promoted prefix (epoch ticks excluded from the count).
    let acked = acked.load(Ordering::Relaxed);
    let present = s_events[..n.min(s_events.len())]
        .iter()
        .filter(|e| !matches!(e, MarketEvent::EpochTick))
        .count() as u64;
    if acked > present {
        fatal(
            round,
            &format!("acked-event loss: {acked} acked, only {present} present after promotion"),
        );
    }

    RoundOutcome {
        failover_ms,
        acked,
        present,
        promoted_seq,
        prefix_checked,
        lag_max,
        lag_mean: if lag_n == 0 {
            0.0
        } else {
            lag_sum as f64 / lag_n as f64
        },
    }
}

/// The divergence round: a standby that silently drops a replicated
/// record must be fenced, and must never promote itself.
fn run_divergence_round(duration_ms: u64, primary_dir: &Path, standby_dir: &Path) {
    let _ = std::fs::remove_dir_all(primary_dir);
    let _ = std::fs::remove_dir_all(standby_dir);
    let (mut child, addr, repl_addr) = match spawn_child(primary_dir) {
        Ok(t) => t,
        Err(e) => fatal(usize::MAX, &format!("cannot spawn child: {e}")),
    };
    eprintln!("failover: divergence round: primary up at {addr}");

    let standby = Server::start(
        "127.0.0.1:0",
        ServeConfig::new(market())
            .with_epoch_interval(Some(Duration::from_millis(2)))
            .with_wal(wal_config(standby_dir))
            .with_repl(
                ReplConfig::standby("127.0.0.1:0", repl_addr)
                    .with_heartbeat_interval(Duration::from_millis(10))
                    .with_election_timeout(Duration::from_millis(150)),
            )
            .with_faults(FaultPlan {
                corrupt_standby_at: Some(4),
                ..FaultPlan::default()
            }),
    )
    .expect("boot divergent standby");

    let acked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for worker in 0..LOAD_CLIENTS {
            let (addr, acked) = (addr.clone(), &acked);
            scope.spawn(move || load_client(&addr, worker, acked));
        }
        // The fork is caught at the next epoch fingerprint exchange.
        let deadline = Instant::now() + Duration::from_secs(10);
        while standby.role() != Role::Fenced {
            if Instant::now() > deadline {
                child.kill().ok();
                fatal(usize::MAX, "divergent standby was never fenced");
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(duration_ms.min(100)));
        child.kill().expect("SIGKILL primary");
        child.wait().expect("reap primary");
    });

    // Primary dead, election timer armed — and the fenced replica must
    // still refuse the throne.
    std::thread::sleep(Duration::from_millis(500));
    if standby.role() != Role::Fenced {
        fatal(usize::MAX, "fenced divergent standby changed role");
    }
    let metrics = standby.metrics();
    if metrics.promotions != 0 || metrics.fenced != 1 {
        fatal(usize::MAX, "divergent standby promoted itself");
    }
    standby.shutdown();
    eprintln!("failover: divergence round: fork detected, replica fenced, never promoted");
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.iter().any(|a| a == "--child") {
        let dir = argv
            .iter()
            .position(|a| a == "--dir")
            .and_then(|i| argv.get(i + 1))
            .map(PathBuf::from)
            .expect("--child needs --dir");
        run_child(&dir);
    }

    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("failover: {e}");
            std::process::exit(2);
        }
    };

    let base = std::env::temp_dir().join(format!("ref-failover-{}", std::process::id()));
    let (primary_dir, standby_dir) = (base.join("primary"), base.join("standby"));
    eprintln!(
        "failover: {} rounds x {}ms + divergence round, dirs under {}",
        args.rounds,
        args.duration_ms,
        base.display()
    );

    let mut rounds = Vec::new();
    let (mut lat_min, mut lat_max, mut lat_sum) = (f64::MAX, 0.0f64, 0.0);
    for round in 0..args.rounds {
        let o = run_round(round, args.duration_ms, &primary_dir, &standby_dir);
        eprintln!(
            "failover: round {round}: promoted in {:.1}ms at seq {}, \
             {} acked / {} present, prefix_checked={}, lag max {} mean {:.1}",
            o.failover_ms,
            o.promoted_seq,
            o.acked,
            o.present,
            o.prefix_checked,
            o.lag_max,
            o.lag_mean
        );
        lat_min = lat_min.min(o.failover_ms);
        lat_max = lat_max.max(o.failover_ms);
        lat_sum += o.failover_ms;
        rounds.push(Value::obj(vec![
            ("round", Value::from_u64(round as u64)),
            ("failover_ms", Value::Num(o.failover_ms)),
            ("promoted_seq", Value::from_u64(o.promoted_seq)),
            ("acked_events", Value::from_u64(o.acked)),
            ("present_events", Value::from_u64(o.present)),
            ("events_lost", Value::from_u64(0)),
            ("prefix_checked", Value::Bool(o.prefix_checked)),
            ("repl_lag_max", Value::from_u64(o.lag_max)),
            ("repl_lag_mean", Value::Num(o.lag_mean)),
            ("identical", Value::Bool(true)),
        ]));
    }

    run_divergence_round(args.duration_ms, &primary_dir, &standby_dir);

    let doc = Value::obj(vec![
        ("bench", Value::str("failover")),
        ("rounds", Value::Arr(rounds)),
        ("duration_ms", Value::from_u64(args.duration_ms)),
        ("events_lost", Value::from_u64(0)),
        (
            "failover_ms",
            Value::obj(vec![
                ("min", Value::Num(lat_min)),
                ("mean", Value::Num(lat_sum / args.rounds as f64)),
                ("max", Value::Num(lat_max)),
            ]),
        ),
        (
            "divergence",
            Value::obj(vec![
                ("detected", Value::Bool(true)),
                ("promoted", Value::Bool(false)),
            ]),
        ),
        ("identical", Value::Bool(true)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("failover: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&base);
    eprintln!(
        "failover: all {} kill-and-promote rounds clean (zero acked loss, \
         bit-identical prefixes), divergent replica fenced; wrote {}",
        args.rounds, args.out
    );
}
