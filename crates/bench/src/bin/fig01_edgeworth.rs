//! Figure 1: the Edgeworth box for the paper's running example.
//!
//! Prints the box dimensions, the example feasible allocation from §3
//! (user 1 takes 6 GB/s + 8 MB, leaving 18 GB/s + 4 MB), and a coarse grid
//! of feasible allocations with both users' utilities.

use ref_bench::pipeline::capacity_for_agents;
use ref_core::edgeworth::{BoxPoint, EdgeworthBox};
use ref_core::utility::CobbDouglas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eb = EdgeworthBox::new(
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        capacity_for_agents(4),
    )?;

    println!("Figure 1: Edgeworth box (24 GB/s memory bandwidth x 12 MB cache)");
    println!("u1 = x^0.6 y^0.4   (bursty, little reuse; e.g. canneal)");
    println!("u2 = x^0.2 y^0.8   (cache friendly; e.g. freqmine)");
    println!();

    let example = BoxPoint { x: 6.0, y: 8.0 };
    let (x2, y2) = eb.complement(example);
    println!(
        "example feasible point: user1 = ({:.0} GB/s, {:.0} MB), user2 = ({:.0} GB/s, {:.0} MB)",
        example.x, example.y, x2, y2
    );
    println!();

    println!("{:>6} {:>6} | {:>8} {:>8}", "x1", "y1", "u1", "u2");
    for i in 0..=6 {
        for j in 0..=6 {
            let p = BoxPoint {
                x: 24.0 * i as f64 / 6.0,
                y: 12.0 * j as f64 / 6.0,
            };
            let (u1, u2) = eb.utilities(p);
            println!("{:>6.1} {:>6.1} | {:>8.3} {:>8.3}", p.x, p.y, u1, u2);
        }
    }
    Ok(())
}
