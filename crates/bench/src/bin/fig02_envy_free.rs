//! Figure 2: envy-free regions for each user in the Edgeworth box.
//!
//! Samples the box on a fine grid and reports, per bandwidth column, the
//! cache interval in which each user is envy-free, plus the three
//! always-EF points the paper calls out (midpoint and the two corners).

use ref_bench::pipeline::capacity_for_agents;
use ref_core::edgeworth::{BoxPoint, EdgeworthBox};
use ref_core::utility::CobbDouglas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eb = EdgeworthBox::new(
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        capacity_for_agents(4),
    )?;

    println!("Figure 2: envy-free (EF) regions");
    println!("(a) user 1: x^0.6 y^0.4 >= (24-x)^0.6 (12-y)^0.4");
    println!("(b) user 2: symmetric condition for the complement bundle");
    println!();

    let samples = 200;
    println!(
        "{:>7} | {:>22} | {:>22}",
        "x1 GB/s", "EF-for-1 cache range", "EF-for-2 cache range"
    );
    for i in (0..=24).step_by(2) {
        let x = i as f64;
        let range_for = |ef: &dyn Fn(BoxPoint) -> bool| {
            let ys: Vec<f64> = (0..=samples)
                .map(|j| 12.0 * j as f64 / samples as f64)
                .filter(|&y| ef(BoxPoint { x, y }))
                .collect();
            match (ys.first(), ys.last()) {
                (Some(lo), Some(hi)) => format!("[{lo:.2}, {hi:.2}] MB"),
                _ => "empty".to_string(),
            }
        };
        let r1 = range_for(&|p| eb.envy_free_for_1(p));
        let r2 = range_for(&|p| eb.envy_free_for_2(p));
        println!("{x:>7.1} | {r1:>22} | {r2:>22}");
    }

    println!();
    println!("always-EF points (paper, section 3.2):");
    for p in [
        BoxPoint { x: 12.0, y: 6.0 },
        BoxPoint { x: 24.0, y: 0.0 },
        BoxPoint { x: 0.0, y: 12.0 },
    ] {
        assert!(eb.envy_free_for_1(p) && eb.envy_free_for_2(p));
        println!("  ({:>4.1} GB/s, {:>4.1} MB)  EF for both users", p.x, p.y);
    }
    Ok(())
}
