//! Figure 3: Cobb-Douglas indifference curves and marginal rates of
//! substitution for user 1.
//!
//! Prints three indifference curves (I1 < I2 < I3) and the MRS along the
//! middle curve, demonstrating smooth substitution (Eq. 9).

use ref_core::resource::Bundle;
use ref_core::utility::{CobbDouglas, Utility};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let u1 = CobbDouglas::new(1.0, vec![0.6, 0.4])?;

    println!("Figure 3: Cobb-Douglas indifference curves, u1 = x^0.6 y^0.4");
    println!();
    let levels = [
        u1.value_slice(&[4.0, 2.0]),
        u1.value_slice(&[8.0, 4.0]),
        u1.value_slice(&[14.0, 7.0]),
    ];
    println!(
        "{:>7} | {:>9} {:>9} {:>9}",
        "x GB/s", "I1 y MB", "I2 y MB", "I3 y MB"
    );
    for i in 1..=12 {
        let x = 2.0 * i as f64;
        let ys: Vec<String> = levels
            .iter()
            .map(|&l| match u1.indifference_y(l, x) {
                Ok(y) if y <= 12.0 => format!("{y:>9.3}"),
                _ => format!("{:>9}", "-"),
            })
            .collect();
        println!("{:>7.1} | {}", x, ys.join(" "));
    }

    println!();
    println!("marginal rate of substitution along I2 (Eq. 9: (0.6/0.4) * y/x):");
    println!("{:>7} {:>9} {:>9}", "x GB/s", "y MB", "MRS");
    for i in 1..=6 {
        let x = 3.0 * i as f64;
        if let Ok(y) = u1.indifference_y(levels[1], x) {
            if y <= 12.0 {
                let b = Bundle::new(vec![x, y])?;
                println!("{:>7.1} {:>9.3} {:>9.3}", x, y, u1.mrs(&b, 0, 1)?);
            }
        }
    }
    println!();
    println!(
        "substitution example (paper): u1(4 GB/s, 1 MB) = {:.4}, u1(1 GB/s, 8 MB) = {:.4}",
        u1.value_slice(&[4.0, 1.0]),
        u1.value_slice(&[1.0, 8.0])
    );
    Ok(())
}
