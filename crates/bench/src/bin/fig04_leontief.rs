//! Figure 4: Leontief (perfect-complement) indifference curves.
//!
//! Prints the L-shaped level sets of `u = min(x, 2y)` (the paper's Eq. 8
//! example) and demonstrates that disproportionate allocations add no
//! utility — the contrast motivating Cobb-Douglas.

use ref_core::utility::{Leontief, Utility};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // u = min(x, 2y): demand vector (1, 0.5).
    let u = Leontief::new(vec![1.0, 0.5])?;

    println!("Figure 4: Leontief indifference curves, u = min(x, 2y)");
    println!();
    println!("level sets (corner points of the L-shapes):");
    println!("{:>6} | corner (x, y)", "u");
    for level in [2.0, 4.0, 8.0, 16.0] {
        println!("{level:>6.1} | ({level:.1} GB/s, {:.1} MB)", level / 2.0);
    }

    println!();
    println!("no substitution: extra resources beyond the 2:1 ratio are wasted");
    for (x, y) in [(4.0, 2.0), (10.0, 2.0), (4.0, 10.0)] {
        println!(
            "  u({x:>4.1} GB/s, {y:>4.1} MB) = {:.3}",
            u.value_slice(&[x, y])
        );
    }

    println!();
    println!("MRS is 0 or infinity: utility along y at fixed x = 4:");
    println!("{:>7} {:>8}", "y MB", "u");
    for j in 1..=6 {
        let y = j as f64;
        println!("{y:>7.1} {:>8.3}", u.value_slice(&[4.0, y]));
    }
    Ok(())
}
