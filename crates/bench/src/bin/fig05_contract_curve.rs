//! Figure 5: the contract curve — all Pareto-efficient allocations.
//!
//! Prints the curve (tangency of the users' marginal rates of substitution,
//! Eq. 10) and verifies the tangency along it.

use ref_bench::pipeline::capacity_for_agents;
use ref_core::edgeworth::EdgeworthBox;
use ref_core::resource::Bundle;
use ref_core::utility::CobbDouglas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eb = EdgeworthBox::new(
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        capacity_for_agents(4),
    )?;

    println!("Figure 5: contract curve (Pareto-efficient set)");
    println!("tangency condition: (0.6/0.4)(y1/x1) = (0.2/0.8)(y2/x2)");
    println!();
    println!(
        "{:>7} {:>8} | {:>8} {:>8} | {:>8}",
        "x1 GB/s", "y1 MB", "MRS1", "MRS2", "u1"
    );
    for p in eb.contract_curve(23) {
        let b1 = Bundle::new(vec![p.x, p.y])?;
        let (x2, y2) = eb.complement(p);
        let b2 = Bundle::new(vec![x2, y2])?;
        let m1 = eb.u1().mrs(&b1, 0, 1)?;
        let m2 = eb.u2().mrs(&b2, 0, 1)?;
        let (u1, _) = eb.utilities(p);
        println!(
            "{:>7.2} {:>8.3} | {:>8.4} {:>8.4} | {:>8.3}",
            p.x, p.y, m1, m2, u1
        );
        assert!((m1 - m2).abs() < 1e-9 * m1.max(m2));
    }
    println!();
    println!("both origins (0,0) and (24,12) are also PE (one user at zero utility).");
    Ok(())
}
