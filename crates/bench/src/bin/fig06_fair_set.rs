//! Figure 6: the fair set — the intersection of both users' envy-free
//! regions with the contract curve.

use ref_bench::pipeline::capacity_for_agents;
use ref_core::edgeworth::EdgeworthBox;
use ref_core::utility::CobbDouglas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eb = EdgeworthBox::new(
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        capacity_for_agents(4),
    )?;

    println!("Figure 6: fair allocations = envy-free AND Pareto-efficient");
    println!();
    let curve = eb.contract_curve(400);
    let fair = eb.fair_set(400, false);
    println!("contract-curve samples: {}", curve.len());
    println!("fair (EF + PE) samples: {}", fair.len());
    let lo = fair.first().expect("fair set is nonempty");
    let hi = fair.last().expect("fair set is nonempty");
    println!(
        "fair segment endpoints: ({:.2} GB/s, {:.2} MB) .. ({:.2} GB/s, {:.2} MB)",
        lo.x, lo.y, hi.x, hi.y
    );
    println!();
    println!("{:>7} {:>8} | {:>8} {:>8}", "x1 GB/s", "y1 MB", "u1", "u2");
    for p in fair.iter().step_by((fair.len() / 12).max(1)) {
        let (u1, u2) = eb.utilities(*p);
        println!("{:>7.2} {:>8.3} | {:>8.3} {:>8.3}", p.x, p.y, u1, u2);
    }
    let ref_point = eb.ref_allocation();
    println!();
    println!(
        "REF allocation ({:.1} GB/s, {:.1} MB) lies in the fair set: {}",
        ref_point.x,
        ref_point.y,
        eb.envy_free_for_1(ref_point)
            && eb.envy_free_for_2(ref_point)
            && eb.is_on_contract_curve(ref_point, 1e-9)
    );
    Ok(())
}
