//! Figure 7: sharing incentives further constrain the fair set.
//!
//! Compares the fair (EF + PE) segment of the contract curve with and
//! without the SI constraint (Eqs. 4–5) and shows the REF point satisfies
//! all three.

use ref_bench::pipeline::capacity_for_agents;
use ref_core::edgeworth::EdgeworthBox;
use ref_core::utility::CobbDouglas;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eb = EdgeworthBox::new(
        CobbDouglas::new(1.0, vec![0.6, 0.4])?,
        CobbDouglas::new(1.0, vec![0.2, 0.8])?,
        capacity_for_agents(4),
    )?;

    println!("Figure 7: sharing incentives (SI) shrink the fair set");
    println!();
    let n = 1000;
    let fair = eb.fair_set(n, false);
    let fair_si = eb.fair_set(n, true);
    println!("fair (EF + PE) samples:      {:>4}", fair.len());
    println!("fair + SI samples:           {:>4}", fair_si.len());
    let span = |set: &[ref_core::edgeworth::BoxPoint]| match (set.first(), set.last()) {
        (Some(a), Some(b)) => format!(
            "x1 in [{:.2}, {:.2}] GB/s, y1 in [{:.2}, {:.2}] MB",
            a.x, b.x, a.y, b.y
        ),
        _ => "empty".to_string(),
    };
    println!("fair segment:    {}", span(&fair));
    println!("fair+SI segment: {}", span(&fair_si));
    println!();

    let p = eb.ref_allocation();
    println!(
        "REF point ({:.1} GB/s, {:.1} MB): EF1 {} EF2 {} PE {} SI {}",
        p.x,
        p.y,
        eb.envy_free_for_1(p),
        eb.envy_free_for_2(p),
        eb.is_on_contract_curve(p, 1e-9),
        eb.sharing_incentives(p)
    );

    let equal = ref_core::edgeworth::BoxPoint { x: 12.0, y: 6.0 };
    println!(
        "equal split (12, 6):            EF1 {} EF2 {} PE {} SI {}",
        eb.envy_free_for_1(equal),
        eb.envy_free_for_2(equal),
        eb.is_on_contract_curve(equal, 1e-9),
        eb.sharing_incentives(equal)
    );
    Ok(())
}
