//! Figure 8 (and Table 1): Cobb-Douglas fit quality.
//!
//! - Table 1: the simulated platform parameters.
//! - Fig. 8a: coefficient of determination (R-squared) for all 28
//!   workloads.
//! - Fig. 8b: simulated vs fitted IPC for representative high-R-squared
//!   workloads (ferret, fmm).
//! - Fig. 8c: the same for low-R-squared workloads (radiosity,
//!   string_match).

use ref_bench::pipeline::{experiment_options, fit_benchmark, fit_benchmarks, init_jobs};
use ref_sim::config::PlatformConfig;
use ref_workloads::profiles::{by_name, Benchmark, BENCHMARKS};

fn main() {
    init_jobs();
    let p = PlatformConfig::asplos14();
    println!("Table 1: platform parameters");
    println!(
        "  processor: {:.0} GHz out-of-order, {}-wide issue/commit, {} MSHRs",
        p.core.clock_hz / 1e9,
        p.core.issue_width,
        p.core.mshr_entries
    );
    println!(
        "  L1: {}, {}-way, {}-byte blocks, {}-cycle latency",
        p.l1.size, p.l1.ways, p.l1.block_bytes, p.l1.latency_cycles
    );
    println!(
        "  L2: {:?}, {}-way, {}-byte blocks, {}-cycle latency",
        PlatformConfig::l2_sweep()
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>(),
        p.l2.ways,
        p.l2.block_bytes,
        p.l2.latency_cycles
    );
    println!(
        "  DRAM: {:?}, closed page, {} ranks x {} banks",
        PlatformConfig::bandwidth_sweep()
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>(),
        p.dram.ranks,
        p.dram.banks_per_rank
    );
    println!();

    let opts = experiment_options();
    println!("Figure 8a: coefficient of determination per workload");
    println!("{:<18} {:>8}", "workload", "R^2");
    let refs: Vec<&Benchmark> = BENCHMARKS.iter().collect();
    let fits = fit_benchmarks(&refs, &opts);
    for f in &fits {
        println!("{:<18} {:>8.3}", f.name, f.r_squared);
    }
    let good = fits.iter().filter(|f| f.r_squared >= 0.7).count();
    println!(
        "\n{}/{} workloads fit with R^2 >= 0.7 (paper: most in 0.7-1.0)",
        good,
        fits.len()
    );

    for (fig, names) in [
        ("Figure 8b (high R^2)", ["ferret", "fmm"]),
        ("Figure 8c (low R^2)", ["radiosity", "string_match"]),
    ] {
        println!("\n{fig}: simulated vs fitted IPC over the 25 configurations");
        for name in names {
            let f = fit_benchmark(by_name(name).expect("known workload"), &opts);
            println!(
                "\n  {:<14} R^2 = {:.3}   (bw GB/s, cache MB) -> sim / est",
                f.name, f.r_squared
            );
            for (pt, est) in f.grid.points.iter().zip(&f.predictions) {
                println!(
                    "    ({:>4.1}, {:>5.3}) -> {:>6.3} / {:>6.3}",
                    pt.bandwidth.gb_per_sec(),
                    pt.cache.mib_f64(),
                    pt.ipc,
                    est
                );
            }
        }
    }
}
