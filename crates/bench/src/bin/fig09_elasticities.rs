//! Figure 9: re-scaled resource elasticities and the C/M classification.
//!
//! For every workload, prints the re-scaled cache and bandwidth
//! elasticities (Eq. 12) and the derived preference class: `C` when
//! `alpha_cache > 0.5`, `M` otherwise.

use ref_bench::pipeline::{experiment_options, fit_benchmarks, init_jobs};
use ref_workloads::profiles::{Benchmark, PreferenceClass, BENCHMARKS};

fn main() {
    init_jobs();
    let opts = experiment_options();
    println!("Figure 9: re-scaled elasticities (Eq. 12) and C/M classes");
    println!();
    println!(
        "{:<18} {:>9} {:>9} {:>7} {:>9}",
        "workload", "a_cache", "a_mem", "class", "expected"
    );
    let mut agree = 0;
    let refs: Vec<&Benchmark> = BENCHMARKS.iter().collect();
    for (b, f) in BENCHMARKS.iter().zip(fit_benchmarks(&refs, &opts)) {
        let (a_mem, a_cache) = f.rescaled_elasticities();
        let expected = match b.expected_class {
            PreferenceClass::Cache => "C",
            PreferenceClass::Memory => "M",
        };
        if f.class() == expected {
            agree += 1;
        }
        println!(
            "{:<18} {:>9.3} {:>9.3} {:>7} {:>9}",
            f.name,
            a_cache,
            a_mem,
            f.class(),
            expected
        );
    }
    println!();
    println!(
        "classification agreement with the paper: {agree}/{}",
        BENCHMARKS.len()
    );
}
