//! Figures 10-12: equal slowdown vs proportional elasticity on three
//! two-application case studies.
//!
//! - Fig. 10: histogram (C) + dedup (M) — equal slowdown happens to be
//!   fair.
//! - Fig. 11: barnes (C) + canneal (M) — equal slowdown violates SI and EF
//!   for canneal.
//! - Fig. 12: freqmine (C) + linear_regression (C) — equal slowdown
//!   violates SI and EF for freqmine.
//!
//! For each pair and mechanism, prints the allocation as a percentage of
//! total capacity and the SI / EF / PE verdicts.

use ref_bench::pipeline::{capacity_for_agents, experiment_options, fit_benchmark, init_jobs};
use ref_core::mechanism::{EqualSlowdown, Mechanism, ProportionalElasticity};
use ref_core::properties::FairnessReport;
use ref_core::resource::{Allocation, Capacity};
use ref_core::utility::CobbDouglas;
use ref_workloads::profiles::by_name;

fn report_line(
    label: &str,
    names: [&str; 2],
    agents: &[CobbDouglas],
    alloc: &Allocation,
    capacity: &Capacity,
) {
    println!("  {label}:");
    let shares = alloc.shares(capacity);
    for (i, name) in names.iter().enumerate() {
        println!(
            "    {:<18} bandwidth {:>5.1}%  cache {:>5.1}%",
            name,
            shares[i][0] * 100.0,
            shares[i][1] * 100.0
        );
    }
    // Optimization round-off tolerance.
    let report = FairnessReport::check_with_tolerance(agents, alloc, capacity, 1e-3);
    println!(
        "    SI {}   EF {}   PE {}",
        verdict(report.sharing_incentives(), &si_detail(&report, names)),
        verdict(report.envy_free(), &ef_detail(&report, names)),
        if report.pareto_efficient {
            "yes"
        } else {
            "no "
        }
    );
}

fn verdict(ok: bool, detail: &str) -> String {
    if ok {
        "yes".to_string()
    } else {
        format!("NO ({detail})")
    }
}

fn si_detail(r: &FairnessReport, names: [&str; 2]) -> String {
    r.si_violations
        .iter()
        .map(|v| names[v.agent].to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn ef_detail(r: &FairnessReport, names: [&str; 2]) -> String {
    r.envy_edges
        .iter()
        .map(|e| format!("{} envies {}", names[e.envious], names[e.envied]))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    init_jobs();
    let opts = experiment_options();
    // The paper's pair studies use a chip with 24 GB/s and 12 MB (§5.4).
    let capacity = capacity_for_agents(4);

    let cases = [
        ("Figure 10", ["histogram", "dedup"], "C-M pair"),
        ("Figure 11", ["barnes", "canneal"], "C-M pair"),
        ("Figure 12", ["freqmine", "linear_regression"], "C-C pair"),
    ];

    for (fig, names, kind) in cases {
        println!("{fig}: {} + {} ({kind})", names[0], names[1]);
        let agents: Vec<CobbDouglas> = names
            .iter()
            .map(|n| {
                let f = fit_benchmark(by_name(n).expect("known workload"), &opts);
                let (a_mem, a_cache) = f.rescaled_elasticities();
                println!(
                    "  {:<18} fitted rescaled elasticities: bw {:.3}, cache {:.3} ({})",
                    n,
                    a_mem,
                    a_cache,
                    f.class()
                );
                f.utility.clone()
            })
            .collect();

        match EqualSlowdown::new().allocate(&agents, &capacity) {
            Ok(alloc) => report_line("equal slowdown", names, &agents, &alloc, &capacity),
            Err(e) => println!("  equal slowdown failed: {e}"),
        }
        match ProportionalElasticity.allocate(&agents, &capacity) {
            Ok(alloc) => report_line("proportional elasticity", names, &agents, &alloc, &capacity),
            Err(e) => println!("  proportional elasticity failed: {e}"),
        }
        println!();
    }
}
