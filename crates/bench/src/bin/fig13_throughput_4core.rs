//! Figure 13: weighted system throughput on the 4-core system.
//!
//! For each 4-application mix WD1-WD5 (Table 2) and each of the four
//! allocation policies of §5.5, prints the weighted system throughput
//! (Eq. 17). Expected shape: Max-Welfare-w/o-Fairness is the upper bound;
//! the two fair mechanisms coincide; the price of game-theoretic fairness
//! stays under ~10%.

use ref_bench::pipeline::{capacity_for_agents, experiment_options, fit_mix, init_jobs};
use ref_core::mechanism::{EqualSlowdown, MaxWelfare, Mechanism, ProportionalElasticity};
use ref_core::utility::CobbDouglas;
use ref_core::welfare::weighted_system_throughput;
use ref_workloads::suite::four_core_mixes;

fn main() {
    init_jobs();
    let opts = experiment_options();
    let capacity = capacity_for_agents(4);
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(MaxWelfare::with_fairness()),
        Box::new(ProportionalElasticity),
        Box::new(MaxWelfare::without_fairness()),
        Box::new(EqualSlowdown::new()),
    ];

    println!("Figure 13: weighted system throughput, 4-core system (24 GB/s, 12 MB)");
    println!();
    print!("{:<14}", "mix");
    for m in &mechanisms {
        print!(" {:>28}", m.name());
    }
    println!();

    for mix in four_core_mixes() {
        let fits = fit_mix(&mix, &opts);
        let agents: Vec<CobbDouglas> = fits.iter().map(|f| f.utility.clone()).collect();
        print!("{:<14}", format!("{} ({})", mix.id, mix.paper_annotation));
        let mut row = Vec::new();
        for m in &mechanisms {
            match m.allocate(&agents, &capacity) {
                Ok(alloc) => {
                    let t = weighted_system_throughput(&agents, &alloc, &capacity);
                    row.push(Some(t));
                    print!(" {t:>28.4}");
                }
                Err(e) => {
                    row.push(None);
                    print!(" {:>28}", format!("error: {e}"));
                }
            }
        }
        println!();
        if let (Some(fair), Some(unfair)) = (row[0], row[2]) {
            let penalty = (1.0 - fair / unfair) * 100.0;
            println!(
                "{:<14}   fairness penalty vs upper bound: {penalty:.1}%",
                ""
            );
        }
    }
}
