//! Figure 14: weighted system throughput on the 8-core system.
//!
//! As Figure 13 but for the eight-application mixes WD6-WD10 on a
//! 48 GB/s + 24 MB machine. Expected shape: fairness penalty under ~10%,
//! and equal slowdown degrading relative to proportional elasticity as the
//! number of agents grows (the opportunity cost of favoring the least
//! satisfied user).

use ref_bench::pipeline::{capacity_for_agents, experiment_options, fit_mix, init_jobs};
use ref_core::mechanism::{EqualSlowdown, MaxWelfare, Mechanism, ProportionalElasticity};
use ref_core::utility::CobbDouglas;
use ref_core::welfare::weighted_system_throughput;
use ref_workloads::suite::eight_core_mixes;

fn main() {
    init_jobs();
    let opts = experiment_options();
    let capacity = capacity_for_agents(8);
    let mechanisms: Vec<Box<dyn Mechanism>> = vec![
        Box::new(MaxWelfare::with_fairness()),
        Box::new(ProportionalElasticity),
        Box::new(MaxWelfare::without_fairness()),
        Box::new(EqualSlowdown::new()),
    ];

    println!("Figure 14: weighted system throughput, 8-core system (48 GB/s, 24 MB)");
    println!();
    print!("{:<16}", "mix");
    for m in &mechanisms {
        print!(" {:>28}", m.name());
    }
    println!();

    for mix in eight_core_mixes() {
        let fits = fit_mix(&mix, &opts);
        let agents: Vec<CobbDouglas> = fits.iter().map(|f| f.utility.clone()).collect();
        print!("{:<16}", format!("{} ({})", mix.id, mix.paper_annotation));
        let mut row = Vec::new();
        for m in &mechanisms {
            match m.allocate(&agents, &capacity) {
                Ok(alloc) => {
                    let t = weighted_system_throughput(&agents, &alloc, &capacity);
                    row.push(Some(t));
                    print!(" {t:>28.4}");
                }
                Err(e) => {
                    row.push(None);
                    print!(" {:>28}", format!("error: {e}"));
                }
            }
        }
        println!();
        if let (Some(fair), Some(unfair), Some(slowdown), Some(pe)) =
            (row[0], row[2], row[3], row[1])
        {
            println!(
                "{:<16}   fairness penalty {:.1}%; proportional elasticity vs equal slowdown: {:+.1}%",
                "",
                (1.0 - fair / unfair) * 100.0,
                (pe / slowdown - 1.0) * 100.0
            );
        }
    }
}
