//! Performance-trajectory harness: times the profiling pipeline serial
//! vs parallel, measures raw simulator throughput, exercises the
//! simulation memo, benchmarks the solver fast path (incremental refits
//! and warm-started GP solves), and emits `BENCH_pipeline.json` so
//! successive revisions can be compared.
//!
//! ```text
//! cargo run --release -p ref-bench --bin perf_report           # full
//! cargo run --release -p ref-bench --bin perf_report -- --quick
//! cargo run --release -p ref-bench --bin perf_report -- --jobs 8
//! ```
//!
//! Every parallel sweep is checked bit-for-bit against its serial twin
//! before any timing is reported; a divergence aborts the run. Two
//! speedup figures are recorded: `speedup_quick` times the tiny
//! quick-config tasks — those are dominated by pool dispatch overhead
//! and sit near 1.0x no matter how many cores exist — while
//! `speedup_scaled` times tasks big enough to amortize dispatch, and is
//! the honest parallelism figure (the legacy `speedup` key aliases it).
//! The JSON also records `host_threads` so downstream tooling can tell
//! "no speedup" from "no parallelism available".
//!
//! The `solver_microbench` section gates the solver fast path: the
//! incremental (Givens row-append) epoch-fit loop must beat rebuilding
//! the least-squares problem from scratch every epoch by at least
//! [`EPOCH_FIT_GATE`]x while agreeing to 1e-10, and a warm-started GP
//! solve must land within 1e-6 of the cold solve it reuses.

use std::time::Instant;

use ref_bench::pipeline::init_jobs;
use ref_sim::config::PlatformConfig;
use ref_sim::system::SingleCoreSystem;
use ref_solver::gp::{GeometricProgram, GpWarmStart, Monomial, Posynomial};
use ref_solver::{lstsq, UpdatableLstsq};
use ref_workloads::memo;
use ref_workloads::profiler::{profile, ProfileGrid, ProfilerOptions};
use ref_workloads::profiles::{Benchmark, BENCHMARKS};

/// Benchmarks covered by the sweep timings: a slice of the suite large
/// enough to keep every worker busy.
const SWEEP_BENCHMARKS: usize = 8;

/// Benchmarks covered by the scaled sweep under `--quick`: full-size
/// tasks, but few enough of them to keep the quick run fast.
const SCALED_QUICK_BENCHMARKS: usize = 3;

/// Minimum incremental-over-batch epoch-fit throughput ratio.
const EPOCH_FIT_GATE: f64 = 5.0;

fn sweep_options(quick: bool, threads: Option<usize>, use_memo: bool) -> ProfilerOptions {
    let (warmup, instructions) = if quick {
        (20_000, 30_000)
    } else {
        (80_000, 150_000)
    };
    ProfilerOptions {
        warmup_instructions: warmup,
        instructions,
        threads,
        use_memo,
        ..ProfilerOptions::default()
    }
}

fn sweep(benches: &[&Benchmark], opts: &ProfilerOptions) -> (Vec<ProfileGrid>, f64) {
    let start = Instant::now();
    let grids = benches.iter().map(|b| profile(b, opts)).collect();
    (grids, start.elapsed().as_secs_f64())
}

fn grids_identical(a: &[ProfileGrid], b: &[ProfileGrid]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.workload == y.workload
                && x.points.len() == y.points.len()
                && x.points
                    .iter()
                    .zip(&y.points)
                    .all(|(p, q)| p.ipc.to_bits() == q.ipc.to_bits())
        })
}

/// Raw simulator throughput: simulated cycles per wall-clock second on
/// the Table-1 platform.
fn sim_cycles_per_sec(quick: bool) -> f64 {
    let instructions = if quick { 200_000 } else { 1_000_000 };
    let platform = PlatformConfig::asplos14();
    let bench = &BENCHMARKS[0];
    let start = Instant::now();
    let mut system = SingleCoreSystem::new(&platform);
    let report = system.run(bench.stream(1), instructions);
    report.cycles / start.elapsed().as_secs_f64()
}

/// Times one serial/parallel sweep pair, aborting on any bitwise grid
/// divergence, and returns the serial grids plus both wall times.
fn sweep_pair(
    label: &str,
    benches: &[&Benchmark],
    quick: bool,
    threads: usize,
) -> (Vec<ProfileGrid>, f64, f64) {
    let (serial_grids, serial_secs) = sweep(benches, &sweep_options(quick, Some(1), false));
    let (parallel_grids, parallel_secs) = sweep(benches, &sweep_options(quick, None, false));
    if !grids_identical(&serial_grids, &parallel_grids) {
        eprintln!("FATAL: {label} parallel sweep diverged from serial sweep");
        std::process::exit(1);
    }
    println!(
        "{label} sweep ({} benchmarks): serial {serial_secs:.3} s, \
         parallel ({threads} threads) {parallel_secs:.3} s, {:.2}x",
        benches.len(),
        serial_secs / parallel_secs
    );
    (serial_grids, serial_secs, parallel_secs)
}

/// Solver fast-path microbenchmark results.
struct SolverMicrobench {
    epochs: usize,
    batch_fit_secs: f64,
    incremental_fit_secs: f64,
    epoch_fit_speedup: f64,
    fit_divergence: f64,
    gp_cold_secs: f64,
    gp_warm_secs: f64,
    gp_warm_speedup: f64,
    gp_warm_divergence: f64,
}

/// The epoch-fit loop every market agent runs: one new observation per
/// epoch, refit after each. The batch path rebuilds the design matrix
/// and refactorizes from scratch (what `OnlineEstimator` did before the
/// fast path); the incremental path appends one Givens row to the packed
/// triangle. Both produce the same coefficients to near machine
/// precision — the divergence is measured at the final epoch.
fn epoch_fit_bench(quick: bool) -> (f64, f64, f64, usize) {
    let epochs = if quick { 48 } else { 96 };
    let reps = if quick { 40 } else { 60 };
    // Synthetic 2-resource Cobb-Douglas observations in log space, the
    // exact shape the market's estimator fits.
    let inputs: Vec<Vec<f64>> = (0..epochs)
        .map(|i| {
            let a = 1.0 + 23.0 * f64::from(i as u32 % 7) / 6.0;
            let b = 0.5 + 11.5 * f64::from(i as u32 % 5) / 4.0;
            vec![a.ln(), b.ln()]
        })
        .collect();
    let ys: Vec<f64> = inputs
        .iter()
        .enumerate()
        .map(|(i, row)| 0.6 * row[0] + 0.4 * row[1] + 0.01 * (1.0 + (i as f64)).ln())
        .collect();

    let mut batch_coefs = Vec::new();
    let start = Instant::now();
    for _ in 0..reps {
        for m in 4..=epochs {
            let design = lstsq::design_with_intercept(&inputs[..m]).expect("design");
            let fit = lstsq::fit(&design, &ys[..m]).expect("batch fit");
            if m == epochs {
                batch_coefs = fit.coefficients().to_vec();
            }
        }
    }
    let batch_secs = start.elapsed().as_secs_f64() / reps as f64;

    let mut incr_coefs = Vec::new();
    let start = Instant::now();
    for _ in 0..reps {
        let mut triangle = UpdatableLstsq::new(3);
        for (m, (row, y)) in inputs.iter().zip(&ys).enumerate() {
            triangle
                .append(&[1.0, row[0], row[1]], *y)
                .expect("finite row");
            if m + 1 >= 4 {
                let fit = triangle.solve().expect("incremental fit");
                if m + 1 == epochs {
                    incr_coefs = fit.coefficients().to_vec();
                }
            }
        }
    }
    let incr_secs = start.elapsed().as_secs_f64() / reps as f64;

    let divergence = batch_coefs
        .iter()
        .zip(&incr_coefs)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    (batch_secs, incr_secs, divergence, epochs)
}

/// The paper-example Nash-welfare GP (two agents, two resources).
fn nash_gp() -> (GeometricProgram, Vec<f64>) {
    let welfare = Monomial::new(1.0, vec![0.6, 0.4, 0.2, 0.8]).expect("monomial");
    let mut gp = GeometricProgram::minimize(4, welfare.reciprocal().into()).expect("gp");
    gp.add_constraint(
        Posynomial::from_monomials(vec![
            Monomial::new(1.0 / 24.0, vec![1.0, 0.0, 0.0, 0.0]).expect("monomial"),
            Monomial::new(1.0 / 24.0, vec![0.0, 0.0, 1.0, 0.0]).expect("monomial"),
        ])
        .expect("posynomial"),
    )
    .expect("constraint");
    gp.add_constraint(
        Posynomial::from_monomials(vec![
            Monomial::new(1.0 / 12.0, vec![0.0, 1.0, 0.0, 0.0]).expect("monomial"),
            Monomial::new(1.0 / 12.0, vec![0.0, 0.0, 0.0, 1.0]).expect("monomial"),
        ])
        .expect("posynomial"),
    )
    .expect("constraint");
    (gp, vec![6.0, 3.0, 6.0, 3.0])
}

/// Cold vs warm GP solves on the paper-example Nash program: the warm
/// path reuses the cold optimum as its hint, exactly what the market
/// does between epochs.
fn gp_warm_bench(quick: bool) -> (f64, f64, f64) {
    let reps = if quick { 50 } else { 150 };
    let (gp, x0) = nash_gp();
    let cold = gp.solve(&x0).expect("cold solve");
    let hint = GpWarmStart::from_solution(&cold);

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(gp.solve(std::hint::black_box(&x0)).expect("cold solve"));
    }
    let cold_secs = start.elapsed().as_secs_f64() / reps as f64;

    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            gp.solve_warm(std::hint::black_box(&x0), Some(&hint))
                .expect("warm solve"),
        );
    }
    let warm_secs = start.elapsed().as_secs_f64() / reps as f64;

    let warm = gp.solve_warm(&x0, Some(&hint)).expect("warm solve");
    let divergence = cold
        .x
        .iter()
        .zip(&warm.x)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    (cold_secs, warm_secs, divergence)
}

/// Runs both solver microbenches and enforces the fast-path gates.
fn solver_microbench(quick: bool) -> SolverMicrobench {
    let (batch_fit_secs, incremental_fit_secs, fit_divergence, epochs) = epoch_fit_bench(quick);
    let epoch_fit_speedup = batch_fit_secs / incremental_fit_secs;
    println!(
        "solver epoch-fit ({epochs} epochs): batch {:.3} ms, incremental {:.3} ms, \
         {epoch_fit_speedup:.1}x (max coefficient divergence {fit_divergence:.2e})",
        batch_fit_secs * 1e3,
        incremental_fit_secs * 1e3
    );
    if epoch_fit_speedup < EPOCH_FIT_GATE {
        eprintln!(
            "FATAL: incremental epoch-fit speedup {epoch_fit_speedup:.2}x \
             is below the {EPOCH_FIT_GATE}x gate"
        );
        std::process::exit(1);
    }
    if fit_divergence > 1e-10 {
        eprintln!("FATAL: incremental fit diverged from batch fit by {fit_divergence:.2e}");
        std::process::exit(1);
    }

    let (gp_cold_secs, gp_warm_secs, gp_warm_divergence) = gp_warm_bench(quick);
    let gp_warm_speedup = gp_cold_secs / gp_warm_secs;
    println!(
        "solver GP nash-2x2: cold {:.3} ms, warm {:.3} ms, {gp_warm_speedup:.2}x \
         (max allocation divergence {gp_warm_divergence:.2e})",
        gp_cold_secs * 1e3,
        gp_warm_secs * 1e3
    );
    if gp_warm_divergence > 1e-6 {
        eprintln!("FATAL: warm-started GP diverged from cold solve by {gp_warm_divergence:.2e}");
        std::process::exit(1);
    }

    SolverMicrobench {
        epochs,
        batch_fit_secs,
        incremental_fit_secs,
        epoch_fit_speedup,
        fit_divergence,
        gp_cold_secs,
        gp_warm_secs,
        gp_warm_speedup,
        gp_warm_divergence,
    }
}

fn main() {
    let rest = init_jobs();
    let quick = rest.iter().any(|a| a == "--quick");
    if let Some(unknown) = rest.iter().find(|a| *a != "--quick") {
        eprintln!("unknown argument {unknown:?}; supported: --quick, --jobs N");
        std::process::exit(2);
    }
    let threads = ref_pool::threads();
    let benches: Vec<&Benchmark> = BENCHMARKS.iter().take(SWEEP_BENCHMARKS).collect();
    println!(
        "perf_report: {} benchmarks x 25-point grid, pool width {threads}{}",
        benches.len(),
        if quick { " (quick)" } else { "" }
    );

    let cps = sim_cycles_per_sec(quick);
    println!(
        "simulator throughput: {:.2}M simulated cycles/sec",
        cps / 1e6
    );

    // Quick-size tasks are dispatch-bound; their speedup is reported but
    // never treated as the parallelism figure.
    let (quick_grids, serial_quick_secs, parallel_quick_secs) =
        sweep_pair("quick-size", &benches, true, threads);
    let speedup_quick = serial_quick_secs / parallel_quick_secs;

    // Scaled tasks amortize dispatch; under --quick, fewer benchmarks at
    // full size keep the wall time bounded.
    let scaled_benches: Vec<&Benchmark> = if quick {
        benches
            .iter()
            .copied()
            .take(SCALED_QUICK_BENCHMARKS)
            .collect()
    } else {
        benches.clone()
    };
    let (scaled_grids, serial_scaled_secs, parallel_scaled_secs) =
        sweep_pair("scaled", &scaled_benches, false, threads);
    let speedup_scaled = serial_scaled_secs / parallel_scaled_secs;

    // Memo: a cold pass populates it, a warm pass should be ~free. The
    // memoised grids are compared against the matching plain sweep.
    let (memo_reference, memo_quick) = if quick {
        (&quick_grids, true)
    } else {
        (&scaled_grids, false)
    };
    memo::clear();
    let memo_opts = sweep_options(memo_quick, None, true);
    let (_, cold_secs) = sweep(&benches, &memo_opts);
    let (warm_grids, warm_secs) = sweep(&benches, &memo_opts);
    let stats = memo::stats();
    if !grids_identical(
        memo_reference,
        &warm_grids[..memo_reference.len().min(warm_grids.len())],
    ) {
        eprintln!("FATAL: memoised sweep diverged from plain sweep");
        std::process::exit(1);
    }
    println!(
        "memo: cold {cold_secs:.3} s, warm {warm_secs:.3} s, {} hits / {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );

    let solver = solver_microbench(quick);

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \
         \"benchmarks\": {},\n  \"grid_points\": 25,\n  \
         \"sim_cycles_per_sec\": {cps:.0},\n  \
         \"serial_secs\": {serial_quick_secs:.6},\n  \"parallel_secs\": {parallel_quick_secs:.6},\n  \
         \"speedup\": {speedup_scaled:.3},\n  \
         \"speedup_quick\": {speedup_quick:.3},\n  \"speedup_scaled\": {speedup_scaled:.3},\n  \
         \"scaled_serial_secs\": {serial_scaled_secs:.6},\n  \
         \"scaled_parallel_secs\": {parallel_scaled_secs:.6},\n  \
         \"scaled_benchmarks\": {},\n  \
         \"memo_cold_secs\": {cold_secs:.6},\n  \"memo_warm_secs\": {warm_secs:.6},\n  \
         \"memo_hits\": {},\n  \"memo_misses\": {},\n  \
         \"solver_microbench\": {{\n    \
         \"epoch_fits\": {},\n    \
         \"batch_fit_secs\": {:.6},\n    \"incremental_fit_secs\": {:.6},\n    \
         \"epoch_fit_speedup\": {:.2},\n    \"fit_divergence\": {:.3e},\n    \
         \"gp_cold_secs\": {:.6},\n    \"gp_warm_secs\": {:.6},\n    \
         \"gp_warm_speedup\": {:.3},\n    \"gp_warm_divergence\": {:.3e}\n  }},\n  \
         \"bit_identical\": true\n}}\n",
        benches.len(),
        scaled_benches.len(),
        stats.hits,
        stats.misses,
        solver.epochs,
        solver.batch_fit_secs,
        solver.incremental_fit_secs,
        solver.epoch_fit_speedup,
        solver.fit_divergence,
        solver.gp_cold_secs,
        solver.gp_warm_secs,
        solver.gp_warm_speedup,
        solver.gp_warm_divergence
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");

    aggregate_report(&json);
}

/// Folds the serving benchmark (`BENCH_serve.json`, produced by
/// `cargo run --release -p ref-serve --bin loadgen`), the chaos
/// harness (`BENCH_chaos.json`, produced by
/// `cargo run --release -p ref-bench --bin chaos`), the failover
/// harness (`BENCH_failover.json`, produced by
/// `cargo run --release -p ref-bench --bin failover`), the sharded
/// scale harness (`BENCH_shard.json`, produced by
/// `cargo run --release -p ref-bench --bin shard_scale`), and the
/// credit-market harness (`BENCH_credit.json`, produced by
/// `cargo run --release -p ref-bench --bin credit_bench`), and the
/// shard-chaos harness (`BENCH_shard_chaos.json`, produced by
/// `cargo run --release -p ref-bench --bin shard_chaos`), and the
/// deterministic-simulation sweep (`BENCH_dst.json`, produced by
/// `cargo run --release -p ref-bench --bin dst_sweep`) together with
/// the pipeline numbers into one `BENCH_report.json`, so a single
/// artifact tracks the offline pipeline, the online front-end, crash
/// recovery, replicated failover, shard scaling, temporal fairness,
/// partition tolerance, and seeded fault simulation.
fn aggregate_report(pipeline_json: &str) {
    use ref_serve::json::Value;

    let pipeline = Value::parse(pipeline_json).expect("pipeline JSON is valid");
    let serve = match std::fs::read_to_string("BENCH_serve.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                let levels = v
                    .get("levels")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
                println!("aggregating BENCH_serve.json ({levels} load levels)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_serve.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_serve.json found; report covers the pipeline only");
            Value::Null
        }
    };
    let chaos = match std::fs::read_to_string("BENCH_chaos.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("identical").and_then(Value::as_bool) != Some(true) {
                    eprintln!("FATAL: BENCH_chaos.json records a recovery divergence");
                    std::process::exit(1);
                }
                let rounds = v
                    .get("rounds")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
                println!("aggregating BENCH_chaos.json ({rounds} kill-and-recover rounds)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_chaos.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_chaos.json found; report skips crash recovery");
            Value::Null
        }
    };
    let failover = match std::fs::read_to_string("BENCH_failover.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("identical").and_then(Value::as_bool) != Some(true)
                    || v.get("events_lost").and_then(Value::as_u64) != Some(0)
                {
                    eprintln!("FATAL: BENCH_failover.json records divergence or event loss");
                    std::process::exit(1);
                }
                let rounds = v
                    .get("rounds")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
                println!("aggregating BENCH_failover.json ({rounds} kill-and-promote rounds)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_failover.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_failover.json found; report skips failover");
            Value::Null
        }
    };
    let shard = match std::fs::read_to_string("BENCH_shard.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("replay_identical").and_then(Value::as_bool) != Some(true) {
                    eprintln!("FATAL: BENCH_shard.json records a per-shard replay divergence");
                    std::process::exit(1);
                }
                let speedup = v
                    .get("scaling")
                    .and_then(|s| s.get("speedup"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                println!("aggregating BENCH_shard.json ({speedup:.2}x shard speedup)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_shard.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_shard.json found; report skips shard scaling");
            Value::Null
        }
    };
    let credit = match std::fs::read_to_string("BENCH_credit.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                let gates = v.get("gates");
                if gates.and_then(|g| g.get("all_ok")).and_then(Value::as_bool) != Some(true) {
                    eprintln!("FATAL: BENCH_credit.json records a failed temporal-SI gate");
                    std::process::exit(1);
                }
                let saved = gates
                    .and_then(|g| g.get("bursty_ref_violations"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                println!(
                    "aggregating BENCH_credit.json (credit erased {saved} bursty \
                     temporal-SI violations)"
                );
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_credit.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_credit.json found; report skips temporal fairness");
            Value::Null
        }
    };
    let shard_chaos = match std::fs::read_to_string("BENCH_shard_chaos.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("all_ok").and_then(Value::as_bool) != Some(true) {
                    eprintln!("FATAL: BENCH_shard_chaos.json records a failed partition gate");
                    std::process::exit(1);
                }
                let restarts = v
                    .get("recovery")
                    .and_then(|r| r.get("shard_restarts"))
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                println!("aggregating BENCH_shard_chaos.json ({restarts} in-place shard restarts)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_shard_chaos.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_shard_chaos.json found; report skips partition tolerance");
            Value::Null
        }
    };
    let dst = match std::fs::read_to_string("BENCH_dst.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                let broke_on_purpose =
                    !matches!(v.get("break_invariant"), None | Some(Value::Null));
                if !broke_on_purpose && v.get("violations").and_then(Value::as_u64) != Some(0) {
                    eprintln!("FATAL: BENCH_dst.json records a simulation invariant violation");
                    std::process::exit(1);
                }
                let seeds = v.get("seeds_run").and_then(Value::as_u64).unwrap_or(0);
                let events = v.get("sim_events").and_then(Value::as_u64).unwrap_or(0);
                println!("aggregating BENCH_dst.json ({seeds} seeds, {events} sim events)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_dst.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_dst.json found; report skips deterministic simulation");
            Value::Null
        }
    };
    let report = Value::obj(vec![
        ("pipeline", pipeline),
        ("serve", serve),
        ("chaos", chaos),
        ("failover", failover),
        ("shard", shard),
        ("credit", credit),
        ("shard_chaos", shard_chaos),
        ("dst", dst),
    ]);
    std::fs::write("BENCH_report.json", format!("{}\n", report.encode()))
        .expect("write BENCH_report.json");
    println!("wrote BENCH_report.json");
}
