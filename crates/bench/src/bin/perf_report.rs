//! Performance-trajectory harness: times the profiling pipeline serial
//! vs parallel, measures raw simulator throughput, exercises the
//! simulation memo, and emits `BENCH_pipeline.json` so successive
//! revisions can be compared.
//!
//! ```text
//! cargo run --release -p ref-bench --bin perf_report           # full
//! cargo run --release -p ref-bench --bin perf_report -- --quick
//! cargo run --release -p ref-bench --bin perf_report -- --jobs 8
//! ```
//!
//! The parallel sweep is checked bit-for-bit against the serial sweep
//! before any timing is reported; a divergence aborts the run. On a
//! single-core host the speedup column degenerates to ~1.0x — the JSON
//! records `host_threads` so downstream tooling can tell "no speedup"
//! from "no parallelism available".

use std::time::Instant;

use ref_bench::pipeline::init_jobs;
use ref_sim::config::PlatformConfig;
use ref_sim::system::SingleCoreSystem;
use ref_workloads::memo;
use ref_workloads::profiler::{profile, ProfileGrid, ProfilerOptions};
use ref_workloads::profiles::{Benchmark, BENCHMARKS};

/// Benchmarks covered by the sweep timings: a slice of the suite large
/// enough to keep every worker busy.
const SWEEP_BENCHMARKS: usize = 8;

fn sweep_options(quick: bool, threads: Option<usize>, use_memo: bool) -> ProfilerOptions {
    let (warmup, instructions) = if quick {
        (20_000, 30_000)
    } else {
        (80_000, 150_000)
    };
    ProfilerOptions {
        warmup_instructions: warmup,
        instructions,
        threads,
        use_memo,
        ..ProfilerOptions::default()
    }
}

fn sweep(benches: &[&Benchmark], opts: &ProfilerOptions) -> (Vec<ProfileGrid>, f64) {
    let start = Instant::now();
    let grids = benches.iter().map(|b| profile(b, opts)).collect();
    (grids, start.elapsed().as_secs_f64())
}

fn grids_identical(a: &[ProfileGrid], b: &[ProfileGrid]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.workload == y.workload
                && x.points.len() == y.points.len()
                && x.points
                    .iter()
                    .zip(&y.points)
                    .all(|(p, q)| p.ipc.to_bits() == q.ipc.to_bits())
        })
}

/// Raw simulator throughput: simulated cycles per wall-clock second on
/// the Table-1 platform.
fn sim_cycles_per_sec(quick: bool) -> f64 {
    let instructions = if quick { 200_000 } else { 1_000_000 };
    let platform = PlatformConfig::asplos14();
    let bench = &BENCHMARKS[0];
    let start = Instant::now();
    let mut system = SingleCoreSystem::new(&platform);
    let report = system.run(bench.stream(1), instructions);
    report.cycles / start.elapsed().as_secs_f64()
}

fn main() {
    let rest = init_jobs();
    let quick = rest.iter().any(|a| a == "--quick");
    if let Some(unknown) = rest.iter().find(|a| *a != "--quick") {
        eprintln!("unknown argument {unknown:?}; supported: --quick, --jobs N");
        std::process::exit(2);
    }
    let threads = ref_pool::threads();
    let benches: Vec<&Benchmark> = BENCHMARKS.iter().take(SWEEP_BENCHMARKS).collect();
    println!(
        "perf_report: {} benchmarks x 25-point grid, pool width {threads}{}",
        benches.len(),
        if quick { " (quick)" } else { "" }
    );

    let cps = sim_cycles_per_sec(quick);
    println!(
        "simulator throughput: {:.2}M simulated cycles/sec",
        cps / 1e6
    );

    let (serial_grids, serial_secs) = sweep(&benches, &sweep_options(quick, Some(1), false));
    println!("serial sweep   (1 thread):  {serial_secs:.3} s");

    let (parallel_grids, parallel_secs) = sweep(&benches, &sweep_options(quick, None, false));
    println!("parallel sweep ({threads} threads): {parallel_secs:.3} s");

    if !grids_identical(&serial_grids, &parallel_grids) {
        eprintln!("FATAL: parallel sweep diverged from serial sweep");
        std::process::exit(1);
    }
    let speedup = serial_secs / parallel_secs;
    println!("speedup: {speedup:.2}x (bit-identical grids verified)");

    // Memo: a cold pass populates it, a warm pass should be ~free.
    memo::clear();
    let memo_opts = sweep_options(quick, None, true);
    let (_, cold_secs) = sweep(&benches, &memo_opts);
    let (warm_grids, warm_secs) = sweep(&benches, &memo_opts);
    let stats = memo::stats();
    if !grids_identical(&serial_grids, &warm_grids) {
        eprintln!("FATAL: memoised sweep diverged from serial sweep");
        std::process::exit(1);
    }
    println!(
        "memo: cold {cold_secs:.3} s, warm {warm_secs:.3} s, {} hits / {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );

    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"host_threads\": {threads},\n  \
         \"benchmarks\": {},\n  \"grid_points\": 25,\n  \
         \"sim_cycles_per_sec\": {cps:.0},\n  \
         \"serial_secs\": {serial_secs:.6},\n  \"parallel_secs\": {parallel_secs:.6},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"memo_cold_secs\": {cold_secs:.6},\n  \"memo_warm_secs\": {warm_secs:.6},\n  \
         \"memo_hits\": {},\n  \"memo_misses\": {},\n  \
         \"bit_identical\": true\n}}\n",
        benches.len(),
        stats.hits,
        stats.misses
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");

    aggregate_report(&json);
}

/// Folds the serving benchmark (`BENCH_serve.json`, produced by
/// `cargo run --release -p ref-serve --bin loadgen`), the chaos
/// harness (`BENCH_chaos.json`, produced by
/// `cargo run --release -p ref-bench --bin chaos`), the failover
/// harness (`BENCH_failover.json`, produced by
/// `cargo run --release -p ref-bench --bin failover`), and the sharded
/// scale harness (`BENCH_shard.json`, produced by
/// `cargo run --release -p ref-bench --bin shard_scale`) together with
/// the pipeline numbers into one `BENCH_report.json`, so a single
/// artifact tracks the offline pipeline, the online front-end, crash
/// recovery, replicated failover, and shard scaling.
fn aggregate_report(pipeline_json: &str) {
    use ref_serve::json::Value;

    let pipeline = Value::parse(pipeline_json).expect("pipeline JSON is valid");
    let serve = match std::fs::read_to_string("BENCH_serve.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                let levels = v
                    .get("levels")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
                println!("aggregating BENCH_serve.json ({levels} load levels)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_serve.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_serve.json found; report covers the pipeline only");
            Value::Null
        }
    };
    let chaos = match std::fs::read_to_string("BENCH_chaos.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("identical").and_then(Value::as_bool) != Some(true) {
                    eprintln!("FATAL: BENCH_chaos.json records a recovery divergence");
                    std::process::exit(1);
                }
                let rounds = v
                    .get("rounds")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
                println!("aggregating BENCH_chaos.json ({rounds} kill-and-recover rounds)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_chaos.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_chaos.json found; report skips crash recovery");
            Value::Null
        }
    };
    let failover = match std::fs::read_to_string("BENCH_failover.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("identical").and_then(Value::as_bool) != Some(true)
                    || v.get("events_lost").and_then(Value::as_u64) != Some(0)
                {
                    eprintln!("FATAL: BENCH_failover.json records divergence or event loss");
                    std::process::exit(1);
                }
                let rounds = v
                    .get("rounds")
                    .and_then(Value::as_array)
                    .map_or(0, <[_]>::len);
                println!("aggregating BENCH_failover.json ({rounds} kill-and-promote rounds)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_failover.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_failover.json found; report skips failover");
            Value::Null
        }
    };
    let shard = match std::fs::read_to_string("BENCH_shard.json") {
        Ok(text) => match Value::parse(text.trim()) {
            Ok(v) => {
                if v.get("replay_identical").and_then(Value::as_bool) != Some(true) {
                    eprintln!("FATAL: BENCH_shard.json records a per-shard replay divergence");
                    std::process::exit(1);
                }
                let speedup = v
                    .get("scaling")
                    .and_then(|s| s.get("speedup"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                println!("aggregating BENCH_shard.json ({speedup:.2}x shard speedup)");
                v
            }
            Err(e) => {
                eprintln!("FATAL: BENCH_shard.json exists but is malformed: {e}");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no BENCH_shard.json found; report skips shard scaling");
            Value::Null
        }
    };
    let report = Value::obj(vec![
        ("pipeline", pipeline),
        ("serve", serve),
        ("chaos", chaos),
        ("failover", failover),
        ("shard", shard),
    ]);
    std::fs::write("BENCH_report.json", format!("{}\n", report.encode()))
        .expect("write BENCH_report.json");
    println!("wrote BENCH_report.json");
}
