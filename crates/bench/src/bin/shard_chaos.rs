//! Shard-chaos harness: partition tolerance of the sharded router.
//!
//! Boots a 4-shard WAL-backed fleet on timed epochs, puts it under a
//! closed-loop agent-op load with per-request deadlines, and injects
//! three distinct shard failures mid-run through the deterministic
//! [`ref_serve::FaultPlan`]:
//!
//! * a **ticker panic** after a durable tick (the full recovery path:
//!   degraded mode, `shard_unavailable` fast-fails, supervisor restart
//!   from the shard's own WAL, epoch resynchronization),
//! * a **slow tick** stalling one shard well past the router's per-shard
//!   tick budget (Suspect/Down on timeouts, probe-driven healing),
//! * a **dropped tick reply** (durable work done, reply lost — the
//!   reply-loss and state-loss failure modes are decoupled).
//!
//! Gates (non-zero exit on any failure):
//!
//! 1. no client op ever waits past its deadline + grace — a down shard
//!    must cost its clients a fast `shard_unavailable`, never a hang;
//! 2. the fleet epoch keeps advancing while shards are down;
//! 3. every shard returns to Healthy and the supervisor restarted at
//!    least one of them;
//! 4. after recovery the merged report carries a fleet-wide SI/EF/PE
//!    audit that passes, with no `partial` stamp;
//! 5. every shard's WAL replays offline to exactly its shutdown
//!    snapshot — bit-identical recovery, restarts included;
//! 6. zero protocol errors.
//!
//! ```text
//! cargo run --release -p ref-bench --bin shard_chaos -- [--quick]
//!     [--out BENCH_shard_chaos.json] [--agents 64] [--load-threads 2]
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ref_core::resource::Capacity;
use ref_market::MarketConfig;
use ref_serve::json::Value;
use ref_serve::{
    shard_market_config, Client, FaultPlan, JournalLimit, Quotas, ServeConfig, Server, ServiceCore,
    WalConfig,
};

const SHARDS: usize = 4;
/// Per-request deadline carried on every load op, in milliseconds.
const OP_DEADLINE_MS: u64 = 500;
/// Latency slack on top of the deadline before an op counts as a hang:
/// covers the queue drain behind an injected stall plus scheduling
/// noise on a loaded single-core host.
const OP_GRACE_MS: u64 = 1500;

struct Args {
    out: String,
    quick: bool,
    agents: usize,
    load_threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_shard_chaos.json".to_string(),
        quick: false,
        agents: 64,
        load_threads: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => args.out = value("--out")?,
            "--quick" => args.quick = true,
            "--agents" => {
                args.agents = value("--agents")?
                    .parse()
                    .map_err(|e| format!("bad --agents: {e}"))?;
            }
            "--load-threads" => {
                args.load_threads = value("--load-threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("bad --load-threads: {e}"))?
                    .max(1);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.quick {
        args.agents = args.agents.min(32);
        args.load_threads = args.load_threads.min(2);
    }
    Ok(args)
}

fn market() -> MarketConfig {
    MarketConfig::new(Capacity::new(vec![64.0, 32.0]).expect("static capacity"))
        .with_enforcement_quanta(200)
}

/// The chaos fleet: timed epochs (the coordinator is the fleet clock), a
/// tick budget far below the reply timeout, and one fault armed per
/// failure mode. Fault epochs are spaced so each failure plays out —
/// and heals — before the next begins.
fn serve_config(quick: bool, wal_dir: &std::path::Path) -> ServeConfig {
    let (panic_epoch, slow_epoch, drop_epoch) = if quick { (10, 40, 70) } else { (30, 80, 130) };
    ServeConfig::new(market())
        .with_epoch_interval(Some(Duration::from_millis(10)))
        .with_shards(SHARDS)
        .with_wal(WalConfig::new(wal_dir))
        .with_quotas(Quotas {
            control: 4096,
            observe: 1024,
            query: 1024,
        })
        .with_journal_limit(JournalLimit(1 << 21))
        .with_shard_tick_budget(Duration::from_millis(250))
        .with_recovery_clean_ticks(3)
        // The drift high-water mark legitimately spikes while allotments
        // are frozen below quorum; the recovery gate is SI/EF/PE, drift
        // is recorded for the report.
        .with_drift_bound(0.75)
        .with_faults(FaultPlan {
            panic_shard_ticker: Some((1, panic_epoch)),
            slow_shard_tick: Some((2, slow_epoch, 400)),
            drop_tick_reply: Some((3, drop_epoch)),
            ..FaultPlan::default()
        })
}

fn join_truth_line(agent: u64) -> String {
    let e0 = 0.2 + 0.6 * ((agent % 101) as f64) / 101.0;
    format!(
        "{{\"op\":\"join\",\"agent\":{agent},\"source\":{{\"kind\":\"truth\",\
         \"scale\":1,\"elasticities\":[{e0},{}]}}}}",
        1.0 - e0
    )
}

/// Streams join lines over one socket in pipelined batches; counts ok.
fn pipeline_joins(addr: &str, agents: usize) -> Result<u64, String> {
    const BATCH: usize = 512;
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut ok = 0u64;
    let mut lines = (1..=agents as u64).map(join_truth_line);
    loop {
        let mut sent = 0usize;
        for line in lines.by_ref().take(BATCH) {
            writer
                .write_all(line.as_bytes())
                .map_err(|e| e.to_string())?;
            writer.write_all(b"\n").map_err(|e| e.to_string())?;
            sent += 1;
        }
        if sent == 0 {
            return Ok(ok);
        }
        writer.flush().map_err(|e| e.to_string())?;
        let mut reply = String::new();
        for _ in 0..sent {
            reply.clear();
            if reader.read_line(&mut reply).map_err(|e| e.to_string())? == 0 {
                return Err("server closed the connection mid-batch".to_string());
            }
            if reply.contains("\"ok\":true") {
                ok += 1;
            }
        }
    }
}

/// Closed-loop load: agent-scoped queries and demand updates, every one
/// carrying a deadline. Records the worst wall-clock wait and the reply
/// mix; a request that outlives deadline + grace is the hang the router
/// exists to prevent.
struct LoadStats {
    ops: AtomicU64,
    ok: AtomicU64,
    unavailable: AtomicU64,
    other_errors: AtomicU64,
    max_wait_ms: AtomicU64,
}

fn load_loop(addr: &str, thread: usize, agents: usize, stop: &AtomicBool, stats: &LoadStats) {
    let Ok(mut client) = Client::connect(addr) else {
        return;
    };
    let mut i = thread as u64;
    while !stop.load(Ordering::Relaxed) {
        let agent = 1 + (i % agents as u64);
        let line = if i % 5 == 3 {
            let e0 = 0.25 + 0.5 * ((i % 13) as f64) / 13.0;
            format!(
                "{{\"op\":\"demand\",\"agent\":{agent},\"deadline_ms\":{OP_DEADLINE_MS},\
                 \"report\":{{\"scale\":1,\"elasticities\":[{e0},{}]}}}}",
                1.0 - e0
            )
        } else {
            format!("{{\"op\":\"query\",\"agent\":{agent},\"deadline_ms\":{OP_DEADLINE_MS}}}")
        };
        let started = Instant::now();
        let reply = client.call_line(&line);
        let waited = started.elapsed().as_millis() as u64;
        stats.max_wait_ms.fetch_max(waited, Ordering::Relaxed);
        stats.ops.fetch_add(1, Ordering::Relaxed);
        match reply {
            Ok(value) => {
                if value.get("ok") == Some(&Value::Bool(true)) {
                    stats.ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    match value.get("error").and_then(Value::as_str) {
                        Some("shard_unavailable") => {
                            stats.unavailable.fetch_add(1, Ordering::Relaxed);
                            // Honor the router's hint like a well-behaved
                            // client would.
                            let hint = value
                                .get("retry_after_ms")
                                .and_then(Value::as_u64)
                                .unwrap_or(5);
                            std::thread::sleep(Duration::from_millis(hint));
                        }
                        _ => {
                            stats.other_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            Err(_) => return,
        }
        i += 1;
    }
}

fn fleet_epoch(client: &mut Client) -> Result<u64, String> {
    let ping = client.ping().map_err(|e| format!("ping: {e}"))?;
    ping.get("epoch")
        .and_then(Value::as_u64)
        .ok_or_else(|| "ping reply missing epoch".to_string())
}

fn shard_health(client: &mut Client) -> Result<Vec<String>, String> {
    let ping = client.ping().map_err(|e| format!("ping: {e}"))?;
    Ok(ping
        .get("shard_health")
        .and_then(Value::as_array)
        .map(|h| {
            h.iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("shard_chaos: {e}");
            std::process::exit(2);
        }
    };
    let wal_dir = std::env::temp_dir().join(format!("ref-shard-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let config = serve_config(args.quick, &wal_dir);
    let server = match Server::start("127.0.0.1:0", config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("shard_chaos: boot: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr().to_string();

    eprintln!(
        "shard_chaos: joining {} agents over {SHARDS} shards",
        args.agents
    );
    match pipeline_joins(&addr, args.agents) {
        Ok(joined) if joined == args.agents as u64 => {}
        Ok(joined) => {
            eprintln!(
                "shard_chaos: only {joined} of {} joins accepted",
                args.agents
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("shard_chaos: joins: {e}");
            std::process::exit(1);
        }
    }

    // Load runs across the whole chaos window, failures included.
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(LoadStats {
        ops: AtomicU64::new(0),
        ok: AtomicU64::new(0),
        unavailable: AtomicU64::new(0),
        other_errors: AtomicU64::new(0),
        max_wait_ms: AtomicU64::new(0),
    });
    let loaders: Vec<_> = (0..args.load_threads)
        .map(|thread| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let agents = args.agents;
            std::thread::spawn(move || load_loop(&addr, thread, agents, &stop, &stats))
        })
        .collect();

    let mut probe = Client::connect(&addr).expect("probe connect");

    // Gate 2: the fleet clock advances while the injected failures play
    // out (the panic fires within the first second of epochs).
    std::thread::sleep(Duration::from_millis(if args.quick { 400 } else { 800 }));
    let epoch_a = fleet_epoch(&mut probe).unwrap_or(0);
    std::thread::sleep(Duration::from_millis(300));
    let epoch_b = fleet_epoch(&mut probe).unwrap_or(0);
    let epochs_advanced = epoch_b > epoch_a;
    eprintln!("shard_chaos: outage window epochs {epoch_a} -> {epoch_b}");

    // Gate 3: every shard heals. The last fault fires around epoch
    // 70–130 (≲2s in); allow generous wall time for restart + probes.
    let heal_deadline = Instant::now() + Duration::from_secs(30);
    let mut healed = false;
    let mut last_health = Vec::new();
    while Instant::now() < heal_deadline {
        match shard_health(&mut probe) {
            Ok(health) => {
                last_health = health;
                if last_health.len() == SHARDS && last_health.iter().all(|h| h == "healthy") {
                    healed = true;
                    break;
                }
            }
            Err(e) => {
                eprintln!("shard_chaos: health probe: {e}");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shard_chaos: healed={healed} shard_health={last_health:?}");

    // Gate 4: once quorum (here: the whole fleet) is back, a merged
    // report must pass the fleet-wide SI/EF/PE audit with no partial
    // stamp.
    let audit_deadline = Instant::now() + Duration::from_secs(20);
    let mut audit_ok = false;
    let mut last_drift = Value::Null;
    let mut drift_bound_ok = Value::Null;
    while healed && Instant::now() < audit_deadline {
        let Ok(tick) = probe.tick() else { break };
        last_drift = tick.get("drift").cloned().unwrap_or(Value::Null);
        drift_bound_ok = tick.get("drift_bound_ok").cloned().unwrap_or(Value::Null);
        if let Some(report) = tick.get("report") {
            let partial = report.get("partial").and_then(Value::as_bool) == Some(true);
            let pass = report.get("fairness").is_some_and(|f| {
                ["sharing_incentives", "envy_free", "pareto_efficient"]
                    .iter()
                    .all(|key| f.get(key).and_then(Value::as_bool) == Some(true))
            });
            if !partial && pass {
                audit_ok = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("shard_chaos: post-recovery audit_ok={audit_ok}");

    stop.store(true, Ordering::Relaxed);
    for loader in loaders {
        let _ = loader.join();
    }

    let report = server.shutdown();
    let restarts = report.metrics.shard_restarts;
    let ticker_panics: u64 = report.shards.iter().map(|s| s.metrics.ticker_panics).sum();
    let protocol_errors = report.metrics.protocol_errors;

    // Gate 5: offline WAL recovery of every shard directory — the
    // restarted shard's included — lands bit-identically on the live
    // shutdown snapshot. `ServiceCore::recover` is the same machinery
    // the supervisor used mid-run.
    let mut replay_identical = true;
    for (k, shard) in report.shards.iter().enumerate() {
        let recovered = ServiceCore::recover(
            shard_market_config(&market(), SHARDS),
            JournalLimit(1 << 21),
            WalConfig::new(wal_dir.join(format!("shard-{k}"))),
            FaultPlan::none(),
        );
        match recovered {
            Ok(core) if core.final_snapshot() == shard.snapshot => {}
            Ok(_) => {
                eprintln!("shard_chaos: shard {k} offline replay diverged from its snapshot");
                replay_identical = false;
            }
            Err(e) => {
                eprintln!("shard_chaos: shard {k} offline recovery failed: {e}");
                replay_identical = false;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&wal_dir);

    // Gate 1: the worst op wait, measured across the whole window.
    let max_wait_ms = stats.max_wait_ms.load(Ordering::Relaxed);
    let wait_ok = max_wait_ms <= OP_DEADLINE_MS + OP_GRACE_MS;
    let restarts_ok = restarts >= 1 && ticker_panics >= 1;

    let gates = [
        ("no_late_ops", wait_ok),
        ("epochs_advanced_during_outage", epochs_advanced),
        ("all_shards_healed", healed),
        ("shard_restarted", restarts_ok),
        ("post_recovery_audit", audit_ok),
        ("replay_identical", replay_identical),
        ("no_protocol_errors", protocol_errors == 0),
    ];
    let all_ok = gates.iter().all(|(_, ok)| *ok);

    let doc = Value::obj(vec![
        ("bench", Value::str("shard_chaos")),
        ("quick", Value::Bool(args.quick)),
        ("shards", Value::from_u64(SHARDS as u64)),
        ("agents", Value::from_u64(args.agents as u64)),
        ("load_threads", Value::from_u64(args.load_threads as u64)),
        (
            "load",
            Value::obj(vec![
                ("ops", Value::from_u64(stats.ops.load(Ordering::Relaxed))),
                ("ok", Value::from_u64(stats.ok.load(Ordering::Relaxed))),
                (
                    "shard_unavailable",
                    Value::from_u64(stats.unavailable.load(Ordering::Relaxed)),
                ),
                (
                    "other_errors",
                    Value::from_u64(stats.other_errors.load(Ordering::Relaxed)),
                ),
                ("max_wait_ms", Value::from_u64(max_wait_ms)),
                (
                    "deadline_plus_grace_ms",
                    Value::from_u64(OP_DEADLINE_MS + OP_GRACE_MS),
                ),
            ]),
        ),
        (
            "recovery",
            Value::obj(vec![
                ("shard_restarts", Value::from_u64(restarts)),
                ("ticker_panics", Value::from_u64(ticker_panics)),
                (
                    "partial_epochs",
                    Value::from_u64(report.metrics.partial_epochs),
                ),
                (
                    "quorum_freezes",
                    Value::from_u64(report.metrics.quorum_freezes),
                ),
                ("drift", last_drift),
                ("drift_bound_ok", drift_bound_ok),
            ]),
        ),
        (
            "gates",
            Value::obj(
                gates
                    .iter()
                    .map(|(name, ok)| (*name, Value::Bool(*ok)))
                    .collect(),
            ),
        ),
        ("all_ok", Value::Bool(all_ok)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("shard_chaos: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("shard_chaos: wrote {}", args.out);

    if !all_ok {
        for (name, ok) in gates {
            if !ok {
                eprintln!("shard_chaos: FATAL: gate {name} failed");
            }
        }
        std::process::exit(1);
    }
}
