//! Sharded-serving scale harness: aggregate throughput and capacity.
//!
//! Two phases, one `BENCH_shard.json`:
//!
//! 1. **Scaling**: boots the same loadgen-style server twice — once with
//!    a single market shard, once with `--shards N` (default 4) — joins
//!    the same truthful population into each, and drives a closed-loop
//!    tick-heavy client for a fixed wall-clock window. The per-epoch
//!    fairness audit is O(n^2) pairwise envy checks, so splitting `n`
//!    agents across `k` shards cuts the audit bill to `1/k` of the
//!    monolith's — the sharded server must clear `>= 3x` the aggregate
//!    request rate on the same single-core host. The final tick's merged
//!    report must pass SI/EF/PE and the cross-shard drift bound.
//! 2. **Capacity**: boots the sharded server in deterministic mode and
//!    registers a million external agents (pipelined joins over one
//!    socket), then proves every shard's journal replays bit-identically
//!    to its final snapshot.
//!
//! Any replay divergence, protocol error, or (in full mode) a speedup
//! below 3x exits non-zero.
//!
//! ```text
//! cargo run --release -p ref-bench --bin shard_scale -- [--quick]
//!     [--out BENCH_shard.json] [--shards 4] [--agents 3600]
//!     [--duration-ms 6000] [--capacity-agents 1000000]
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ref_core::resource::Capacity;
use ref_market::MarketConfig;
use ref_serve::json::Value;
use ref_serve::{
    shard_market_config, Client, JournalLimit, Quotas, ServeConfig, Server, ShutdownReport,
};

/// Full-mode speedup floor: the sharded server must beat the monolith by
/// at least this factor on the same machine and load.
const SPEEDUP_FLOOR: f64 = 3.0;

struct Args {
    out: String,
    quick: bool,
    shards: usize,
    agents: usize,
    duration_ms: u64,
    capacity_agents: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_shard.json".to_string(),
        quick: false,
        shards: 4,
        agents: 3600,
        duration_ms: 6000,
        capacity_agents: 1_000_000,
    };
    let mut explicit_agents = false;
    let mut explicit_duration = false;
    let mut explicit_capacity = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--out" => args.out = value("--out")?,
            "--quick" => args.quick = true,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards < 2 {
                    return Err("--shards must be at least 2".to_string());
                }
            }
            "--agents" => {
                args.agents = value("--agents")?
                    .parse()
                    .map_err(|e| format!("bad --agents: {e}"))?;
                explicit_agents = true;
            }
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("bad --duration-ms: {e}"))?;
                explicit_duration = true;
            }
            "--capacity-agents" => {
                args.capacity_agents = value("--capacity-agents")?
                    .parse()
                    .map_err(|e| format!("bad --capacity-agents: {e}"))?;
                explicit_capacity = true;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.quick {
        // CI-sized run: small enough to finish in seconds. At this scale
        // fixed per-request costs dilute the O(n^2) audit advantage, so
        // quick mode reports the speedup without enforcing the floor.
        if !explicit_agents {
            args.agents = 256;
        }
        if !explicit_duration {
            args.duration_ms = 800;
        }
        if !explicit_capacity {
            args.capacity_agents = 50_000;
        }
    }
    Ok(args)
}

fn market() -> MarketConfig {
    // Light stride enforcement: the harness measures how epoch auditing
    // and serving scale with shard count, and the default 2000 quanta
    // would add a flat ~ms of scheduler work per shard-epoch that has
    // nothing to do with population size. Both configs share this
    // market, so the comparison stays apples-to-apples.
    MarketConfig::new(Capacity::new(vec![64.0, 32.0]).expect("static capacity"))
        .with_enforcement_quanta(200)
}

fn serve_config(shards: usize) -> ServeConfig {
    // Deterministic mode: epochs run on explicit `tick` requests, which
    // fan to every shard and run the coordination step — the measured
    // unit of work. Generous control quota for the pipelined joins.
    ServeConfig::new(market())
        .with_epoch_interval(None)
        .with_shards(shards)
        .with_quotas(Quotas {
            control: 4096,
            observe: 256,
            query: 256,
        })
        .with_journal_limit(JournalLimit(1 << 21))
}

/// Streams `lines` over one socket in bounded pipelined batches (stay
/// under the control quota so joins are never load-shed) and counts ok
/// replies. One round trip per batch instead of per line.
fn pipeline_lines(addr: &str, mut lines: impl Iterator<Item = String>) -> Result<u64, String> {
    const BATCH: usize = 1024;
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut reader = BufReader::new(stream);
    let mut ok = 0u64;
    loop {
        let mut sent = 0usize;
        for line in lines.by_ref().take(BATCH) {
            writer
                .write_all(line.as_bytes())
                .map_err(|e| e.to_string())?;
            writer.write_all(b"\n").map_err(|e| e.to_string())?;
            sent += 1;
        }
        if sent == 0 {
            return Ok(ok);
        }
        writer.flush().map_err(|e| e.to_string())?;
        let mut reply = String::new();
        for _ in 0..sent {
            reply.clear();
            if reader.read_line(&mut reply).map_err(|e| e.to_string())? == 0 {
                return Err("server closed the connection mid-batch".to_string());
            }
            if reply.contains("\"ok\":true") {
                ok += 1;
            }
        }
    }
}

/// A truthful join line; elasticities vary per agent so allocations (and
/// the audit) are non-degenerate.
fn join_truth_line(agent: u64) -> String {
    let e0 = 0.2 + 0.6 * ((agent % 101) as f64) / 101.0;
    format!(
        "{{\"op\":\"join\",\"agent\":{agent},\"source\":{{\"kind\":\"truth\",\
         \"scale\":1,\"elasticities\":[{e0},{}]}}}}",
        1.0 - e0
    )
}

fn join_external_line(agent: u64) -> String {
    format!("{{\"op\":\"join\",\"agent\":{agent},\"source\":{{\"kind\":\"external\"}}}}")
}

/// Replays every shard journal offline against the shard's starting
/// config; sharded servers start from the equal capacity split and the
/// journaled `CapacityRealloted` events carry the coordinator's moves.
fn shards_replay_identical(report: &ShutdownReport, shards: usize) -> bool {
    report.shards.iter().all(|shard| {
        if shard.journal_overflowed {
            eprintln!("shard_scale: shard {} journal overflowed", shard.shard);
            return false;
        }
        match ref_serve::replay(shard_market_config(&market(), shards), &shard.journal) {
            Ok(engine) => engine.snapshot().encode() == shard.snapshot,
            Err(e) => {
                eprintln!("shard_scale: shard {} replay failed: {e}", shard.shard);
                false
            }
        }
    })
}

struct ScalingRun {
    shards: usize,
    ok: u64,
    ticks: u64,
    elapsed: Duration,
    rps: f64,
    last_tick: Option<Value>,
    replay_identical: bool,
    protocol_errors: u64,
}

impl ScalingRun {
    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("shards", Value::from_u64(self.shards as u64)),
            ("ok", Value::from_u64(self.ok)),
            ("ticks", Value::from_u64(self.ticks)),
            (
                "duration_ms",
                Value::from_u64(self.elapsed.as_millis() as u64),
            ),
            ("throughput_rps", Value::Num(self.rps)),
            ("replay_identical", Value::Bool(self.replay_identical)),
            ("protocol_errors", Value::from_u64(self.protocol_errors)),
        ])
    }
}

/// One scaling config: join the population, hammer tick/demand for the
/// window, grab the last tick's merged report, shut down and replay.
fn scaling_run(shards: usize, agents: usize, duration: Duration) -> Result<ScalingRun, String> {
    let server =
        Server::start("127.0.0.1:0", serve_config(shards)).map_err(|e| format!("boot: {e}"))?;
    let addr = server.addr().to_string();
    let joined = pipeline_lines(&addr, (1..=agents as u64).map(join_truth_line))?;
    if joined != agents as u64 {
        return Err(format!("only {joined} of {agents} joins accepted"));
    }

    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let started = Instant::now();
    let deadline = started + duration;
    let mut ok = 0u64;
    let mut ticks = 0u64;
    let mut i = 0u64;
    let mut last_tick = None;
    while Instant::now() < deadline {
        // Mostly ticks (the audited epoch is the unit of work), with a
        // demand update mixed in so fingerprints move and the market
        // genuinely reallocates rather than serving its cache.
        if i % 7 == 3 {
            let agent = 1 + (i % agents as u64);
            let e0 = 0.25 + 0.5 * ((i % 17) as f64) / 17.0;
            client
                .demand(agent, Some((1.0, &[e0, 1.0 - e0])))
                .map_err(|e| format!("demand: {e}"))?;
        } else {
            let reply = client.tick().map_err(|e| format!("tick: {e}"))?;
            ticks += 1;
            last_tick = Some(reply);
        }
        ok += 1;
        i += 1;
    }
    let elapsed = started.elapsed();

    let report = server.shutdown();
    Ok(ScalingRun {
        shards,
        ok,
        ticks,
        elapsed,
        rps: ok as f64 / elapsed.as_secs_f64(),
        last_tick,
        replay_identical: shards_replay_identical(&report, shards),
        protocol_errors: report.metrics.protocol_errors,
    })
}

/// Pulls the audit verdicts out of a tick reply: the merged cross-shard
/// report when sharded, the plain epoch report on a monolith.
fn audit_flags(tick: &Value) -> Value {
    let fairness = tick.get("report").and_then(|r| r.get("fairness"));
    let flag = |key: &str| -> Value {
        fairness
            .and_then(|f| f.get(key))
            .cloned()
            .unwrap_or(Value::Null)
    };
    Value::obj(vec![
        ("sharing_incentives", flag("sharing_incentives")),
        ("envy_free", flag("envy_free")),
        ("pareto_efficient", flag("pareto_efficient")),
        ("drift", tick.get("drift").cloned().unwrap_or(Value::Null)),
        (
            "drift_bound_ok",
            tick.get("drift_bound_ok").cloned().unwrap_or(Value::Null),
        ),
    ])
}

fn audit_passes(flags: &Value, sharded: bool) -> bool {
    let is_true = |key: &str| flags.get(key).and_then(Value::as_bool) == Some(true);
    is_true("sharing_incentives")
        && is_true("envy_free")
        && is_true("pareto_efficient")
        && (!sharded || is_true("drift_bound_ok"))
}

/// Capacity phase: a million external agents through the sharded server,
/// no epochs — raw registration throughput plus per-shard replay.
fn capacity_run(shards: usize, agents: usize) -> Result<Value, String> {
    let server =
        Server::start("127.0.0.1:0", serve_config(shards)).map_err(|e| format!("boot: {e}"))?;
    let addr = server.addr().to_string();
    let started = Instant::now();
    let joined = pipeline_lines(&addr, (1..=agents as u64).map(join_external_line))?;
    let elapsed = started.elapsed();
    if joined != agents as u64 {
        return Err(format!("only {joined} of {agents} joins accepted"));
    }

    let report = server.shutdown();
    let replay_identical = shards_replay_identical(&report, shards);
    let journaled: u64 = report.shards.iter().map(|s| s.journal.len() as u64).sum();
    Ok(Value::obj(vec![
        ("shards", Value::from_u64(shards as u64)),
        ("agents", Value::from_u64(agents as u64)),
        (
            "join_rps",
            Value::Num(joined as f64 / elapsed.as_secs_f64()),
        ),
        ("duration_ms", Value::from_u64(elapsed.as_millis() as u64)),
        ("journaled_events", Value::from_u64(journaled)),
        ("replay_identical", Value::Bool(replay_identical)),
        (
            "protocol_errors",
            Value::from_u64(report.metrics.protocol_errors),
        ),
    ]))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("shard_scale: {e}");
            std::process::exit(2);
        }
    };
    let duration = Duration::from_millis(args.duration_ms);

    eprintln!(
        "shard_scale: scaling phase: {} agents, {}ms per config",
        args.agents, args.duration_ms
    );
    let baseline = match scaling_run(1, args.agents, duration) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("shard_scale: baseline run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "shard_scale:   1 shard: {:.0} rps ({} ticks)",
        baseline.rps, baseline.ticks
    );
    let sharded = match scaling_run(args.shards, args.agents, duration) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("shard_scale: sharded run failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "shard_scale:   {} shards: {:.0} rps ({} ticks)",
        args.shards, sharded.rps, sharded.ticks
    );

    let speedup = if baseline.rps > 0.0 {
        sharded.rps / baseline.rps
    } else {
        0.0
    };
    let speedup_ok = speedup >= SPEEDUP_FLOOR;
    let baseline_flags = baseline.last_tick.as_ref().map(audit_flags);
    let sharded_flags = sharded.last_tick.as_ref().map(audit_flags);
    let audit_ok = baseline_flags
        .as_ref()
        .is_some_and(|f| audit_passes(f, false))
        && sharded_flags
            .as_ref()
            .is_some_and(|f| audit_passes(f, true));
    eprintln!("shard_scale:   speedup {speedup:.2}x, audit_ok={audit_ok}");

    eprintln!(
        "shard_scale: capacity phase: {} agents over {} shards",
        args.capacity_agents, args.shards
    );
    let capacity = match capacity_run(args.shards, args.capacity_agents) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("shard_scale: capacity run failed: {e}");
            std::process::exit(1);
        }
    };

    let replay_identical = baseline.replay_identical
        && sharded.replay_identical
        && capacity.get("replay_identical").and_then(Value::as_bool) == Some(true);
    let protocol_errors = baseline.protocol_errors
        + sharded.protocol_errors
        + capacity
            .get("protocol_errors")
            .and_then(Value::as_u64)
            .unwrap_or(0);

    let doc = Value::obj(vec![
        ("bench", Value::str("shard")),
        ("quick", Value::Bool(args.quick)),
        (
            "scaling",
            Value::obj(vec![
                ("agents", Value::from_u64(args.agents as u64)),
                ("baseline", baseline.to_json()),
                ("sharded", sharded.to_json()),
                ("speedup", Value::Num(speedup)),
                ("speedup_ok", Value::Bool(speedup_ok)),
                ("baseline_audit", baseline_flags.unwrap_or(Value::Null)),
                ("sharded_audit", sharded_flags.unwrap_or(Value::Null)),
                ("audit_ok", Value::Bool(audit_ok)),
            ]),
        ),
        ("capacity", capacity),
        ("replay_identical", Value::Bool(replay_identical)),
        ("protocol_errors", Value::from_u64(protocol_errors)),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("shard_scale: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("shard_scale: wrote {}", args.out);

    if !replay_identical {
        eprintln!("shard_scale: FATAL: a journal replay diverged from its live snapshot");
        std::process::exit(1);
    }
    if protocol_errors > 0 {
        eprintln!("shard_scale: FATAL: {protocol_errors} protocol errors");
        std::process::exit(1);
    }
    if !audit_ok {
        eprintln!("shard_scale: FATAL: SI/EF/PE or drift-bound audit failed");
        std::process::exit(1);
    }
    if !args.quick && !speedup_ok {
        eprintln!("shard_scale: FATAL: speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x floor");
        std::process::exit(1);
    }
}
