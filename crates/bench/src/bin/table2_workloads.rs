//! Table 2: the multiprogrammed workload mixes and their C/M composition.
//!
//! Prints each mix's members with the paper's annotation and our fitted
//! classification (see EXPERIMENTS.md for the two mixes where the paper's
//! own annotation disagrees with its §5.3 classification).

use ref_bench::pipeline::{experiment_options, fit_benchmark};
use ref_workloads::profiles::by_name;
use ref_workloads::suite::all_mixes;

fn main() {
    let opts = experiment_options();
    println!("Table 2: workload characterization");
    println!();
    let mut cache = std::collections::HashMap::new();
    for mix in all_mixes() {
        let classes: Vec<&'static str> = mix
            .members
            .iter()
            .map(|name| {
                *cache.entry(*name).or_insert_with(|| {
                    let f = fit_benchmark(by_name(name).expect("known"), &opts);
                    f.class()
                })
            })
            .collect();
        let c = classes.iter().filter(|c| **c == "C").count();
        let m = classes.len() - c;
        println!(
            "{:<5} paper: {:>6}   fitted: {}C-{}M",
            mix.id, mix.paper_annotation, c, m
        );
        for (name, class) in mix.members.iter().zip(&classes) {
            println!("        {name:<20} {class}");
        }
        println!();
    }
}
