//! Table 2: the multiprogrammed workload mixes and their C/M composition.
//!
//! Prints each mix's members with the paper's annotation and our fitted
//! classification (see EXPERIMENTS.md for the two mixes where the paper's
//! own annotation disagrees with its §5.3 classification).

use std::collections::HashMap;

use ref_bench::pipeline::{experiment_options, fit_benchmarks, init_jobs};
use ref_workloads::profiles::{by_name, Benchmark};
use ref_workloads::suite::all_mixes;

fn main() {
    init_jobs();
    let opts = experiment_options();
    println!("Table 2: workload characterization");
    println!();
    // Fit every distinct member across all mixes in one parallel batch.
    let mut names: Vec<&'static str> = Vec::new();
    for mix in all_mixes() {
        for name in mix.members.iter() {
            if !names.contains(name) {
                names.push(name);
            }
        }
    }
    let benches: Vec<&Benchmark> = names.iter().map(|n| by_name(n).expect("known")).collect();
    let cache: HashMap<&str, &'static str> = names
        .iter()
        .copied()
        .zip(fit_benchmarks(&benches, &opts).iter().map(|f| f.class()))
        .collect();
    for mix in all_mixes() {
        let classes: Vec<&'static str> = mix.members.iter().map(|name| cache[name]).collect();
        let c = classes.iter().filter(|c| **c == "C").count();
        let m = classes.len() - c;
        println!(
            "{:<5} paper: {:>6}   fitted: {}C-{}M",
            mix.id, mix.paper_annotation, c, m
        );
        for (name, class) in mix.members.iter().zip(&classes) {
            println!("        {name:<20} {class}");
        }
        println!();
    }
}
