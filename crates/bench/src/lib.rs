//! # ref-bench
//!
//! The experiment harness of the REF reproduction: shared
//! profile-and-fit pipeline plus one binary per table and figure of the
//! paper's evaluation (run them with `cargo run --release -p ref-bench
//! --bin <name>`; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pipeline;

pub use pipeline::{
    capacity_for_agents, fit_benchmark, fit_benchmarks, fit_mix, init_jobs, FittedWorkload,
};
