//! The profile → fit pipeline shared by every experiment binary.
//!
//! Conventions (matching the paper's §3 example):
//!
//! - resource 0 is memory bandwidth in GB/s, resource 1 is cache capacity
//!   in MB;
//! - an `N`-core system has capacity `(6 N GB/s, 3 N MB)` — the paper's
//!   quad-core example is 24 GB/s and 12 MB.

use std::collections::HashMap;

use ref_core::fitting::{fit_cobb_douglas, FitPoint};
use ref_core::resource::Capacity;
use ref_core::utility::CobbDouglas;
use ref_workloads::profiler::{profile, ProfileGrid, ProfilerOptions};
use ref_workloads::profiles::Benchmark;
use ref_workloads::suite::WorkloadMix;

/// A workload with its fitted Cobb-Douglas utility and diagnostics.
#[derive(Debug, Clone)]
pub struct FittedWorkload {
    /// Benchmark name.
    pub name: String,
    /// Fitted (raw) utility.
    pub utility: CobbDouglas,
    /// Goodness of fit of the log-linear regression.
    pub r_squared: f64,
    /// The measured profile grid.
    pub grid: ProfileGrid,
    /// Model predictions at the grid points, in grid order.
    pub predictions: Vec<f64>,
}

impl FittedWorkload {
    /// Re-scaled elasticities `(alpha_mem, alpha_cache)` summing to one.
    pub fn rescaled_elasticities(&self) -> (f64, f64) {
        let r = self.utility.rescaled();
        (r.elasticity(0), r.elasticity(1))
    }

    /// `"C"` when cache elasticity dominates, `"M"` otherwise (§5.3).
    pub fn class(&self) -> &'static str {
        let (_, cache) = self.rescaled_elasticities();
        if cache > 0.5 {
            "C"
        } else {
            "M"
        }
    }
}

/// Converts a profile grid to fit points in the crate's unit convention.
pub fn fit_points(grid: &ProfileGrid) -> Vec<FitPoint> {
    grid.points
        .iter()
        .map(|p| {
            FitPoint::new(vec![p.bandwidth.gb_per_sec(), p.cache.mib_f64()], p.ipc)
                .expect("profiled IPC is positive")
        })
        .collect()
}

/// Profiles and fits one benchmark.
///
/// # Panics
///
/// Panics if fitting fails, which cannot happen for the built-in 25-point
/// grid (full rank, positive IPC).
pub fn fit_benchmark(benchmark: &Benchmark, opts: &ProfilerOptions) -> FittedWorkload {
    let grid = profile(benchmark, opts);
    let fit = fit_cobb_douglas(&fit_points(&grid)).expect("25-point grid is full rank");
    FittedWorkload {
        name: benchmark.name.to_string(),
        utility: fit.utility().clone(),
        r_squared: fit.r_squared(),
        predictions: fit.predictions().to_vec(),
        grid,
    }
}

/// Profiles and fits a set of benchmarks concurrently, one pool task per
/// benchmark. Each task's inner grid sweep runs serially (nested pool use
/// is inline), so parallelism comes from the benchmark fan-out without
/// oversubscribing. Output order matches input order and every fit is
/// bit-identical to [`fit_benchmark`] run serially.
pub fn fit_benchmarks(benchmarks: &[&Benchmark], opts: &ProfilerOptions) -> Vec<FittedWorkload> {
    ref_pool::par_map(benchmarks.len(), |i| fit_benchmark(benchmarks[i], opts))
}

/// Profiles and fits every member of a mix. Distinct members are fitted
/// concurrently; repeated members are fitted once and cloned.
pub fn fit_mix(mix: &WorkloadMix, opts: &ProfilerOptions) -> Vec<FittedWorkload> {
    let members = mix.benchmarks();
    let mut unique: Vec<&Benchmark> = Vec::new();
    for b in &members {
        if !unique.iter().any(|u| u.name == b.name) {
            unique.push(b);
        }
    }
    let fitted: HashMap<&str, FittedWorkload> = unique
        .iter()
        .map(|b| b.name)
        .zip(fit_benchmarks(&unique, opts))
        .collect();
    members
        .into_iter()
        .map(|b| fitted[b.name].clone())
        .collect()
}

/// Applies a `--jobs N` / `--jobs=N` / `-j N` command-line override of
/// the worker-pool width (0 or the flag's absence keeps the default:
/// `REF_THREADS`, then host parallelism) and returns the remaining
/// arguments, program name excluded.
///
/// # Panics
///
/// Panics with a usage message if the flag is present without a count.
pub fn init_jobs() -> Vec<String> {
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" || arg == "-j" {
            let n = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{arg} requires a thread count"));
            ref_pool::set_threads(n);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            let n = v
                .parse()
                .unwrap_or_else(|_| panic!("--jobs= requires a thread count, got {v:?}"));
            ref_pool::set_threads(n);
        } else {
            rest.push(arg);
        }
    }
    rest
}

/// System capacity for an `N`-agent experiment: `(6 N GB/s, 3 N MB)`.
///
/// # Panics
///
/// Panics if `num_agents == 0`.
pub fn capacity_for_agents(num_agents: usize) -> Capacity {
    assert!(num_agents > 0, "need at least one agent");
    Capacity::new(vec![6.0 * num_agents as f64, 3.0 * num_agents as f64])
        .expect("positive capacities")
}

/// Profiler options for the experiment binaries: the paper's grid at a
/// length that keeps a full figure run under a minute.
pub fn experiment_options() -> ProfilerOptions {
    ProfilerOptions {
        warmup_instructions: 80_000,
        instructions: 150_000,
        ..ProfilerOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ref_workloads::profiles::by_name;
    use ref_workloads::suite::four_core_mixes;

    fn quick() -> ProfilerOptions {
        ProfilerOptions {
            warmup_instructions: 30_000,
            instructions: 40_000,
            ..ProfilerOptions::default()
        }
    }

    #[test]
    fn fit_benchmark_produces_sane_fit() {
        let f = fit_benchmark(by_name("dedup").unwrap(), &quick());
        assert_eq!(f.name, "dedup");
        assert!(f.r_squared > 0.5);
        assert_eq!(f.class(), "M");
        assert_eq!(f.predictions.len(), 25);
    }

    #[test]
    fn fit_mix_covers_members() {
        let mix = &four_core_mixes()[0];
        let fits = fit_mix(mix, &quick());
        assert_eq!(fits.len(), 4);
        assert_eq!(fits[0].name, "histogram");
    }

    #[test]
    fn capacity_convention_matches_paper_example() {
        let c = capacity_for_agents(4);
        assert_eq!(c.as_slice(), &[24.0, 12.0]);
        let c8 = capacity_for_agents(8);
        assert_eq!(c8.as_slice(), &[48.0, 24.0]);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agents_panics() {
        let _ = capacity_for_agents(0);
    }
}
