//! Competitive Equilibrium from Equal Incomes (CEEI).
//!
//! §4.2 of the paper proves the proportional-elasticity allocation is a
//! CEEI: start every agent with an equal budget, let market prices clear,
//! and the resulting demands *are* the REF shares. This module computes the
//! equilibrium explicitly — clearing prices and the induced demands — so
//! the equivalence is verifiable by computation, and exposes a tatonnement
//! iteration that reaches the same fixed point from arbitrary starting
//! prices (demonstrating the equilibrium is the natural market outcome,
//! not an artifact of the closed form).
//!
//! For an agent with re-scaled Cobb-Douglas utility (elasticities summing
//! to one) and budget `B` facing prices `p`, the classic demand function is
//! `x_r = a_r B / p_r`: the agent spends the fraction `a_r` of its budget
//! on resource `r`. Market clearing `sum_i x_ir = C_r` then pins
//! `p_r = B * sum_i a_ir / C_r`.

use crate::error::{CoreError, Result};
use crate::resource::{Allocation, Bundle, Capacity};
use crate::utility::CobbDouglas;

/// A competitive equilibrium: clearing prices and the induced allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Market-clearing price per resource (budgets normalized to 1).
    pub prices: Vec<f64>,
    /// Each agent's demand at those prices.
    pub allocation: Allocation,
}

/// Cobb-Douglas demand of one agent: `x_r = a_r B / p_r`.
///
/// Uses the *re-scaled* elasticities, so the whole budget is spent.
fn demand(agent: &CobbDouglas, budget: f64, prices: &[f64]) -> Vec<f64> {
    let rescaled = agent.rescaled();
    rescaled
        .elasticities()
        .iter()
        .zip(prices)
        .map(|(a, p)| a * budget / p)
        .collect()
}

/// Computes the CEEI in closed form (equal budgets of 1).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for an empty population or
/// dimension mismatches.
///
/// # Examples
///
/// The equilibrium allocation equals the REF closed form (§4.2):
///
/// ```
/// use ref_core::ceei::competitive_equilibrium;
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let eq = competitive_equilibrium(&agents, &capacity)?;
/// assert!((eq.allocation.bundle(0).get(0) - 18.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn competitive_equilibrium(agents: &[CobbDouglas], capacity: &Capacity) -> Result<Equilibrium> {
    if agents.is_empty() {
        return Err(CoreError::InvalidArgument(
            "need at least one agent".to_string(),
        ));
    }
    let r_count = capacity.num_resources();
    for (i, a) in agents.iter().enumerate() {
        if a.elasticities().len() != r_count {
            return Err(CoreError::InvalidArgument(format!(
                "agent {i} covers {} resources, capacity covers {r_count}",
                a.elasticities().len()
            )));
        }
    }
    // Clearing prices: p_r = sum_i a^_ir / C_r (budgets of 1).
    let rescaled: Vec<CobbDouglas> = agents.iter().map(CobbDouglas::rescaled).collect();
    let prices: Vec<f64> = (0..r_count)
        .map(|r| {
            let total: f64 = rescaled.iter().map(|a| a.elasticity(r)).sum();
            // A resource nobody demands clears at any price; pick one that
            // spreads it evenly (matching the REF convention).
            if total > 0.0 {
                total / capacity.get(r)
            } else {
                agents.len() as f64 / capacity.get(r)
            }
        })
        .collect();
    let bundles: Result<Vec<Bundle>> = rescaled
        .iter()
        .map(|a| {
            let d: Vec<f64> = a
                .elasticities()
                .iter()
                .zip(&prices)
                .map(|(ar, p)| if *ar > 0.0 { ar / p } else { 0.0 })
                .collect();
            Bundle::new(d)
        })
        .collect();
    let mut bundles = bundles?;
    // Distribute undemanded resources evenly (utility-neutral).
    for r in 0..r_count {
        let used: f64 = bundles.iter().map(|b| b.get(r)).sum();
        let slack = capacity.get(r) - used;
        if slack > 1e-12 * capacity.get(r) {
            let extra = slack / agents.len() as f64;
            bundles = bundles
                .into_iter()
                .map(|b| {
                    let mut q = b.as_slice().to_vec();
                    q[r] += extra;
                    Bundle::new(q).expect("positive quantities")
                })
                .collect();
        }
    }
    Ok(Equilibrium {
        prices,
        allocation: Allocation::new(bundles, capacity)?,
    })
}

/// Result of a tatonnement price adjustment.
#[derive(Debug, Clone, PartialEq)]
pub struct Tatonnement {
    /// Final prices.
    pub prices: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Largest relative excess demand at the final prices.
    pub max_excess: f64,
}

/// Walrasian tatonnement: adjust prices proportionally to excess demand
/// until the market clears.
///
/// Demonstrates that the CEEI prices are an attracting fixed point of the
/// natural market dynamic, starting from any positive price vector.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for invalid inputs or
/// non-positive starting prices, and
/// [`CoreError::Solver`] never (kept simple on purpose); failure to clear
/// within `max_iterations` is reported in the returned `max_excess`.
pub fn tatonnement(
    agents: &[CobbDouglas],
    capacity: &Capacity,
    initial_prices: &[f64],
    max_iterations: usize,
) -> Result<Tatonnement> {
    if agents.is_empty() {
        return Err(CoreError::InvalidArgument(
            "need at least one agent".to_string(),
        ));
    }
    let r_count = capacity.num_resources();
    if initial_prices.len() != r_count
        || initial_prices.iter().any(|p| !(p.is_finite() && *p > 0.0))
    {
        return Err(CoreError::InvalidArgument(
            "initial prices must be positive, one per resource".to_string(),
        ));
    }
    let mut prices = initial_prices.to_vec();
    let mut max_excess = f64::INFINITY;
    for iter in 0..max_iterations {
        // Aggregate demand at current prices.
        let mut total = vec![0.0; r_count];
        for a in agents {
            for (t, d) in total.iter_mut().zip(demand(a, 1.0, &prices)) {
                *t += d;
            }
        }
        max_excess = (0..r_count)
            .map(|r| ((total[r] - capacity.get(r)) / capacity.get(r)).abs())
            .fold(0.0, f64::max);
        if max_excess < 1e-10 {
            return Ok(Tatonnement {
                prices,
                iterations: iter,
                max_excess,
            });
        }
        // Multiplicative price update: p *= demand / supply. For
        // Cobb-Douglas demands this converges in one step per resource,
        // but we iterate to model the decentralized dynamic.
        for r in 0..r_count {
            let ratio = total[r] / capacity.get(r);
            prices[r] *= 0.5 + 0.5 * ratio; // damped
        }
    }
    Ok(Tatonnement {
        prices,
        iterations: max_iterations,
        max_excess,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{Mechanism, ProportionalElasticity};
    use crate::utility::Utility;

    fn paper_agents() -> Vec<CobbDouglas> {
        vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ]
    }

    fn paper_capacity() -> Capacity {
        Capacity::new(vec![24.0, 12.0]).unwrap()
    }

    #[test]
    fn equilibrium_equals_ref_closed_form() {
        let agents = paper_agents();
        let c = paper_capacity();
        let eq = competitive_equilibrium(&agents, &c).unwrap();
        let ref_alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        for i in 0..2 {
            for r in 0..2 {
                assert!(
                    (eq.allocation.bundle(i).get(r) - ref_alloc.bundle(i).get(r)).abs() < 1e-12,
                    "agent {i} resource {r}"
                );
            }
        }
    }

    #[test]
    fn market_clears() {
        let agents = paper_agents();
        let c = paper_capacity();
        let eq = competitive_equilibrium(&agents, &c).unwrap();
        for r in 0..2 {
            let used: f64 = eq.allocation.bundles().iter().map(|b| b.get(r)).sum();
            assert!((used - c.get(r)).abs() < 1e-9);
        }
    }

    #[test]
    fn budgets_are_fully_spent_and_equal() {
        let agents = paper_agents();
        let c = paper_capacity();
        let eq = competitive_equilibrium(&agents, &c).unwrap();
        for b in eq.allocation.bundles() {
            let spend: f64 = b
                .as_slice()
                .iter()
                .zip(&eq.prices)
                .map(|(x, p)| x * p)
                .sum();
            assert!((spend - 1.0).abs() < 1e-9, "spend {spend}");
        }
    }

    #[test]
    fn no_agent_can_afford_a_better_bundle() {
        // Equilibrium optimality: the granted bundle maximizes utility on
        // the budget set. Check against a grid of affordable bundles.
        let agents = paper_agents();
        let c = paper_capacity();
        let eq = competitive_equilibrium(&agents, &c).unwrap();
        for (i, a) in agents.iter().enumerate() {
            let own = a.value(eq.allocation.bundle(i));
            for sx in 1..20 {
                let spend_x = sx as f64 / 20.0;
                let x = spend_x / eq.prices[0];
                let y = (1.0 - spend_x) / eq.prices[1];
                let u = a.value_slice(&[x, y]);
                assert!(
                    u <= own * (1.0 + 1e-9),
                    "agent {i} affords better: {u} > {own}"
                );
            }
        }
    }

    #[test]
    fn tatonnement_converges_to_clearing_prices() {
        let agents = paper_agents();
        let c = paper_capacity();
        let eq = competitive_equilibrium(&agents, &c).unwrap();
        let t = tatonnement(&agents, &c, &[1.0, 1.0], 200).unwrap();
        assert!(t.max_excess < 1e-10, "excess {}", t.max_excess);
        for (p, q) in t.prices.iter().zip(&eq.prices) {
            assert!((p - q).abs() < 1e-8 * q, "{p} vs {q}");
        }
    }

    #[test]
    fn tatonnement_from_skewed_prices() {
        let agents = paper_agents();
        let c = paper_capacity();
        let t = tatonnement(&agents, &c, &[100.0, 0.001], 500).unwrap();
        assert!(t.max_excess < 1e-10, "excess {}", t.max_excess);
    }

    #[test]
    fn validation() {
        let c = paper_capacity();
        assert!(competitive_equilibrium(&[], &c).is_err());
        let bad = vec![CobbDouglas::new(1.0, vec![1.0]).unwrap()];
        assert!(competitive_equilibrium(&bad, &c).is_err());
        let agents = paper_agents();
        assert!(tatonnement(&agents, &c, &[1.0], 10).is_err());
        assert!(tatonnement(&agents, &c, &[0.0, 1.0], 10).is_err());
    }

    #[test]
    fn three_agents_three_resources() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.5, 0.3, 0.2]).unwrap(),
            CobbDouglas::new(2.0, vec![0.2, 0.2, 0.6]).unwrap(),
            CobbDouglas::new(0.5, vec![0.1, 0.8, 0.1]).unwrap(),
        ];
        let c = Capacity::new(vec![30.0, 20.0, 10.0]).unwrap();
        let eq = competitive_equilibrium(&agents, &c).unwrap();
        let ref_alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        for i in 0..3 {
            for r in 0..3 {
                assert!(
                    (eq.allocation.bundle(i).get(r) - ref_alloc.bundle(i).get(r)).abs() < 1e-12
                );
            }
        }
    }
}
