//! Edgeworth-box geometry for two agents and two resources (Figs. 1–7).
//!
//! The box visualizes every feasible division of two resources between two
//! agents: agent 1's origin at the lower-left, agent 2's at the upper-right.
//! This module computes the geometric objects the paper plots: indifference
//! curves, envy-free regions, the contract curve (all Pareto-efficient
//! allocations), the sharing-incentive region, and their intersection — the
//! fair set.

use crate::error::{CoreError, Result};
use crate::resource::{Allocation, Bundle, Capacity};
use crate::utility::{CobbDouglas, Utility};

/// A point in the box, expressed as agent 1's holdings `(x, y)` of the two
/// resources; agent 2 implicitly holds the complement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxPoint {
    /// Agent 1's quantity of resource 0.
    pub x: f64,
    /// Agent 1's quantity of resource 1.
    pub y: f64,
}

/// An Edgeworth box for two Cobb-Douglas agents over two resources.
///
/// # Examples
///
/// The paper's running example:
///
/// ```
/// use ref_core::edgeworth::EdgeworthBox;
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let eb = EdgeworthBox::new(
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
///     Capacity::new(vec![24.0, 12.0])?,
/// )?;
/// let ref_point = eb.ref_allocation();
/// assert!((ref_point.x - 18.0).abs() < 1e-12);
/// assert!(eb.is_on_contract_curve(ref_point, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeworthBox {
    u1: CobbDouglas,
    u2: CobbDouglas,
    capacity: Capacity,
}

impl EdgeworthBox {
    /// Creates a box for two agents.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] unless both utilities and the
    /// capacity cover exactly two resources.
    pub fn new(u1: CobbDouglas, u2: CobbDouglas, capacity: Capacity) -> Result<EdgeworthBox> {
        if capacity.num_resources() != 2
            || u1.elasticities().len() != 2
            || u2.elasticities().len() != 2
        {
            return Err(CoreError::InvalidArgument(
                "the Edgeworth box is defined for exactly two resources".to_string(),
            ));
        }
        Ok(EdgeworthBox { u1, u2, capacity })
    }

    /// Agent 1's utility function.
    pub fn u1(&self) -> &CobbDouglas {
        &self.u1
    }

    /// Agent 2's utility function.
    pub fn u2(&self) -> &CobbDouglas {
        &self.u2
    }

    /// The capacity (box dimensions).
    pub fn capacity(&self) -> &Capacity {
        &self.capacity
    }

    /// Agent 2's bundle at a point (the complement of agent 1's).
    pub fn complement(&self, p: BoxPoint) -> (f64, f64) {
        (self.capacity.get(0) - p.x, self.capacity.get(1) - p.y)
    }

    /// Whether the point lies inside the box (both agents hold
    /// non-negative quantities).
    pub fn contains(&self, p: BoxPoint) -> bool {
        p.x >= 0.0 && p.y >= 0.0 && p.x <= self.capacity.get(0) && p.y <= self.capacity.get(1)
    }

    /// Both agents' utilities at a point.
    pub fn utilities(&self, p: BoxPoint) -> (f64, f64) {
        let (x2, y2) = self.complement(p);
        (
            self.u1.value_slice(&[p.x, p.y]),
            self.u2.value_slice(&[x2, y2]),
        )
    }

    /// Whether agent 1 does not envy agent 2 at `p` (Eq. 6).
    pub fn envy_free_for_1(&self, p: BoxPoint) -> bool {
        let (x2, y2) = self.complement(p);
        self.u1.value_slice(&[p.x, p.y]) >= self.u1.value_slice(&[x2, y2])
    }

    /// Whether agent 2 does not envy agent 1 at `p` (Eq. 7).
    pub fn envy_free_for_2(&self, p: BoxPoint) -> bool {
        let (x2, y2) = self.complement(p);
        self.u2.value_slice(&[x2, y2]) >= self.u2.value_slice(&[p.x, p.y])
    }

    /// Whether both sharing-incentive constraints hold at `p` (Eqs. 4–5).
    pub fn sharing_incentives(&self, p: BoxPoint) -> bool {
        let equal = self.capacity.equal_split(2);
        let (x2, y2) = self.complement(p);
        self.u1.value_slice(&[p.x, p.y]) >= self.u1.value(&equal)
            && self.u2.value_slice(&[x2, y2]) >= self.u2.value(&equal)
    }

    /// The `y` on the contract curve at a given `x` for agent 1 (tangency
    /// condition, Eq. 10), or `None` at the degenerate edges.
    ///
    /// Setting the two agents' marginal rates of substitution equal gives a
    /// closed form: with `k1 = a1/b1` and `k2 = a2/b2`,
    /// `y = k2 * Cy * x / (k1 * (Cx - x) + k2 * x)`.
    pub fn contract_curve_y(&self, x: f64) -> Option<f64> {
        let (cx, cy) = (self.capacity.get(0), self.capacity.get(1));
        if !(x > 0.0 && x < cx) {
            return None;
        }
        let k1 = self.u1.elasticity(0) / self.u1.elasticity(1);
        let k2 = self.u2.elasticity(0) / self.u2.elasticity(1);
        if !k1.is_finite() || !k2.is_finite() {
            return None;
        }
        let denom = k1 * (cx - x) + k2 * x;
        if denom <= 0.0 {
            return None;
        }
        Some(k2 * cy * x / denom)
    }

    /// Samples `n` points of the contract curve (Fig. 5), excluding the
    /// origins.
    pub fn contract_curve(&self, n: usize) -> Vec<BoxPoint> {
        let cx = self.capacity.get(0);
        (1..=n)
            .filter_map(|i| {
                let x = cx * i as f64 / (n + 1) as f64;
                self.contract_curve_y(x).map(|y| BoxPoint { x, y })
            })
            .collect()
    }

    /// Whether `p` is on the contract curve within relative tolerance.
    pub fn is_on_contract_curve(&self, p: BoxPoint, tol: f64) -> bool {
        match self.contract_curve_y(p.x) {
            Some(y) => (y - p.y).abs() <= tol * self.capacity.get(1).max(1.0),
            None => false,
        }
    }

    /// The fair set (Fig. 6): contract-curve points that are envy-free for
    /// both agents; with `require_si`, also inside the sharing-incentive
    /// region (Fig. 7).
    pub fn fair_set(&self, n: usize, require_si: bool) -> Vec<BoxPoint> {
        self.contract_curve(n)
            .into_iter()
            .filter(|&p| self.envy_free_for_1(p) && self.envy_free_for_2(p))
            .filter(|&p| !require_si || self.sharing_incentives(p))
            .collect()
    }

    /// The REF proportional-elasticity allocation as a box point.
    ///
    /// # Panics
    ///
    /// Never panics for a validly constructed box.
    pub fn ref_allocation(&self) -> BoxPoint {
        use crate::mechanism::{Mechanism, ProportionalElasticity};
        let alloc = ProportionalElasticity
            .allocate(&[self.u1.clone(), self.u2.clone()], &self.capacity)
            .expect("box construction validated the inputs");
        BoxPoint {
            x: alloc.bundle(0).get(0),
            y: alloc.bundle(0).get(1),
        }
    }

    /// Converts a box point into a two-agent [`Allocation`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the point lies outside the
    /// box.
    pub fn to_allocation(&self, p: BoxPoint) -> Result<Allocation> {
        if !self.contains(p) {
            return Err(CoreError::InvalidArgument(format!(
                "point ({}, {}) lies outside the box",
                p.x, p.y
            )));
        }
        let (x2, y2) = self.complement(p);
        Allocation::new(
            vec![Bundle::new(vec![p.x, p.y])?, Bundle::new(vec![x2, y2])?],
            &self.capacity,
        )
    }

    /// Samples an indifference curve of agent 1 through `p` (Fig. 3):
    /// points `(x, y)` with `u1(x, y) = u1(p)`.
    pub fn indifference_curve_1(&self, p: BoxPoint, n: usize) -> Vec<BoxPoint> {
        let level = self.u1.value_slice(&[p.x, p.y]);
        let cx = self.capacity.get(0);
        (1..=n)
            .filter_map(|i| {
                let x = cx * i as f64 / (n + 1) as f64;
                self.u1
                    .indifference_y(level, x)
                    .ok()
                    .map(|y| BoxPoint { x, y })
            })
            .filter(|q| self.contains(*q))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_box() -> EdgeworthBox {
        EdgeworthBox::new(
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
            Capacity::new(vec![24.0, 12.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_requires_two_resources() {
        let bad = EdgeworthBox::new(
            CobbDouglas::new(1.0, vec![0.5]).unwrap(),
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
            Capacity::new(vec![1.0, 1.0]).unwrap(),
        );
        assert!(bad.is_err());
    }

    #[test]
    fn complement_adds_to_capacity() {
        let eb = paper_box();
        let p = BoxPoint { x: 6.0, y: 8.0 };
        let (x2, y2) = eb.complement(p);
        assert_eq!((x2, y2), (18.0, 4.0));
    }

    #[test]
    fn midpoint_and_corners_are_envy_free() {
        // Paper §3.2: the midpoint and the two corners are always EF.
        let eb = paper_box();
        for p in [
            BoxPoint { x: 12.0, y: 6.0 },
            BoxPoint { x: 24.0, y: 0.0 },
            BoxPoint { x: 0.0, y: 12.0 },
        ] {
            assert!(eb.envy_free_for_1(p), "{p:?}");
            assert!(eb.envy_free_for_2(p), "{p:?}");
        }
    }

    #[test]
    fn contract_curve_equalizes_mrs() {
        let eb = paper_box();
        for p in eb.contract_curve(17) {
            let b1 = Bundle::new(vec![p.x, p.y]).unwrap();
            let (x2, y2) = eb.complement(p);
            let b2 = Bundle::new(vec![x2, y2]).unwrap();
            let m1 = eb.u1().mrs(&b1, 0, 1).unwrap();
            let m2 = eb.u2().mrs(&b2, 0, 1).unwrap();
            assert!((m1 - m2).abs() < 1e-9 * m1.max(m2), "{p:?}");
        }
    }

    #[test]
    fn contract_curve_bows_below_diagonal_for_paper_preferences() {
        // User 1 values bandwidth more: along the curve user 1 holds
        // relatively more x than y.
        let eb = paper_box();
        let mid = eb.contract_curve_y(12.0).unwrap();
        assert!(mid < 6.0, "curve at x=12 is {mid}");
    }

    #[test]
    fn ref_allocation_is_fair_and_on_curve() {
        let eb = paper_box();
        let p = eb.ref_allocation();
        assert!((p.x - 18.0).abs() < 1e-12);
        assert!((p.y - 4.0).abs() < 1e-12);
        assert!(eb.is_on_contract_curve(p, 1e-9));
        assert!(eb.envy_free_for_1(p) && eb.envy_free_for_2(p));
        assert!(eb.sharing_incentives(p));
    }

    #[test]
    fn fair_set_is_nonempty_and_shrinks_with_si() {
        let eb = paper_box();
        let fair = eb.fair_set(400, false);
        let fair_si = eb.fair_set(400, true);
        assert!(!fair_si.is_empty());
        assert!(fair_si.len() <= fair.len());
        for p in &fair_si {
            assert!(eb.sharing_incentives(*p));
        }
    }

    #[test]
    fn indifference_curve_stays_on_level() {
        let eb = paper_box();
        let p = BoxPoint { x: 6.0, y: 8.0 };
        let level = eb.u1().value_slice(&[p.x, p.y]);
        for q in eb.indifference_curve_1(p, 50) {
            let v = eb.u1().value_slice(&[q.x, q.y]);
            assert!((v - level).abs() < 1e-9 * level);
        }
    }

    #[test]
    fn to_allocation_round_trips() {
        let eb = paper_box();
        let p = BoxPoint { x: 18.0, y: 4.0 };
        let alloc = eb.to_allocation(p).unwrap();
        assert_eq!(alloc.bundle(0).as_slice(), &[18.0, 4.0]);
        assert_eq!(alloc.bundle(1).as_slice(), &[6.0, 8.0]);
        assert!(eb.to_allocation(BoxPoint { x: 25.0, y: 1.0 }).is_err());
    }

    #[test]
    fn utilities_at_origin_corners_are_zero() {
        let eb = paper_box();
        let (u1, _) = eb.utilities(BoxPoint { x: 0.0, y: 0.0 });
        assert_eq!(u1, 0.0);
        let (_, u2) = eb.utilities(BoxPoint { x: 24.0, y: 12.0 });
        assert_eq!(u2, 0.0);
    }
}
