//! Error type for the core library.

use std::error::Error;
use std::fmt;

use ref_solver::SolverError;

/// Errors produced by utilities, fitting and allocation mechanisms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An argument violated a documented invariant (dimension mismatch,
    /// non-positive capacity, invalid elasticity, ...).
    InvalidArgument(String),
    /// Fitting requires more observations than parameters.
    NotEnoughData {
        /// Observations supplied.
        observations: usize,
        /// Parameters to fit.
        parameters: usize,
    },
    /// An underlying numerical routine failed.
    Solver(SolverError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            CoreError::NotEnoughData {
                observations,
                parameters,
            } => write!(
                f,
                "need more than {parameters} observations to fit {parameters} parameters, got {observations}"
            ),
            CoreError::Solver(e) => write!(f, "solver error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolverError> for CoreError {
    fn from(e: SolverError) -> CoreError {
        CoreError::Solver(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_meaningful() {
        let e = CoreError::InvalidArgument("bad".to_string());
        assert!(e.to_string().contains("bad"));
        let e = CoreError::NotEnoughData {
            observations: 2,
            parameters: 3,
        };
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn solver_errors_convert_and_chain() {
        let e: CoreError = SolverError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
