//! Fitting Cobb-Douglas utilities to performance profiles (§4.4, Eq. 16).
//!
//! Given profile points `(x, u)` — resource allocations and measured
//! performance — the log transformation `log u = log a0 + sum_r a_r log x_r`
//! yields a linear model fit by least squares ([`ref_solver::lstsq`]). The
//! paper reports the coefficient of determination (R-squared) as goodness
//! of fit (Fig. 8).

use ref_solver::lstsq;
use ref_solver::Matrix;

use crate::error::{CoreError, Result};
use crate::utility::CobbDouglas;

/// One profiling observation: an allocation and the measured performance.
#[derive(Debug, Clone, PartialEq)]
pub struct FitPoint {
    /// Resource quantities (e.g. `[bandwidth GB/s, cache MB]`).
    pub inputs: Vec<f64>,
    /// Measured performance (e.g. IPC). Must be strictly positive.
    pub output: f64,
}

impl FitPoint {
    /// Creates an observation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if any input or the output is
    /// not strictly positive and finite (the log transform requires
    /// positivity).
    pub fn new(inputs: Vec<f64>, output: f64) -> Result<FitPoint> {
        if inputs.is_empty() {
            return Err(CoreError::InvalidArgument(
                "observation needs at least one resource".to_string(),
            ));
        }
        if inputs.iter().any(|v| !(v.is_finite() && *v > 0.0)) {
            return Err(CoreError::InvalidArgument(
                "inputs must be finite and positive for the log transform".to_string(),
            ));
        }
        if !(output.is_finite() && output > 0.0) {
            return Err(CoreError::InvalidArgument(format!(
                "output must be finite and positive, got {output}"
            )));
        }
        Ok(FitPoint { inputs, output })
    }
}

/// A fitted Cobb-Douglas utility with diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglasFit {
    utility: CobbDouglas,
    r_squared: f64,
    predictions: Vec<f64>,
}

impl CobbDouglasFit {
    /// The fitted utility function (raw, un-rescaled elasticities).
    pub fn utility(&self) -> &CobbDouglas {
        &self.utility
    }

    /// Coefficient of determination of the log-linear regression.
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Model predictions at the fitted points, in input order (the
    /// "estimated" series of the paper's Fig. 8b/8c).
    pub fn predictions(&self) -> &[f64] {
        &self.predictions
    }
}

/// Fits a Cobb-Douglas utility to profile observations.
///
/// Negative fitted elasticities are clamped to zero: a Cobb-Douglas utility
/// is non-decreasing in every resource, and tiny negative estimates arise
/// only from simulation noise on insensitive workloads.
///
/// # Errors
///
/// - [`CoreError::NotEnoughData`] with fewer observations than `R + 1`
///   parameters.
/// - [`CoreError::InvalidArgument`] if observations disagree on dimension.
/// - [`CoreError::Solver`] for degenerate (collinear) designs.
///
/// # Examples
///
/// Recover a known utility from noiseless samples:
///
/// ```
/// use ref_core::fitting::{fit_cobb_douglas, FitPoint};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pts = Vec::new();
/// for &x in &[1.0, 2.0, 4.0] {
///     for &y in &[1.0, 3.0, 9.0] {
///         let u = 2.0 * f64::powf(x, 0.6) * f64::powf(y, 0.4);
///         pts.push(FitPoint::new(vec![x, y], u)?);
///     }
/// }
/// let fit = fit_cobb_douglas(&pts)?;
/// assert!((fit.utility().elasticity(0) - 0.6).abs() < 1e-9);
/// assert!(fit.r_squared() > 0.999_999);
/// # Ok(())
/// # }
/// ```
pub fn fit_cobb_douglas(points: &[FitPoint]) -> Result<CobbDouglasFit> {
    let Some(first) = points.first() else {
        return Err(CoreError::NotEnoughData {
            observations: 0,
            parameters: 1,
        });
    };
    let r = first.inputs.len();
    if points.len() <= r + 1 {
        return Err(CoreError::NotEnoughData {
            observations: points.len(),
            parameters: r + 1,
        });
    }
    if points.iter().any(|p| p.inputs.len() != r) {
        return Err(CoreError::InvalidArgument(
            "observations must agree on the number of resources".to_string(),
        ));
    }
    // Design matrix: [1, log x_1, ..., log x_R]; response: log u.
    let mut design = Matrix::zeros(points.len(), r + 1);
    let mut response = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        design[(i, 0)] = 1.0;
        for (j, &x) in p.inputs.iter().enumerate() {
            design[(i, j + 1)] = x.ln();
        }
        response.push(p.output.ln());
    }
    let ls = lstsq::fit(&design, &response)?;
    let coef = ls.coefficients();
    let scale = coef[0].exp();
    let elasticities: Vec<f64> = coef[1..].iter().map(|a| a.max(0.0)).collect();
    // A completely flat profile can clamp every elasticity to zero; keep
    // the utility valid with an epsilon preference spread evenly.
    let utility = if elasticities.iter().all(|a| *a == 0.0) {
        CobbDouglas::new(scale, vec![1e-9; r])?
    } else {
        CobbDouglas::new(scale, elasticities)?
    };
    let predictions = points
        .iter()
        .map(|p| {
            use crate::utility::Utility;
            utility.value_slice(&p.inputs)
        })
        .collect();
    Ok(CobbDouglasFit {
        utility,
        r_squared: ls.r_squared(),
        predictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;

    fn grid_points<F: FnMut(f64, f64) -> f64>(mut f: F) -> Vec<FitPoint> {
        let mut pts = Vec::new();
        for &x in &[0.8, 1.6, 3.2, 6.4, 12.8] {
            for &y in &[0.125, 0.25, 0.5, 1.0, 2.0] {
                pts.push(FitPoint::new(vec![x, y], f(x, y)).unwrap());
            }
        }
        pts
    }

    #[test]
    fn recovers_ground_truth_exactly() {
        let pts = grid_points(|x, y| 1.3 * x.powf(0.2) * y.powf(0.8));
        let fit = fit_cobb_douglas(&pts).unwrap();
        assert!((fit.utility().scale() - 1.3).abs() < 1e-9);
        assert!((fit.utility().elasticity(0) - 0.2).abs() < 1e-9);
        assert!((fit.utility().elasticity(1) - 0.8).abs() < 1e-9);
        assert!(fit.r_squared() > 0.999_999);
    }

    #[test]
    fn noisy_data_still_close() {
        // Deterministic "noise" via a hash-ish wobble of +-2%.
        let mut k = 0_u32;
        let pts = grid_points(|x, y| {
            k = k.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let wobble = 1.0 + 0.02 * ((k >> 16) as f64 / 32768.0 - 1.0);
            x.powf(0.6) * y.powf(0.4) * wobble
        });
        let fit = fit_cobb_douglas(&pts).unwrap();
        assert!((fit.utility().elasticity(0) - 0.6).abs() < 0.05);
        assert!(fit.r_squared() > 0.95);
    }

    #[test]
    fn predictions_track_observations() {
        let pts = grid_points(|x, y| 0.7 * x.powf(0.5) * y.powf(0.3));
        let fit = fit_cobb_douglas(&pts).unwrap();
        for (p, pred) in pts.iter().zip(fit.predictions()) {
            assert!((p.output - pred).abs() < 1e-9 * p.output);
        }
    }

    #[test]
    fn insensitive_resource_gets_near_zero_elasticity() {
        let pts = grid_points(|x, _y| 0.9 * x.powf(0.7));
        let fit = fit_cobb_douglas(&pts).unwrap();
        assert!(fit.utility().elasticity(1) < 1e-9);
        assert!((fit.utility().elasticity(0) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn flat_profile_yields_valid_utility() {
        let pts = grid_points(|_x, _y| 0.88);
        let fit = fit_cobb_douglas(&pts).unwrap();
        // No trend to capture: elasticities epsilon, prediction constant.
        assert!(fit.utility().value_slice(&[1.0, 1.0]) > 0.0);
        assert!((fit.predictions()[0] - 0.88).abs() < 0.01);
    }

    #[test]
    fn not_enough_data_detected() {
        let pts = vec![
            FitPoint::new(vec![1.0, 1.0], 1.0).unwrap(),
            FitPoint::new(vec![2.0, 1.0], 1.2).unwrap(),
        ];
        assert!(matches!(
            fit_cobb_douglas(&pts),
            Err(CoreError::NotEnoughData { .. })
        ));
        assert!(matches!(
            fit_cobb_douglas(&[]),
            Err(CoreError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let pts = vec![
            FitPoint::new(vec![1.0, 1.0], 1.0).unwrap(),
            FitPoint::new(vec![2.0], 1.2).unwrap(),
            FitPoint::new(vec![2.0, 3.0], 1.4).unwrap(),
            FitPoint::new(vec![4.0, 3.0], 1.5).unwrap(),
        ];
        assert!(fit_cobb_douglas(&pts).is_err());
    }

    #[test]
    fn fit_point_validation() {
        assert!(FitPoint::new(vec![], 1.0).is_err());
        assert!(FitPoint::new(vec![0.0], 1.0).is_err());
        assert!(FitPoint::new(vec![1.0], 0.0).is_err());
        assert!(FitPoint::new(vec![1.0], f64::NAN).is_err());
    }

    #[test]
    fn collinear_design_reports_solver_error() {
        // Only one distinct x value: log x column collinear with intercept.
        let pts: Vec<FitPoint> = (0..6)
            .map(|i| FitPoint::new(vec![2.0, 2.0], 1.0 + i as f64 * 0.1).unwrap())
            .collect();
        assert!(matches!(fit_cobb_douglas(&pts), Err(CoreError::Solver(_))));
    }
}
