//! # ref-core
//!
//! The core library of the REF (Resource Elasticity Fairness) reproduction:
//! Cobb-Douglas utilities, the proportional-elasticity allocation mechanism,
//! the comparison mechanisms, and the game-theoretic property framework of
//! Zahedi & Lee, *REF: Resource Elasticity Fairness with Sharing Incentives
//! for Multiprocessors* (ASPLOS 2014).
//!
//! ## Overview
//!
//! - [`utility`] — Cobb-Douglas (Eq. 1) and Leontief (Eq. 8) preferences.
//! - [`fitting`] — log-linear least-squares fitting of utilities to
//!   performance profiles (Eq. 16).
//! - [`mechanism`] — [`ProportionalElasticity`](mechanism::ProportionalElasticity)
//!   (the paper's closed-form contribution, Eqs. 12–13) plus
//!   [`EqualShare`](mechanism::EqualShare),
//!   [`MaxWelfare`](mechanism::MaxWelfare) and
//!   [`EqualSlowdown`](mechanism::EqualSlowdown) for the evaluation's
//!   comparisons.
//! - [`properties`] — checkers for sharing incentives, envy-freeness and
//!   Pareto efficiency (Eq. 11).
//! - [`edgeworth`] — the two-agent geometry of Figs. 1–7.
//! - [`welfare`] — weighted system throughput (Eq. 17) and related metrics.
//! - [`spl`] — strategy-proofness-in-the-large best-response analysis
//!   (Eq. 15, Appendix A).
//! - [`online`] — run-time utility adaptation from the naive uniform prior
//!   (§4.4's on-line profiling).
//! - [`ceei`] — the competitive-equilibrium-from-equal-incomes market whose
//!   outcome §4.2 proves equal to REF, with a tatonnement price dynamic.
//!
//! ## Quickstart
//!
//! The paper's running example end to end:
//!
//! ```
//! use ref_core::mechanism::{Mechanism, ProportionalElasticity};
//! use ref_core::properties::FairnessReport;
//! use ref_core::resource::Capacity;
//! use ref_core::utility::CobbDouglas;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let agents = vec![
//!     CobbDouglas::new(1.0, vec![0.6, 0.4])?, // bursty, little reuse
//!     CobbDouglas::new(1.0, vec![0.2, 0.8])?, // cache friendly
//! ];
//! let capacity = Capacity::new(vec![24.0, 12.0])?; // GB/s, MB
//! let alloc = ProportionalElasticity.allocate(&agents, &capacity)?;
//! let report = FairnessReport::check(&agents, &alloc, &capacity);
//! assert!(report.is_fair_with_si());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Agent/resource loops index parallel arrays; iterator rewrites obscure the
// i/r index correspondence with the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod ceei;
pub mod edgeworth;
pub mod error;
pub mod fitting;
pub mod mechanism;
pub mod online;
pub mod properties;
pub mod resource;
pub mod spl;
pub mod utility;
pub mod welfare;

pub use error::{CoreError, Result};
pub use mechanism::Mechanism;
pub use resource::{Allocation, Bundle, Capacity};
pub use utility::{CobbDouglas, Leontief, Utility};
