//! Credit-weighted allocation: an inner mechanism tilted by credit
//! balances (Zahedi & Freeman's credit fairness, adapted to REF).
//!
//! REF's guarantees are *per epoch*: an agent that receives less than its
//! fair share today is owed nothing tomorrow. The credit scheme closes
//! that gap across epochs. A ledger (maintained by the market layer)
//! tracks each agent's cumulative delivered-vs-entitled gap as a
//! normalized *credit balance*; agents below their cumulative fair share
//! carry positive credits. At allocation time those balances become
//! per-agent weights `w_i > 0`, and the [`CreditMechanism`] maximizes the
//! *weighted* objective of its inner mechanism — so a creditor is served
//! above its per-epoch entitlement until the debt is repaid.
//!
//! The tilt is implemented by exponent scaling: a Cobb-Douglas utility
//! raised to the power `w` is again Cobb-Douglas
//! (`(a0 * prod x^a)^w = a0^w * prod x^{w a}`), so the weighted problem
//! stays a geometric program and the inner solvers run unchanged:
//!
//! - [`MaxWelfare`] (without fairness constraints): the objective
//!   `prod_i u_i^{w_i}` is exactly weighted Nash social welfare.
//! - [`EqualSlowdown`]: the solver equalizes the normalized levels
//!   `U_i^{w_i}`; since `U_i <= 1` at any feasible point, a larger
//!   weight shrinks `U^w`, and the max-min step compensates by granting
//!   the agent more — the same monotone tilt.
//!
//! Uniform weights (`w_i = 1` for all `i`) leave the problem — and for a
//! warm-started solve, the exact iterate sequence — identical to the
//! untilted inner mechanism.
//!
//! Because the tilted problem has the same variables as the untilted one
//! (one block per agent plus the inner mechanism's auxiliaries), warm
//! hints pass straight through: the market's `WarmStartCache` keeps
//! seeding solves across epochs as credit balances drift.

use ref_solver::gp::GpWarmStart;

use crate::error::{CoreError, Result};
use crate::mechanism::{validate_inputs, EqualSlowdown, MaxWelfare, Mechanism};
use crate::resource::{Allocation, Capacity};
use crate::utility::CobbDouglas;

/// Which optimization-backed mechanism a [`CreditMechanism`] tilts.
///
/// Only the *unconstrained* inner variants are offered: the Eq. 11
/// fairness constraints pin the solution to the per-epoch fair set,
/// which would forbid exactly the over-/under-service the credit tilt
/// exists to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditInner {
    /// Weighted Nash social welfare `prod_i u_i(x_i)^{w_i}`.
    MaxWelfare,
    /// Weighted egalitarian max-min over normalized levels `U_i^{w_i}`.
    EqualSlowdown,
}

impl CreditInner {
    /// Stable lower-kebab-case label for wire formats.
    pub fn label(&self) -> &'static str {
        match self {
            CreditInner::MaxWelfare => "max-welfare",
            CreditInner::EqualSlowdown => "equal-slowdown",
        }
    }
}

/// An inner mechanism tilted by per-agent credit weights.
///
/// # Examples
///
/// A creditor (weight above 1) is served strictly more than it would be
/// under the untilted mechanism:
///
/// ```
/// use ref_core::mechanism::{CreditInner, CreditMechanism, Mechanism};
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let flat = CreditMechanism::new(CreditInner::MaxWelfare, vec![1.0, 1.0])?;
/// let tilted = CreditMechanism::new(CreditInner::MaxWelfare, vec![1.3, 1.0])?;
/// let base = flat.allocate(&agents, &capacity)?;
/// let favored = tilted.allocate(&agents, &capacity)?;
/// assert!(favored.bundle(0).get(0) > base.bundle(0).get(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CreditMechanism {
    inner: CreditInner,
    weights: Vec<f64>,
}

impl CreditMechanism {
    /// Creates a credit-tilted mechanism with one weight per agent (in
    /// the same order the agents will be passed to
    /// [`Mechanism::allocate`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `weights` is empty or
    /// any weight is non-finite or not strictly positive (a zero weight
    /// would erase the agent from the objective entirely).
    pub fn new(inner: CreditInner, weights: Vec<f64>) -> Result<CreditMechanism> {
        if weights.is_empty() {
            return Err(CoreError::InvalidArgument(
                "credit mechanism needs at least one weight".to_string(),
            ));
        }
        if let Some(w) = weights.iter().find(|w| !(w.is_finite() && **w > 0.0)) {
            return Err(CoreError::InvalidArgument(format!(
                "credit weights must be positive and finite, got {w}"
            )));
        }
        Ok(CreditMechanism { inner, weights })
    }

    /// The inner mechanism being tilted.
    pub fn inner(&self) -> CreditInner {
        self.inner
    }

    /// The per-agent weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Raises each agent's utility to its weight: `u^w` is Cobb-Douglas
    /// with scale `a0^w` and elasticities `w * a`.
    fn tilted(&self, agents: &[CobbDouglas]) -> Result<Vec<CobbDouglas>> {
        if agents.len() != self.weights.len() {
            return Err(CoreError::InvalidArgument(format!(
                "credit mechanism holds {} weights for {} agents",
                self.weights.len(),
                agents.len()
            )));
        }
        agents
            .iter()
            .zip(&self.weights)
            .map(|(u, &w)| {
                CobbDouglas::new(
                    u.scale().powf(w),
                    u.elasticities().iter().map(|a| a * w).collect(),
                )
            })
            .collect()
    }
}

impl Mechanism for CreditMechanism {
    fn name(&self) -> &str {
        match self.inner {
            CreditInner::MaxWelfare => "credit-max-welfare",
            CreditInner::EqualSlowdown => "credit-equal-slowdown",
        }
    }

    fn allocate(&self, agents: &[CobbDouglas], capacity: &Capacity) -> Result<Allocation> {
        self.allocate_warm(agents, capacity, None)
            .map(|(alloc, _)| alloc)
    }

    fn allocate_warm(
        &self,
        agents: &[CobbDouglas],
        capacity: &Capacity,
        warm: Option<&GpWarmStart>,
    ) -> Result<(Allocation, Option<GpWarmStart>)> {
        validate_inputs(agents, capacity)?;
        let tilted = self.tilted(agents)?;
        // The tilted problem has the same variable layout as the inner
        // one (agent blocks plus the inner auxiliaries), so the warm
        // hint threads through unchanged.
        match self.inner {
            CreditInner::MaxWelfare => {
                MaxWelfare::without_fairness().allocate_warm(&tilted, capacity, warm)
            }
            CreditInner::EqualSlowdown => {
                EqualSlowdown::new().allocate_warm(&tilted, capacity, warm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;

    fn paper_agents() -> Vec<CobbDouglas> {
        vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ]
    }

    fn paper_capacity() -> Capacity {
        Capacity::new(vec![24.0, 12.0]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_weights() {
        assert!(CreditMechanism::new(CreditInner::MaxWelfare, vec![]).is_err());
        assert!(CreditMechanism::new(CreditInner::MaxWelfare, vec![1.0, 0.0]).is_err());
        assert!(CreditMechanism::new(CreditInner::MaxWelfare, vec![-0.5]).is_err());
        assert!(CreditMechanism::new(CreditInner::MaxWelfare, vec![f64::NAN]).is_err());
        // Weight count must match the agent count at allocation time.
        let m = CreditMechanism::new(CreditInner::MaxWelfare, vec![1.0]).unwrap();
        assert!(m.allocate(&paper_agents(), &paper_capacity()).is_err());
    }

    #[test]
    fn uniform_weights_match_the_inner_mechanism() {
        let agents = paper_agents();
        let c = paper_capacity();
        let flat = CreditMechanism::new(CreditInner::MaxWelfare, vec![1.0, 1.0]).unwrap();
        let credit = flat.allocate(&agents, &c).unwrap();
        let inner = MaxWelfare::without_fairness()
            .allocate(&agents, &c)
            .unwrap();
        for i in 0..2 {
            for r in 0..2 {
                assert_eq!(
                    credit.bundle(i).get(r).to_bits(),
                    inner.bundle(i).get(r).to_bits(),
                    "agent {i} resource {r}"
                );
            }
        }
    }

    #[test]
    fn creditor_weight_buys_strictly_more_utility() {
        let agents = paper_agents();
        let c = paper_capacity();
        for inner in [CreditInner::MaxWelfare, CreditInner::EqualSlowdown] {
            let base = CreditMechanism::new(inner, vec![1.0, 1.0])
                .unwrap()
                .allocate(&agents, &c)
                .unwrap();
            let tilted = CreditMechanism::new(inner, vec![1.4, 1.0])
                .unwrap()
                .allocate(&agents, &c)
                .unwrap();
            let u0 = &agents[0];
            assert!(
                u0.value(tilted.bundle(0)) > u0.value(base.bundle(0)) * 1.001,
                "{inner:?}: tilt did not favor the creditor"
            );
            // Capacity stays respected.
            assert!(tilted.is_exhaustive(&c, 1e-3), "{inner:?}");
        }
    }

    #[test]
    fn tilt_is_monotone_in_the_weight() {
        let agents = paper_agents();
        let c = paper_capacity();
        let serve = |w0: f64| {
            let alloc = CreditMechanism::new(CreditInner::MaxWelfare, vec![w0, 1.0])
                .unwrap()
                .allocate(&agents, &c)
                .unwrap();
            agents[0].value(alloc.bundle(0))
        };
        let (low, mid, high) = (serve(0.8), serve(1.0), serve(1.3));
        assert!(low < mid && mid < high, "{low} {mid} {high}");
    }

    #[test]
    fn warm_started_allocation_agrees_with_cold() {
        let agents = paper_agents();
        let c = paper_capacity();
        for inner in [CreditInner::MaxWelfare, CreditInner::EqualSlowdown] {
            let m = CreditMechanism::new(inner, vec![1.2, 0.9]).unwrap();
            let (cold, hint) = m.allocate_warm(&agents, &c, None).unwrap();
            let hint = hint.expect("credit mechanisms are optimization-backed");
            let (rewarmed, next) = m.allocate_warm(&agents, &c, Some(&hint)).unwrap();
            assert!(next.is_some());
            for i in 0..2 {
                for r in 0..2 {
                    assert!(
                        (rewarmed.bundle(i).get(r) - cold.bundle(i).get(r)).abs() < 1e-3,
                        "{inner:?} agent {i} resource {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn names_and_labels_distinguish_inners() {
        let mw = CreditMechanism::new(CreditInner::MaxWelfare, vec![1.0]).unwrap();
        let es = CreditMechanism::new(CreditInner::EqualSlowdown, vec![1.0]).unwrap();
        assert_ne!(mw.name(), es.name());
        assert_eq!(CreditInner::MaxWelfare.label(), "max-welfare");
        assert_eq!(CreditInner::EqualSlowdown.label(), "equal-slowdown");
        assert_eq!(mw.inner(), CreditInner::MaxWelfare);
        assert_eq!(mw.weights(), &[1.0]);
    }
}
