//! The static equal-division baseline.

use crate::error::Result;
use crate::mechanism::{validate_inputs, Mechanism};
use crate::resource::{Allocation, Capacity};
use crate::utility::CobbDouglas;

/// Divides every resource equally: `x_ir = C_r / N`.
///
/// This is the outside option that defines sharing incentives (Eq. 3): a
/// mechanism provides SI exactly when every agent weakly prefers its
/// allocation to this one. It is trivially SI and EF but generally not
/// Pareto efficient, because it ignores heterogeneous demands.
///
/// # Examples
///
/// ```
/// use ref_core::mechanism::{EqualShare, Mechanism};
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let alloc = EqualShare.allocate(&agents, &capacity)?;
/// assert_eq!(alloc.bundle(0).as_slice(), &[12.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualShare;

impl Mechanism for EqualShare {
    fn name(&self) -> &str {
        "equal-share"
    }

    fn allocate(&self, agents: &[CobbDouglas], capacity: &Capacity) -> Result<Allocation> {
        validate_inputs(agents, capacity)?;
        let split = capacity.equal_split(agents.len());
        Allocation::new(vec![split; agents.len()], capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;

    #[test]
    fn splits_equally() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.9, 0.1]).unwrap(),
            CobbDouglas::new(1.0, vec![0.1, 0.9]).unwrap(),
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
        ];
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let alloc = EqualShare.allocate(&agents, &c).unwrap();
        for i in 0..3 {
            assert_eq!(alloc.bundle(i).as_slice(), &[8.0, 4.0]);
        }
        assert!(alloc.is_exhaustive(&c, 1e-12));
    }

    #[test]
    fn is_trivially_envy_free() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ];
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let alloc = EqualShare.allocate(&agents, &c).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(agents[i].weakly_prefers(alloc.bundle(i), alloc.bundle(j)));
            }
        }
    }

    #[test]
    fn rejects_empty() {
        let c = Capacity::new(vec![1.0]).unwrap();
        assert!(EqualShare.allocate(&[], &c).is_err());
    }
}
