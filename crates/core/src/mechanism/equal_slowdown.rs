//! The equal-slowdown mechanism of prior architecture work (§4.5, §5.5).

use ref_solver::gp::{GeometricProgram, GpWarmStart, Monomial};

use crate::error::Result;
use crate::mechanism::{max_welfare, validate_inputs, Mechanism};
use crate::resource::{Allocation, Bundle, Capacity};
use crate::utility::{CobbDouglas, Utility};

/// Maximizes the minimum weighted utility `min_i U_i(x_i)` subject only to
/// capacity — the egalitarian objective that equalizes slowdown.
///
/// `U_i(x_i) = u_i(x_i) / u_i(C)` is each agent's performance when sharing
/// normalized by its performance when given the whole machine (the paper's
/// weighted progress, Eq. 17). Prior memory-scheduling work equalizes these
/// slowdowns; the paper shows this conventional objective guarantees
/// neither sharing incentives nor envy-freeness (§5.4).
///
/// As a geometric program: maximize `t` subject to
/// `t * u_i(C) / u_i(x_i) <= 1` for every agent and the capacity
/// posynomials.
///
/// [`EqualSlowdown::with_fairness`] additionally imposes the SI, EF and PE
/// conditions of Eq. 11 — the paper's "Fair Allocation for Egalitarian
/// Welfare", an empirical *lower* bound on fair performance (§4.5).
///
/// # Examples
///
/// ```
/// use ref_core::mechanism::{EqualSlowdown, Mechanism};
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let alloc = EqualSlowdown::new().allocate(&agents, &capacity)?;
/// assert_eq!(alloc.num_agents(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EqualSlowdown {
    fairness: bool,
}

impl EqualSlowdown {
    /// The conventional equal-slowdown objective: max-min subject to
    /// capacity only ("Equal Slowdown w/o Fairness").
    pub fn new() -> EqualSlowdown {
        EqualSlowdown { fairness: false }
    }

    /// Egalitarian welfare subject to the fairness conditions of Eq. 11
    /// ("Fair Allocation for Egalitarian Welfare").
    pub fn with_fairness() -> EqualSlowdown {
        EqualSlowdown { fairness: true }
    }

    /// Whether fairness constraints are enforced.
    pub fn fairness(&self) -> bool {
        self.fairness
    }
}

impl Mechanism for EqualSlowdown {
    fn name(&self) -> &str {
        if self.fairness {
            "egalitarian-with-fairness"
        } else {
            "equal-slowdown"
        }
    }

    fn allocate(&self, agents: &[CobbDouglas], capacity: &Capacity) -> Result<Allocation> {
        self.allocate_warm(agents, capacity, None)
            .map(|(alloc, _)| alloc)
    }

    fn allocate_warm(
        &self,
        agents: &[CobbDouglas],
        capacity: &Capacity,
        warm: Option<&GpWarmStart>,
    ) -> Result<(Allocation, Option<GpWarmStart>)> {
        validate_inputs(agents, capacity)?;
        let n = agents.len();
        let r_count = capacity.num_resources();
        // Variables: x_ir for all agents/resources, then the level t.
        let num_vars = n * r_count + 1;
        let t_var = n * r_count;

        // Objective: maximize t, i.e. minimize t^{-1}.
        let mut exp = vec![0.0; num_vars];
        exp[t_var] = -1.0;
        let objective = Monomial::new(1.0, exp)?;
        let mut gp = GeometricProgram::minimize(num_vars, objective.into())?;

        for c in max_welfare::capacity_constraints(n, capacity, num_vars)? {
            gp.add_constraint(c)?;
        }
        if self.fairness {
            for m in max_welfare::envy_free_constraints(agents, r_count, num_vars)? {
                gp.add_constraint(m.into())?;
            }
            for m in max_welfare::sharing_incentive_constraints(agents, capacity, num_vars)? {
                gp.add_constraint(m.into())?;
            }
            for m in max_welfare::pareto_constraints(agents, r_count, num_vars)? {
                gp.add_monomial_equality_with_tolerance(m, max_welfare::PE_BAND)?;
            }
        }
        // t <= U_i(x_i): t * u_i(C) / u_i(x_i) <= 1.
        for (i, agent) in agents.iter().enumerate() {
            let u_c = agent.value(&capacity.as_bundle());
            let mut exp = vec![0.0; num_vars];
            exp[t_var] = 1.0;
            for r in 0..r_count {
                exp[i * r_count + r] = -agent.elasticity(r);
            }
            gp.add_constraint(Monomial::new(u_c / agent.scale(), exp)?.into())?;
        }

        // Start at the equal division, where every U_i is strictly between
        // 0 and 1; t0 below the smallest U_i is strictly feasible.
        let equal = capacity.equal_split(n);
        let min_u = agents
            .iter()
            .map(|a| a.value(&equal) / a.value(&capacity.as_bundle()))
            .fold(f64::INFINITY, f64::min);
        let mut x0 = vec![0.0; num_vars];
        for i in 0..n {
            for r in 0..r_count {
                x0[i * r_count + r] = capacity.get(r) / n as f64;
            }
        }
        x0[t_var] = (min_u * 0.5).max(1e-12);
        let sol = gp.solve_warm(&x0, warm)?;
        let hint = GpWarmStart::from_solution(&sol);
        let bundles: Result<Vec<Bundle>> = (0..n)
            .map(|i| Bundle::new((0..r_count).map(|r| sol.x[i * r_count + r]).collect()))
            .collect();
        Ok((Allocation::new(bundles?, capacity)?, Some(hint)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::welfare::weighted_utility;

    fn paper_agents() -> Vec<CobbDouglas> {
        vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ]
    }

    fn paper_capacity() -> Capacity {
        Capacity::new(vec![24.0, 12.0]).unwrap()
    }

    #[test]
    fn slowdowns_equalize_at_optimum() {
        let agents = paper_agents();
        let c = paper_capacity();
        let alloc = EqualSlowdown::new().allocate(&agents, &c).unwrap();
        let u0 = weighted_utility(&agents[0], alloc.bundle(0), &c);
        let u1 = weighted_utility(&agents[1], alloc.bundle(1), &c);
        assert!((u0 - u1).abs() < 1e-3, "U0 {u0} U1 {u1}");
        assert!(alloc.is_exhaustive(&c, 1e-3));
    }

    #[test]
    fn beats_equal_split_minimum() {
        // The max-min optimum is at least as good for the worst agent as
        // the equal division.
        let agents = paper_agents();
        let c = paper_capacity();
        let alloc = EqualSlowdown::new().allocate(&agents, &c).unwrap();
        let equal = c.equal_split(2);
        let worst_opt = agents
            .iter()
            .enumerate()
            .map(|(i, a)| weighted_utility(a, alloc.bundle(i), &c))
            .fold(f64::INFINITY, f64::min);
        let worst_equal = agents
            .iter()
            .map(|a| a.value(&equal) / a.value(&c.as_bundle()))
            .fold(f64::INFINITY, f64::min);
        assert!(worst_opt >= worst_equal * (1.0 - 1e-4));
    }

    #[test]
    fn identical_agents_get_equal_split() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
        ];
        let c = paper_capacity();
        let alloc = EqualSlowdown::new().allocate(&agents, &c).unwrap();
        for r in 0..2 {
            assert!(
                (alloc.bundle(0).get(r) - alloc.bundle(1).get(r)).abs() < 0.05,
                "{alloc:?}"
            );
        }
    }

    #[test]
    fn asymmetric_scale_does_not_break_normalization() {
        // Multiplying an agent's utility by a constant changes u(C) and
        // u(x) equally, so the allocation must be unchanged.
        let a = vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ];
        let b = vec![
            CobbDouglas::new(7.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(0.3, vec![0.2, 0.8]).unwrap(),
        ];
        let c = paper_capacity();
        let alloc_a = EqualSlowdown::new().allocate(&a, &c).unwrap();
        let alloc_b = EqualSlowdown::new().allocate(&b, &c).unwrap();
        for i in 0..2 {
            for r in 0..2 {
                assert!((alloc_a.bundle(i).get(r) - alloc_b.bundle(i).get(r)).abs() < 0.05);
            }
        }
    }

    #[test]
    fn fairness_variant_satisfies_properties() {
        use crate::properties::FairnessReport;
        let agents = vec![
            CobbDouglas::new(1.2, vec![0.8, 0.3]).unwrap(),
            CobbDouglas::new(0.7, vec![0.2, 0.6]).unwrap(),
        ];
        let c = paper_capacity();
        let alloc = EqualSlowdown::with_fairness()
            .allocate(&agents, &c)
            .unwrap();
        let report = FairnessReport::check_with_tolerance(&agents, &alloc, &c, 2e-3);
        assert!(report.sharing_incentives(), "{report:?}");
        assert!(report.envy_free(), "{report:?}");
    }

    #[test]
    fn fairness_variant_is_a_lower_bound_on_fair_welfare() {
        use crate::mechanism::MaxWelfare;
        use crate::welfare::weighted_system_throughput;
        let agents = vec![
            CobbDouglas::new(1.2, vec![0.8, 0.3]).unwrap(),
            CobbDouglas::new(0.7, vec![0.2, 0.6]).unwrap(),
        ];
        let c = paper_capacity();
        let egal = EqualSlowdown::with_fairness()
            .allocate(&agents, &c)
            .unwrap();
        let util = MaxWelfare::with_fairness().allocate(&agents, &c).unwrap();
        let t_egal = weighted_system_throughput(&agents, &egal, &c);
        let t_util = weighted_system_throughput(&agents, &util, &c);
        assert!(
            t_egal <= t_util * (1.0 + 1e-3),
            "egal {t_egal} util {t_util}"
        );
    }

    #[test]
    fn warm_started_allocation_agrees_with_cold() {
        let agents = paper_agents();
        let c = paper_capacity();
        let mech = EqualSlowdown::new();
        let (cold, hint) = mech.allocate_warm(&agents, &c, None).unwrap();
        let hint = hint.expect("GP mechanisms always return a hint");
        // The hint covers the level variable `t` as well as the bundles.
        assert_eq!(hint.x.len(), 2 * 2 + 1);
        let (rewarmed, _) = mech.allocate_warm(&agents, &c, Some(&hint)).unwrap();
        for i in 0..2 {
            for r in 0..2 {
                assert!((rewarmed.bundle(i).get(r) - cold.bundle(i).get(r)).abs() < 1e-3);
            }
        }
        let u0 = weighted_utility(&agents[0], rewarmed.bundle(0), &c);
        let u1 = weighted_utility(&agents[1], rewarmed.bundle(1), &c);
        assert!((u0 - u1).abs() < 1e-3, "U0 {u0} U1 {u1}");
    }

    #[test]
    fn variant_names_differ() {
        assert_ne!(
            EqualSlowdown::new().name(),
            EqualSlowdown::with_fairness().name()
        );
        assert!(EqualSlowdown::with_fairness().fairness());
        assert!(!EqualSlowdown::new().fairness());
    }

    #[test]
    fn rejects_empty_agents() {
        let c = paper_capacity();
        assert!(EqualSlowdown::new().allocate(&[], &c).is_err());
    }
}
