//! Nash-social-welfare maximization via geometric programming (§4.5).

use ref_solver::gp::{GeometricProgram, GpWarmStart, Monomial, Posynomial};

use crate::error::{CoreError, Result};
use crate::mechanism::{validate_inputs, Mechanism};
use crate::resource::{Allocation, Bundle, Capacity};
use crate::utility::CobbDouglas;

/// Elasticities below this threshold are treated as zero when forming
/// marginal-rate-of-substitution (PE) constraints, which divide by them.
const PE_ELASTICITY_FLOOR: f64 = 1e-6;

/// Relaxation half-width for the Pareto-efficiency monomial equalities.
pub(crate) const PE_BAND: f64 = 1e-3;

/// Relaxation applied to the EF and SI constraints: `u_i(x_j) <= (1 + eps)
/// u_i(x_i)`. Exact constraints can have an empty strict interior (e.g.
/// identical agents, for whom the equal split is the unique fair point),
/// which a log-barrier method cannot center in. The relaxation is an order
/// of magnitude below the tolerance the property checkers use.
const FAIRNESS_SLACK: f64 = 1e-4;

/// Maximizes Nash social welfare `prod_i U_i(x_i)`, optionally subject to
/// the game-theoretic fairness conditions of Eq. 11.
///
/// Cobb-Douglas utilities are monomials, so the product objective and every
/// constraint (capacity, sharing incentives, envy-freeness, the Pareto
/// tangency conditions) are posynomials or monomials: the whole problem is
/// a geometric program, tractable exactly as the paper's footnote 2
/// observes. The unconstrained variant is the evaluation's empirical upper
/// bound on throughput ("Max Welfare w/o Fairness"); the constrained
/// variant is "Max Welfare w/ Fairness".
///
/// Normalizing each `U_i = u_i / u_i(C)` rescales the objective by a
/// constant, so the optimizer works with the raw fitted utilities directly.
///
/// # Examples
///
/// ```
/// use ref_core::mechanism::{MaxWelfare, Mechanism};
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let alloc = MaxWelfare::with_fairness().allocate(&agents, &capacity)?;
/// // Coincides with the paper's closed-form REF allocation.
/// assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxWelfare {
    fairness: bool,
}

impl MaxWelfare {
    /// Nash welfare subject to SI, EF and PE constraints
    /// ("Max Welfare w/ Fairness").
    pub fn with_fairness() -> MaxWelfare {
        MaxWelfare { fairness: true }
    }

    /// Nash welfare subject to capacity only
    /// ("Max Welfare w/o Fairness", the throughput upper bound).
    pub fn without_fairness() -> MaxWelfare {
        MaxWelfare { fairness: false }
    }

    /// Whether fairness constraints are enforced.
    pub fn fairness(&self) -> bool {
        self.fairness
    }
}

/// Flat variable index of agent `i`, resource `r`.
fn idx(i: usize, r: usize, num_resources: usize) -> usize {
    i * num_resources + r
}

/// Capacity constraints `sum_i x_ir / C_r <= 1` as posynomials.
pub(crate) fn capacity_constraints(
    n: usize,
    capacity: &Capacity,
    num_vars: usize,
) -> Result<Vec<Posynomial>> {
    let r_count = capacity.num_resources();
    let mut out = Vec::with_capacity(r_count);
    for r in 0..r_count {
        let mut terms = Vec::with_capacity(n);
        for i in 0..n {
            let mut exp = vec![0.0; num_vars];
            exp[idx(i, r, r_count)] = 1.0;
            terms.push(Monomial::new(1.0 / capacity.get(r), exp)?);
        }
        out.push(Posynomial::from_monomials(terms)?);
    }
    Ok(out)
}

/// Envy-freeness constraints `u_i(x_j) / u_i(x_i) <= 1` as monomials.
pub(crate) fn envy_free_constraints(
    agents: &[CobbDouglas],
    num_resources: usize,
    num_vars: usize,
) -> Result<Vec<Monomial>> {
    let n = agents.len();
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut exp = vec![0.0; num_vars];
            for r in 0..num_resources {
                let a = agents[i].elasticity(r);
                exp[idx(j, r, num_resources)] += a;
                exp[idx(i, r, num_resources)] -= a;
            }
            out.push(Monomial::new(1.0 / (1.0 + FAIRNESS_SLACK), exp)?);
        }
    }
    Ok(out)
}

/// Sharing-incentive constraints `u_i(C/N) / u_i(x_i) <= 1` as monomials.
pub(crate) fn sharing_incentive_constraints(
    agents: &[CobbDouglas],
    capacity: &Capacity,
    num_vars: usize,
) -> Result<Vec<Monomial>> {
    let n = agents.len();
    let r_count = capacity.num_resources();
    let mut out = Vec::with_capacity(n);
    for (i, agent) in agents.iter().enumerate() {
        let mut coeff = 1.0;
        let mut exp = vec![0.0; num_vars];
        for r in 0..r_count {
            let a = agent.elasticity(r);
            coeff *= (capacity.get(r) / n as f64).powf(a);
            exp[idx(i, r, r_count)] -= a;
        }
        out.push(Monomial::new(coeff / (1.0 + FAIRNESS_SLACK), exp)?);
    }
    Ok(out)
}

/// Pareto-efficiency tangency conditions (Eq. 11's MRS equalities) as
/// monomial equalities, skipping pairs involving (near-)zero elasticities
/// for which the MRS is undefined.
pub(crate) fn pareto_constraints(
    agents: &[CobbDouglas],
    num_resources: usize,
    num_vars: usize,
) -> Result<Vec<Monomial>> {
    let n = agents.len();
    let mut out = Vec::new();
    let ok = |v: f64| v > PE_ELASTICITY_FLOOR;
    for i in 1..n {
        for r in 1..num_resources {
            let (a_i0, a_ir) = (agents[i].elasticity(0), agents[i].elasticity(r));
            let (a_00, a_0r) = (agents[0].elasticity(0), agents[0].elasticity(r));
            if !(ok(a_i0) && ok(a_ir) && ok(a_00) && ok(a_0r)) {
                continue;
            }
            // MRS_i(r, 0) = MRS_0(r, 0):
            // (a_ir / a_i0) (x_i0 / x_ir) * (a_00 / a_0r) (x_0r / x_00) = 1.
            let coeff = (a_ir / a_i0) * (a_00 / a_0r);
            let mut exp = vec![0.0; num_vars];
            exp[idx(i, 0, num_resources)] += 1.0;
            exp[idx(i, r, num_resources)] -= 1.0;
            exp[idx(0, r, num_resources)] += 1.0;
            exp[idx(0, 0, num_resources)] -= 1.0;
            out.push(Monomial::new(coeff, exp)?);
        }
    }
    Ok(out)
}

impl Mechanism for MaxWelfare {
    fn name(&self) -> &str {
        if self.fairness {
            "max-welfare-with-fairness"
        } else {
            "max-welfare-without-fairness"
        }
    }

    fn allocate(&self, agents: &[CobbDouglas], capacity: &Capacity) -> Result<Allocation> {
        self.allocate_warm(agents, capacity, None)
            .map(|(alloc, _)| alloc)
    }

    fn allocate_warm(
        &self,
        agents: &[CobbDouglas],
        capacity: &Capacity,
        warm: Option<&GpWarmStart>,
    ) -> Result<(Allocation, Option<GpWarmStart>)> {
        validate_inputs(agents, capacity)?;
        let n = agents.len();
        let r_count = capacity.num_resources();
        let num_vars = n * r_count;

        // Objective: minimize prod_i u_i(x_i)^{-1}, a monomial.
        let mut coeff = 1.0;
        let mut exp = vec![0.0; num_vars];
        for (i, agent) in agents.iter().enumerate() {
            coeff /= agent.scale();
            for r in 0..r_count {
                exp[idx(i, r, r_count)] -= agent.elasticity(r);
            }
        }
        let objective = Monomial::new(coeff, exp).map_err(CoreError::from)?;
        let mut gp = GeometricProgram::minimize(num_vars, objective.into())?;
        for c in capacity_constraints(n, capacity, num_vars)? {
            gp.add_constraint(c)?;
        }
        if self.fairness {
            for m in envy_free_constraints(agents, r_count, num_vars)? {
                gp.add_constraint(m.into())?;
            }
            for m in sharing_incentive_constraints(agents, capacity, num_vars)? {
                gp.add_constraint(m.into())?;
            }
            for m in pareto_constraints(agents, r_count, num_vars)? {
                gp.add_monomial_equality_with_tolerance(m, PE_BAND)?;
            }
        }
        // Warm start. With fairness constraints, start from the (slightly
        // shrunk) REF allocation, which is provably fair and therefore
        // strictly feasible under the relaxed constraints; without them,
        // the equal division suffices (phase I handles the boundary).
        let mut x0 = vec![0.0; num_vars];
        if self.fairness {
            let warm = crate::mechanism::ProportionalElasticity.allocate(agents, capacity)?;
            for i in 0..n {
                for r in 0..r_count {
                    x0[idx(i, r, r_count)] =
                        (warm.bundle(i).get(r) * (1.0 - 1e-4)).max(1e-9 * capacity.get(r));
                }
            }
        } else {
            for i in 0..n {
                for r in 0..r_count {
                    x0[idx(i, r, r_count)] = capacity.get(r) / n as f64;
                }
            }
        }
        let sol = gp.solve_warm(&x0, warm)?;
        let hint = GpWarmStart::from_solution(&sol);
        let bundles: Result<Vec<Bundle>> = (0..n)
            .map(|i| Bundle::new((0..r_count).map(|r| sol.x[idx(i, r, r_count)]).collect()))
            .collect();
        Ok((Allocation::new(bundles?, capacity)?, Some(hint)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::ProportionalElasticity;
    use crate::utility::Utility;

    fn paper_agents() -> Vec<CobbDouglas> {
        vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ]
    }

    fn paper_capacity() -> Capacity {
        Capacity::new(vec![24.0, 12.0]).unwrap()
    }

    #[test]
    fn unconstrained_nash_on_normalized_agents_matches_ref() {
        // With per-agent elasticities already summing to one, the raw Nash
        // product equals the re-scaled one, so the optimum is the REF
        // closed form.
        let alloc = MaxWelfare::without_fairness()
            .allocate(&paper_agents(), &paper_capacity())
            .unwrap();
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.05, "{alloc:?}");
        assert!((alloc.bundle(0).get(1) - 4.0).abs() < 0.05, "{alloc:?}");
    }

    #[test]
    fn unnormalized_agents_shift_unconstrained_nash() {
        // Agent 0 reports steep (unnormalized) elasticities; the raw Nash
        // optimum weights it by total elasticity mass, unlike REF.
        let agents = vec![
            CobbDouglas::new(1.0, vec![1.2, 0.8]).unwrap(),
            CobbDouglas::new(1.0, vec![0.1, 0.4]).unwrap(),
        ];
        let c = paper_capacity();
        let nash = MaxWelfare::without_fairness()
            .allocate(&agents, &c)
            .unwrap();
        let ref_alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        // Raw Nash bandwidth split 1.2 : 0.1 -> ~22.15 GB/s.
        assert!((nash.bundle(0).get(0) - 24.0 * 1.2 / 1.3).abs() < 0.1);
        // REF rescales to (0.6, 0.4) vs (0.2, 0.8) -> 18 GB/s.
        assert!((ref_alloc.bundle(0).get(0) - 18.0).abs() < 1e-9);
        assert!(nash.bundle(0).get(0) > ref_alloc.bundle(0).get(0) + 1.0);
    }

    #[test]
    fn fair_variant_satisfies_fairness_conditions() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![1.2, 0.8]).unwrap(),
            CobbDouglas::new(1.0, vec![0.1, 0.4]).unwrap(),
        ];
        let c = paper_capacity();
        let alloc = MaxWelfare::with_fairness().allocate(&agents, &c).unwrap();
        let equal = c.equal_split(2);
        for (i, u) in agents.iter().enumerate() {
            // SI within numerical tolerance.
            assert!(
                u.value(alloc.bundle(i)) >= u.value(&equal) * (1.0 - 1e-4),
                "agent {i} SI violated"
            );
            // EF within numerical tolerance.
            for j in 0..2 {
                assert!(
                    u.value(alloc.bundle(i)) >= u.value(alloc.bundle(j)) * (1.0 - 1e-4),
                    "agent {i} envies {j}"
                );
            }
        }
        assert!(alloc.is_exhaustive(&c, 1e-3));
    }

    #[test]
    fn fair_variant_matches_ref_on_paper_example() {
        let alloc = MaxWelfare::with_fairness()
            .allocate(&paper_agents(), &paper_capacity())
            .unwrap();
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.1, "{alloc:?}");
        assert!((alloc.bundle(1).get(1) - 8.0).abs() < 0.1, "{alloc:?}");
    }

    #[test]
    fn four_agents_solve() {
        let agents = vec![
            CobbDouglas::new(0.8, vec![0.7, 0.3]).unwrap(),
            CobbDouglas::new(1.1, vec![0.3, 0.7]).unwrap(),
            CobbDouglas::new(0.9, vec![0.5, 0.5]).unwrap(),
            CobbDouglas::new(1.3, vec![0.9, 0.1]).unwrap(),
        ];
        let c = paper_capacity();
        for mech in [MaxWelfare::with_fairness(), MaxWelfare::without_fairness()] {
            let alloc = mech.allocate(&agents, &c).unwrap();
            assert_eq!(alloc.num_agents(), 4);
            assert!(alloc.is_exhaustive(&c, 1e-3), "{}", mech.name());
        }
    }

    #[test]
    fn warm_started_allocation_agrees_with_cold() {
        let agents = paper_agents();
        let c = paper_capacity();
        for mech in [MaxWelfare::with_fairness(), MaxWelfare::without_fairness()] {
            let (cold, hint) = mech.allocate_warm(&agents, &c, None).unwrap();
            let hint = hint.expect("GP mechanisms always return a hint");
            let (rewarmed, next) = mech.allocate_warm(&agents, &c, Some(&hint)).unwrap();
            assert!(next.is_some());
            for i in 0..2 {
                for r in 0..2 {
                    assert!(
                        (rewarmed.bundle(i).get(r) - cold.bundle(i).get(r)).abs() < 1e-3,
                        "{} agent {i} resource {r}",
                        mech.name()
                    );
                }
            }
        }
    }

    #[test]
    fn stale_hint_shape_falls_back_to_cold_start() {
        // A hint recorded for a two-agent population is unusable once a
        // third agent joins: the warm path must fall back to the cold
        // start and still produce the cold answer, bit for bit.
        let c = paper_capacity();
        let (_, hint) = MaxWelfare::with_fairness()
            .allocate_warm(&paper_agents(), &c, None)
            .unwrap();
        let mut agents = paper_agents();
        agents.push(CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap());
        let cold = MaxWelfare::with_fairness().allocate(&agents, &c).unwrap();
        let (stale, _) = MaxWelfare::with_fairness()
            .allocate_warm(&agents, &c, hint.as_ref())
            .unwrap();
        for i in 0..3 {
            for r in 0..2 {
                assert_eq!(
                    stale.bundle(i).get(r).to_bits(),
                    cold.bundle(i).get(r).to_bits()
                );
            }
        }
    }

    #[test]
    fn names_distinguish_variants() {
        assert_ne!(
            MaxWelfare::with_fairness().name(),
            MaxWelfare::without_fairness().name()
        );
        assert!(MaxWelfare::with_fairness().fairness());
        assert!(!MaxWelfare::without_fairness().fairness());
    }
}
