//! Allocation mechanisms.
//!
//! The paper's contribution is [`ProportionalElasticity`] (§4.1), the
//! closed-form mechanism that provably provides sharing incentives,
//! envy-freeness, Pareto efficiency and strategy-proofness in the large.
//! For the evaluation's comparisons (§4.5, §5.5) the crate also implements:
//!
//! - [`EqualShare`] — the static `C/N` division (the SI reference point);
//! - [`MaxWelfare`] — Nash-social-welfare maximization via geometric
//!   programming, with or without the game-theoretic fairness constraints;
//! - [`EqualSlowdown`] — max-min weighted utility, the conventional
//!   equal-slowdown objective of prior architecture work;
//! - [`CreditMechanism`] — an inner mechanism tilted by per-agent credit
//!   weights, the allocation half of cross-epoch credit fairness.

mod credit;
mod equal_share;
mod equal_slowdown;
mod max_welfare;
mod proportional_elasticity;

pub use credit::{CreditInner, CreditMechanism};
pub use equal_share::EqualShare;
pub use equal_slowdown::EqualSlowdown;
pub use max_welfare::MaxWelfare;
pub use proportional_elasticity::ProportionalElasticity;

pub use ref_solver::gp::GpWarmStart;

use crate::error::{CoreError, Result};
use crate::resource::{Allocation, Capacity};
use crate::utility::CobbDouglas;

/// A multi-resource allocation mechanism for Cobb-Douglas agents.
///
/// Implementations consume each agent's *reported* utility function and the
/// system capacities, and produce one bundle per agent.
pub trait Mechanism {
    /// Human-readable mechanism name (used in experiment output).
    fn name(&self) -> &str;

    /// Computes the allocation.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError::InvalidArgument`] for empty
    /// agent lists or dimension mismatches, and may propagate solver errors
    /// for optimization-based mechanisms.
    fn allocate(&self, agents: &[CobbDouglas], capacity: &Capacity) -> Result<Allocation>;

    /// Computes the allocation, optionally seeding the underlying
    /// optimizer from a previous optimum, and returns the hint to seed the
    /// *next* solve with.
    ///
    /// Optimization-backed mechanisms ([`MaxWelfare`], [`EqualSlowdown`])
    /// thread the hint into the interior-point solver, which re-enters the
    /// central path near where the last solve left off; an unusable hint
    /// (wrong shape after population churn, non-positive or non-finite
    /// values) silently falls back to the cold start. Closed-form
    /// mechanisms ignore the hint and return `None` — there is nothing to
    /// warm.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Mechanism::allocate`] returns: a usable warm
    /// hint never changes which inputs are accepted.
    fn allocate_warm(
        &self,
        agents: &[CobbDouglas],
        capacity: &Capacity,
        warm: Option<&GpWarmStart>,
    ) -> Result<(Allocation, Option<GpWarmStart>)> {
        let _ = warm;
        Ok((self.allocate(agents, capacity)?, None))
    }
}

/// Validates the common preconditions shared by all mechanisms.
pub(crate) fn validate_inputs(agents: &[CobbDouglas], capacity: &Capacity) -> Result<()> {
    if agents.is_empty() {
        return Err(CoreError::InvalidArgument(
            "need at least one agent".to_string(),
        ));
    }
    let r = capacity.num_resources();
    for (i, a) in agents.iter().enumerate() {
        if a.elasticities().len() != r {
            return Err(CoreError::InvalidArgument(format!(
                "agent {i} reports {} elasticities, capacity covers {r} resources",
                a.elasticities().len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Capacity;

    #[test]
    fn validate_inputs_rejects_mismatch() {
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        assert!(validate_inputs(&[], &c).is_err());
        let wrong = CobbDouglas::new(1.0, vec![1.0]).unwrap();
        assert!(validate_inputs(&[wrong], &c).is_err());
        let ok = CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap();
        assert!(validate_inputs(&[ok], &c).is_ok());
    }

    #[test]
    fn mechanisms_are_object_safe() {
        let ms: Vec<Box<dyn Mechanism>> = vec![
            Box::new(ProportionalElasticity),
            Box::new(EqualShare),
            Box::new(MaxWelfare::with_fairness()),
            Box::new(EqualSlowdown::new()),
        ];
        let names: Vec<&str> = ms.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 4);
        assert!(names.contains(&"proportional-elasticity"));
    }
}
