//! The REF proportional-elasticity mechanism (§4.1 of the paper).

use crate::error::Result;
use crate::mechanism::{validate_inputs, Mechanism};
use crate::resource::{Allocation, Bundle, Capacity};
use crate::utility::CobbDouglas;

/// The paper's closed-form fair mechanism.
///
/// Procedure (Eqs. 12–13): re-scale each agent's elasticities to sum to
/// one, then give each agent a share of every resource proportional to its
/// re-scaled elasticity:
///
/// ```text
/// x_ir = (a^_ir / sum_j a^_jr) * C_r
/// ```
///
/// The resulting allocation is the Nash bargaining solution and a
/// competitive equilibrium from equal incomes for the re-scaled utilities,
/// hence it satisfies sharing incentives, envy-freeness and Pareto
/// efficiency (§4.2), and strategy-proofness in the large (§4.3). Unlike
/// the geometric-programming mechanisms it is computationally trivial.
///
/// # Examples
///
/// The paper's running example: capacities (24 GB/s, 12 MB) and utilities
/// `u1 = x^0.6 y^0.4`, `u2 = x^0.2 y^0.8` give user 1 (18 GB/s, 4 MB) and
/// user 2 (6 GB/s, 8 MB).
///
/// ```
/// use ref_core::mechanism::{Mechanism, ProportionalElasticity};
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let alloc = ProportionalElasticity.allocate(&agents, &capacity)?;
/// assert!((alloc.bundle(0).get(0) - 18.0).abs() < 1e-12);
/// assert!((alloc.bundle(0).get(1) - 4.0).abs() < 1e-12);
/// assert!((alloc.bundle(1).get(0) - 6.0).abs() < 1e-12);
/// assert!((alloc.bundle(1).get(1) - 8.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProportionalElasticity;

impl Mechanism for ProportionalElasticity {
    fn name(&self) -> &str {
        "proportional-elasticity"
    }

    fn allocate(&self, agents: &[CobbDouglas], capacity: &Capacity) -> Result<Allocation> {
        validate_inputs(agents, capacity)?;
        let rescaled: Vec<CobbDouglas> = agents.iter().map(CobbDouglas::rescaled).collect();
        let r = capacity.num_resources();
        // Denominators: sum of re-scaled elasticities per resource.
        let mut denom = vec![0.0; r];
        for a in &rescaled {
            for (d, &e) in denom.iter_mut().zip(a.elasticities()) {
                *d += e;
            }
        }
        let bundles: Result<Vec<Bundle>> = rescaled
            .iter()
            .map(|a| {
                let q: Vec<f64> = (0..r)
                    .map(|res| {
                        if denom[res] > 0.0 {
                            a.elasticity(res) / denom[res] * capacity.get(res)
                        } else {
                            // No agent values this resource: split equally
                            // (any division is welfare-neutral).
                            capacity.get(res) / agents.len() as f64
                        }
                    })
                    .collect();
                Bundle::new(q)
            })
            .collect();
        Allocation::new(bundles?, capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::Utility;

    fn paper_agents() -> Vec<CobbDouglas> {
        vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ]
    }

    fn paper_capacity() -> Capacity {
        Capacity::new(vec![24.0, 12.0]).unwrap()
    }

    #[test]
    fn matches_paper_example() {
        let alloc = ProportionalElasticity
            .allocate(&paper_agents(), &paper_capacity())
            .unwrap();
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 1e-12);
        assert!((alloc.bundle(1).get(1) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn exhausts_capacity() {
        let alloc = ProportionalElasticity
            .allocate(&paper_agents(), &paper_capacity())
            .unwrap();
        assert!(alloc.is_exhaustive(&paper_capacity(), 1e-12));
    }

    #[test]
    fn unscaled_elasticities_are_rescaled_first() {
        // Scaling an agent's elasticities by a constant must not change the
        // allocation (the mechanism normalizes per agent).
        let raw = vec![
            CobbDouglas::new(2.0, vec![1.2, 0.8]).unwrap(), // = 2x (0.6, 0.4)
            CobbDouglas::new(0.5, vec![0.1, 0.4]).unwrap(), // = 0.5x (0.2, 0.8)
        ];
        let a = ProportionalElasticity
            .allocate(&raw, &paper_capacity())
            .unwrap();
        let b = ProportionalElasticity
            .allocate(&paper_agents(), &paper_capacity())
            .unwrap();
        for i in 0..2 {
            for r in 0..2 {
                assert!((a.bundle(i).get(r) - b.bundle(i).get(r)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn identical_agents_split_equally() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
            CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap(),
        ];
        let c = paper_capacity();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        for i in 0..3 {
            assert!((alloc.bundle(i).get(0) - 8.0).abs() < 1e-12);
            assert!((alloc.bundle(i).get(1) - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_agent_takes_everything() {
        let agents = vec![CobbDouglas::new(1.0, vec![0.7, 0.3]).unwrap()];
        let c = paper_capacity();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        assert_eq!(alloc.bundle(0).as_slice(), c.as_slice());
    }

    #[test]
    fn provides_sharing_incentives_in_example() {
        let agents = paper_agents();
        let c = paper_capacity();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        let equal = c.equal_split(2);
        for (i, u) in agents.iter().enumerate() {
            assert!(
                u.value(alloc.bundle(i)) >= u.value(&equal),
                "agent {i} prefers the equal split"
            );
        }
    }

    #[test]
    fn zero_elasticity_resource_for_all_agents_splits_equally() {
        // Neither agent values resource 1.
        let agents = vec![
            CobbDouglas::new(1.0, vec![1.0, 0.0]).unwrap(),
            CobbDouglas::new(1.0, vec![1.0, 0.0]).unwrap(),
        ];
        let c = paper_capacity();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        assert!((alloc.bundle(0).get(1) - 6.0).abs() < 1e-12);
        assert!((alloc.bundle(1).get(1) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn three_resources() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.5, 0.3, 0.2]).unwrap(),
            CobbDouglas::new(1.0, vec![0.1, 0.1, 0.8]).unwrap(),
        ];
        let c = Capacity::new(vec![10.0, 10.0, 10.0]).unwrap();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        // Resource 2: shares 0.2 / (0.2 + 0.8).
        assert!((alloc.bundle(0).get(2) - 2.0).abs() < 1e-12);
        assert!((alloc.bundle(1).get(2) - 8.0).abs() < 1e-12);
        assert!(alloc.is_exhaustive(&c, 1e-12));
    }
}
