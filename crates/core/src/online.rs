//! On-line profiling (§4.4): adapting a utility estimate at run time.
//!
//! "Without prior knowledge, a user assumes all resources contribute
//! equally to performance. Such a naive user reports utility
//! `u = x^0.5 y^0.5`. As the system allocates for this utility, the user
//! profiles software performance. And as profiles are accumulated for
//! varied allocations, the user adapts its utility function."
//!
//! [`OnlineEstimator`] implements exactly that loop: it starts from the
//! uniform prior, accumulates `(allocation, performance)` observations, and
//! refits the Cobb-Douglas elasticities by the same log-linear regression
//! the offline pipeline uses, as soon as — and whenever — the accumulated
//! design becomes informative.
//!
//! Refits are *incremental*: the estimator maintains the updatable
//! triangular factor of the log-design ([`ref_solver::update`]), so each
//! [`OnlineEstimator::observe`] costs `O(R^2)` — one Givens row append plus
//! a back-substitution — instead of refactorizing all `m` accumulated
//! observations (`O(m R^2)`). [`OnlineEstimator::with_window`] bounds the
//! design to a sliding window by downdating the oldest row as new ones
//! arrive, so long-lived agents track drifting workloads at constant cost.

use ref_solver::update::UpdatableLstsq;

use crate::error::{CoreError, Result};
use crate::fitting::FitPoint;
use crate::utility::CobbDouglas;

/// An adaptive Cobb-Douglas estimate built from run-time observations.
///
/// # Examples
///
/// ```
/// use ref_core::online::OnlineEstimator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut est = OnlineEstimator::new(2)?;
/// // Naive prior: equal elasticities.
/// assert_eq!(est.utility().elasticities(), &[0.5, 0.5]);
///
/// // Observe performance at varied allocations of a workload whose true
/// // utility is x^0.8 y^0.2.
/// for &(x, y) in &[(1.0, 1.0), (2.0, 1.0), (4.0, 2.0), (1.0, 4.0), (8.0, 2.0), (2.0, 8.0)] {
///     let perf = f64::powf(x, 0.8) * f64::powf(y, 0.2);
///     est.observe(vec![x, y], perf)?;
/// }
/// assert!((est.utility().elasticity(0) - 0.8).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineEstimator {
    num_resources: usize,
    observations: Vec<FitPoint>,
    /// Updatable triangular factor of the log-design `[1, ln x_1..ln x_R]`
    /// with response `ln u`; mirrors `observations` row for row.
    triangle: UpdatableLstsq,
    /// Sliding-window bound on the design, if any (see
    /// [`OnlineEstimator::with_window`]).
    window: Option<usize>,
    current: CobbDouglas,
    refits: usize,
    incremental_refits: usize,
    last_r_squared: Option<f64>,
    degenerate_refits: usize,
    consecutive_degenerate: usize,
}

impl OnlineEstimator {
    /// Creates an estimator with the naive uniform prior
    /// `u = prod_r x_r^{1/R}`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `num_resources == 0`.
    pub fn new(num_resources: usize) -> Result<OnlineEstimator> {
        if num_resources == 0 {
            return Err(CoreError::InvalidArgument(
                "need at least one resource".to_string(),
            ));
        }
        let prior = CobbDouglas::new(1.0, vec![1.0 / num_resources as f64; num_resources])?;
        Ok(OnlineEstimator {
            num_resources,
            observations: Vec::new(),
            triangle: UpdatableLstsq::new(num_resources + 1),
            window: None,
            current: prior,
            refits: 0,
            incremental_refits: 0,
            last_r_squared: None,
            degenerate_refits: 0,
            consecutive_degenerate: 0,
        })
    }

    /// Creates an estimator whose design is bounded to the most recent
    /// `window` observations.
    ///
    /// Each observation past the bound *downdates* the oldest row out of
    /// the triangular factor (LINPACK `dchdd`), so a long-lived agent
    /// tracks a drifting workload at `O(R^2)` per observation and constant
    /// memory instead of averaging over its entire history. When a
    /// downdate would destroy the factor's conditioning the estimator
    /// falls back to refactorizing the surviving rows from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `num_resources == 0` or
    /// the window is too small to ever fit (`window <= num_resources + 1`).
    pub fn with_window(num_resources: usize, window: usize) -> Result<OnlineEstimator> {
        let mut est = OnlineEstimator::new(num_resources)?;
        if window <= num_resources + 1 {
            return Err(CoreError::InvalidArgument(format!(
                "window of {window} observations can never fit {} + 1 parameters",
                num_resources + 1
            )));
        }
        est.window = Some(window);
        Ok(est)
    }

    /// Rebuilds an estimator by replaying recorded observations.
    ///
    /// Replay is deterministic: the same observation sequence produces the
    /// same refit count, the same fitted utility (bit for bit) and the same
    /// goodness of fit, which is what lets a restarted service resume a
    /// market mid-run from a serialized observation log.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `num_resources == 0` or any
    /// observation fails the checks [`OnlineEstimator::observe`] applies.
    pub fn from_observations(
        num_resources: usize,
        observations: &[FitPoint],
    ) -> Result<OnlineEstimator> {
        let mut est = OnlineEstimator::new(num_resources)?;
        for obs in observations {
            est.observe(obs.inputs.clone(), obs.output)?;
        }
        Ok(est)
    }

    /// The current utility estimate (the naive prior until the first
    /// successful refit).
    pub fn utility(&self) -> &CobbDouglas {
        &self.current
    }

    /// The accumulated observations, in arrival order.
    pub fn observations(&self) -> &[FitPoint] {
        &self.observations
    }

    /// Number of accumulated observations.
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Number of successful refits so far.
    pub fn refits(&self) -> usize {
        self.refits
    }

    /// Number of successful refits served by the incremental `O(R^2)`
    /// append path (as opposed to a from-scratch refactorization). With
    /// the current design every successful refit is incremental, so this
    /// equals [`OnlineEstimator::refits`]; it is tracked separately so the
    /// market can report fast-path coverage.
    pub fn incremental_refits(&self) -> usize {
        self.incremental_refits
    }

    /// The sliding-window bound, if this estimator was built with
    /// [`OnlineEstimator::with_window`].
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Goodness of fit of the latest refit, if any.
    pub fn r_squared(&self) -> Option<f64> {
        self.last_r_squared
    }

    /// Total refit attempts that produced a *degenerate* model — finite
    /// data whose regression yields a utility Cobb-Douglas cannot
    /// represent (e.g. an overflowed scale). Each one kept the previous
    /// estimate. Collinear designs are expected early on and are *not*
    /// counted here.
    pub fn degenerate_refits(&self) -> usize {
        self.degenerate_refits
    }

    /// Degenerate refits since the last successful one; a run of these
    /// means new data keeps failing to produce a usable model, which is
    /// what callers use to quarantine the estimate.
    pub fn consecutive_degenerate(&self) -> usize {
        self.consecutive_degenerate
    }

    /// Records a performance observation and refits if the data allows.
    ///
    /// Returns `true` if the utility estimate was updated. Refitting
    /// requires more observations than parameters and enough diversity in
    /// the observed allocations; until then (or whenever the design is
    /// collinear, e.g. the mechanism keeps granting the same bundle) the
    /// previous estimate is kept — the caller never loses a usable utility.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the allocation dimension
    /// differs from the estimator's, or quantities/performance are not
    /// strictly positive finite values.
    pub fn observe(&mut self, allocation: Vec<f64>, performance: f64) -> Result<bool> {
        if allocation.len() != self.num_resources {
            return Err(CoreError::InvalidArgument(format!(
                "observation covers {} resources, estimator expects {}",
                allocation.len(),
                self.num_resources
            )));
        }
        // Reject non-finite measurements up front: a NaN or infinite sample
        // must never reach the regression (where it would poison every
        // subsequent refit through the accumulated design).
        if !performance.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "performance observation must be finite, got {performance}"
            )));
        }
        if let Some(q) = allocation.iter().find(|q| !q.is_finite()) {
            return Err(CoreError::InvalidArgument(format!(
                "allocation quantities must be finite, got {q}"
            )));
        }
        let point = FitPoint::new(allocation, performance)?;
        self.triangle
            .append(&Self::log_row(&point), point.output.ln())
            .expect("validated observation rows are finite");
        self.observations.push(point);
        if let Some(window) = self.window {
            if self.observations.len() > window {
                let evicted = self.observations.remove(0);
                if self
                    .triangle
                    .downdate(&Self::log_row(&evicted), evicted.output.ln())
                    .is_err()
                {
                    // The factor is too close to singular to subtract the
                    // row stably; refactorize the surviving rows instead.
                    self.refactorize();
                }
            }
        }
        if self.observations.len() <= self.num_resources + 1 {
            return Ok(false);
        }
        let fit = match self.triangle.solve() {
            Ok(fit) => fit,
            // A collinear design is expected early on; keep the prior.
            Err(_) => return Ok(false),
        };
        // Post-process exactly as the batch pipeline
        // ([`crate::fitting::fit_cobb_douglas`]) does: exponentiate the
        // intercept, clamp negative elasticities, and substitute a tiny
        // uniform profile when every elasticity clamps to zero.
        let scale = fit.coefficients()[0].exp();
        let elasticities: Vec<f64> = fit.coefficients()[1..].iter().map(|a| a.max(0.0)).collect();
        let utility = if elasticities.iter().all(|a| *a == 0.0) {
            CobbDouglas::new(scale, vec![1e-9; self.num_resources])
        } else {
            CobbDouglas::new(scale, elasticities)
        };
        match utility {
            Ok(utility) => {
                self.current = utility;
                self.last_r_squared = Some(fit.r_squared());
                self.refits += 1;
                self.incremental_refits += 1;
                self.consecutive_degenerate = 0;
                Ok(true)
            }
            // A *degenerate* fit: individually valid points whose
            // aggregate regression produces an unusable model (e.g.
            // `exp(intercept)` overflowing the scale). Keep the last good
            // estimate and count it, instead of erroring — the point is
            // already in the log, so an error here would leave a log that
            // [`OnlineEstimator::from_observations`] cannot replay.
            Err(_) => {
                self.degenerate_refits += 1;
                self.consecutive_degenerate += 1;
                Ok(false)
            }
        }
    }

    /// The log-space design row for one observation: `[1, ln x_1..ln x_R]`.
    fn log_row(point: &FitPoint) -> Vec<f64> {
        let mut row = Vec::with_capacity(point.inputs.len() + 1);
        row.push(1.0);
        row.extend(point.inputs.iter().map(|x| x.ln()));
        row
    }

    /// Rebuilds the triangular factor from the surviving observations
    /// (used when a window downdate is refused for conditioning).
    fn refactorize(&mut self) {
        let mut triangle = UpdatableLstsq::new(self.num_resources + 1);
        for point in &self.observations {
            triangle
                .append(&Self::log_row(point), point.output.ln())
                .expect("previously accepted observations are finite");
        }
        self.triangle = triangle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{Mechanism, ProportionalElasticity};
    use crate::resource::Capacity;
    use crate::utility::Utility;

    #[test]
    fn starts_with_uniform_prior() {
        let est = OnlineEstimator::new(3).unwrap();
        for r in 0..3 {
            assert!((est.utility().elasticity(r) - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(est.num_observations(), 0);
        assert_eq!(est.refits(), 0);
        assert!(est.r_squared().is_none());
        assert!(OnlineEstimator::new(0).is_err());
    }

    #[test]
    fn converges_to_ground_truth() {
        let truth = CobbDouglas::new(0.7, vec![0.3, 0.5]).unwrap();
        let mut est = OnlineEstimator::new(2).unwrap();
        let mut updated_once = false;
        for i in 0..12_u32 {
            let x = 1.0 + (i % 4) as f64;
            let y = 0.5 + (i % 3) as f64;
            let perf = truth.value_slice(&[x, y]);
            updated_once |= est.observe(vec![x, y], perf).unwrap();
        }
        assert!(updated_once);
        assert!((est.utility().elasticity(0) - 0.3).abs() < 1e-9);
        assert!((est.utility().elasticity(1) - 0.5).abs() < 1e-9);
        assert!((est.utility().scale() - 0.7).abs() < 1e-9);
        assert!(est.r_squared().unwrap() > 0.999);
    }

    #[test]
    fn collinear_observations_keep_prior() {
        let mut est = OnlineEstimator::new(2).unwrap();
        // Same allocation every time: log-design is collinear.
        for _ in 0..10 {
            let updated = est.observe(vec![2.0, 2.0], 1.5).unwrap();
            assert!(!updated);
        }
        assert_eq!(est.utility().elasticities(), &[0.5, 0.5]);
        assert_eq!(est.refits(), 0);
    }

    #[test]
    fn validates_observations() {
        let mut est = OnlineEstimator::new(2).unwrap();
        assert!(est.observe(vec![1.0], 1.0).is_err());
        assert!(est.observe(vec![1.0, 0.0], 1.0).is_err());
        assert!(est.observe(vec![1.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn rejects_non_finite_observations_without_poisoning_state() {
        let mut est = OnlineEstimator::new(2).unwrap();
        // Seed some good data first.
        for i in 0..3_u32 {
            let x = 1.0 + f64::from(i);
            est.observe(vec![x, 2.0 * x], x).unwrap();
        }
        let before = est.clone();
        for bad_perf in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                est.observe(vec![1.0, 1.0], bad_perf),
                Err(CoreError::InvalidArgument(_))
            ));
        }
        for bad_alloc in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                est.observe(vec![bad_alloc, 1.0], 1.0),
                Err(CoreError::InvalidArgument(_))
            ));
        }
        // The rejected samples must leave the estimator untouched: same
        // observation count, same utility, and future refits still work.
        assert_eq!(est.num_observations(), before.num_observations());
        assert_eq!(
            est.utility().elasticities(),
            before.utility().elasticities()
        );
        for i in 3..8_u32 {
            let x = 1.0 + f64::from(i % 4);
            let y = 0.5 + f64::from(i % 3);
            est.observe(vec![x, y], x.powf(0.7) * y.powf(0.3)).unwrap();
        }
        assert!(est.refits() > 0, "regression must stay usable");
    }

    #[test]
    fn degenerate_fits_keep_last_good_estimate_and_stay_replayable() {
        // A family of observations that is individually valid (finite,
        // positive) but whose exact log-linear fit has intercept 800:
        // the fitted scale `exp(800)` overflows, so the fit is degenerate
        // even though every point passed validation.
        let huge = |x: f64, y: f64| (800.0 + 20.0 * x.ln() + 20.0 * y.ln()).exp();
        let pts = [(0.01, 0.01), (0.02, 0.01), (0.01, 0.03), (0.05, 0.02)];
        let mut est = OnlineEstimator::new(2).unwrap();
        for &(x, y) in &pts {
            assert!(huge(x, y).is_finite(), "({x},{y})");
            let updated = est.observe(vec![x, y], huge(x, y)).unwrap();
            assert!(!updated);
        }
        // The first fit attempt (4th point) is degenerate: the naive
        // prior survives and the failure is counted, not erred.
        assert_eq!(est.utility().elasticities(), &[0.5, 0.5]);
        assert_eq!(est.degenerate_refits(), 1);
        assert_eq!(est.consecutive_degenerate(), 1);
        for &(x, y) in &[(0.03, 0.04), (0.02, 0.05)] {
            assert!(!est.observe(vec![x, y], huge(x, y)).unwrap());
        }
        assert_eq!(est.degenerate_refits(), 3);
        assert_eq!(est.consecutive_degenerate(), 3);
        assert_eq!(est.num_observations(), 6);
        // Regression: the log must stay replayable with degenerate points
        // in it — `from_observations` used to propagate the fit error,
        // breaking snapshot restore of any agent that ever hit one.
        let replayed = OnlineEstimator::from_observations(2, est.observations()).unwrap();
        assert_eq!(replayed.degenerate_refits(), est.degenerate_refits());
        assert_eq!(replayed.consecutive_degenerate(), 3);
        assert_eq!(
            replayed.utility().elasticities(),
            est.utility().elasticities()
        );
        // Enough sane data pulls the blended fit back to a finite scale;
        // success clears the consecutive run but not the lifetime total.
        let mut fixed = false;
        for i in 0..24_u32 {
            let x = 1.0 + f64::from(i % 5);
            let y = 0.5 + f64::from(i % 4);
            if est.observe(vec![x, y], x.powf(0.7) * y.powf(0.3)).unwrap() {
                fixed = true;
                break;
            }
        }
        assert!(fixed, "blended design never produced a finite fit");
        assert_eq!(est.consecutive_degenerate(), 0);
        assert!(est.degenerate_refits() >= 3);
    }

    #[test]
    fn every_successful_refit_uses_the_incremental_path() {
        let truth = CobbDouglas::new(0.7, vec![0.3, 0.5]).unwrap();
        let mut est = OnlineEstimator::new(2).unwrap();
        for i in 0..12_u32 {
            let x = 1.0 + (i % 4) as f64;
            let y = 0.5 + (i % 3) as f64;
            est.observe(vec![x, y], truth.value_slice(&[x, y])).unwrap();
        }
        assert!(est.refits() > 0);
        assert_eq!(est.incremental_refits(), est.refits());
        assert_eq!(est.window(), None);
    }

    #[test]
    fn window_requires_room_for_the_parameters() {
        assert!(OnlineEstimator::with_window(2, 3).is_err());
        assert!(OnlineEstimator::with_window(0, 9).is_err());
        let est = OnlineEstimator::with_window(2, 4).unwrap();
        assert_eq!(est.window(), Some(4));
    }

    #[test]
    fn windowed_estimator_bounds_observations_and_matches_suffix_fit() {
        let truth = CobbDouglas::new(1.2, vec![0.6, 0.3]).unwrap();
        let window = 8;
        let mut bounded = OnlineEstimator::with_window(2, window).unwrap();
        let points: Vec<(f64, f64)> = (0..24_u32)
            .map(|i| (1.0 + (i % 5) as f64 * 1.3, 0.5 + (i % 4) as f64 * 0.9))
            .collect();
        for &(x, y) in &points {
            bounded
                .observe(vec![x, y], truth.value_slice(&[x, y]))
                .unwrap();
        }
        assert_eq!(bounded.num_observations(), window);
        // An estimator fed only the surviving suffix must land on the same
        // model (up to downdate round-off).
        let mut suffix = OnlineEstimator::new(2).unwrap();
        for &(x, y) in &points[points.len() - window..] {
            suffix
                .observe(vec![x, y], truth.value_slice(&[x, y]))
                .unwrap();
        }
        for r in 0..2 {
            assert!(
                (bounded.utility().elasticity(r) - suffix.utility().elasticity(r)).abs() < 1e-9
            );
        }
        assert!((bounded.utility().scale() - suffix.utility().scale()).abs() < 1e-9);
    }

    #[test]
    fn windowed_estimator_tracks_a_drifting_workload() {
        // The workload's true utility changes mid-run. The bounded
        // estimator forgets the old phase and locks on to the new one; an
        // unbounded estimator keeps averaging over both phases forever.
        let phase_a = CobbDouglas::new(1.0, vec![0.8, 0.1]).unwrap();
        let phase_b = CobbDouglas::new(1.0, vec![0.1, 0.8]).unwrap();
        let mut bounded = OnlineEstimator::with_window(2, 6).unwrap();
        let mut unbounded = OnlineEstimator::new(2).unwrap();
        let grid = |i: u32| (1.0 + (i % 4) as f64, 0.5 + (i % 3) as f64);
        for i in 0..12 {
            let (x, y) = grid(i);
            let perf = phase_a.value_slice(&[x, y]);
            bounded.observe(vec![x, y], perf).unwrap();
            unbounded.observe(vec![x, y], perf).unwrap();
        }
        for i in 12..24 {
            let (x, y) = grid(i);
            let perf = phase_b.value_slice(&[x, y]);
            bounded.observe(vec![x, y], perf).unwrap();
            unbounded.observe(vec![x, y], perf).unwrap();
        }
        // Once the window holds only phase-B points the fit is exact.
        assert!((bounded.utility().elasticity(1) - 0.8).abs() < 1e-9);
        // The unbounded estimator is stuck between the two phases.
        assert!((unbounded.utility().elasticity(1) - 0.8).abs() > 0.05);
    }

    #[test]
    fn replay_reconstructs_estimator_exactly() {
        let truth = CobbDouglas::new(0.9, vec![0.4, 0.6]).unwrap();
        let mut est = OnlineEstimator::new(2).unwrap();
        for i in 0..9_u32 {
            let x = 1.0 + f64::from(i % 4);
            let y = 0.5 + f64::from(i % 3);
            est.observe(vec![x, y], truth.value_slice(&[x, y])).unwrap();
        }
        let replayed = OnlineEstimator::from_observations(2, est.observations()).unwrap();
        assert_eq!(replayed.num_observations(), est.num_observations());
        assert_eq!(replayed.refits(), est.refits());
        assert_eq!(replayed.r_squared(), est.r_squared());
        // Bit-exact: replay runs the identical regression on identical data.
        assert_eq!(
            replayed.utility().elasticities(),
            est.utility().elasticities()
        );
        assert_eq!(
            replayed.utility().scale().to_bits(),
            est.utility().scale().to_bits()
        );
    }

    #[test]
    fn adaptive_allocation_loop_converges_to_true_ref_point() {
        // Closed loop: the system allocates by current estimates, each
        // agent observes its true performance (plus allocation jitter for
        // excitation), and the estimates converge so the allocation
        // approaches the REF point of the true utilities.
        let truths = [
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ];
        let capacity = Capacity::new(vec![24.0, 12.0]).unwrap();
        let mut estimators = [
            OnlineEstimator::new(2).unwrap(),
            OnlineEstimator::new(2).unwrap(),
        ];
        let mut final_alloc = None;
        for round in 0..30_u32 {
            let reported: Vec<CobbDouglas> =
                estimators.iter().map(|e| e.utility().clone()).collect();
            let alloc = ProportionalElasticity
                .allocate(&reported, &capacity)
                .unwrap();
            for (i, est) in estimators.iter_mut().enumerate() {
                // Deterministic excitation so the design gains rank.
                let jitter = 0.85 + 0.1 * ((round as f64 * 1.7 + i as f64).sin() + 1.0);
                let x = alloc.bundle(i).get(0) * jitter;
                let y = alloc.bundle(i).get(1) * (2.0 - jitter);
                let perf = truths[i].value_slice(&[x, y]);
                est.observe(vec![x, y], perf).unwrap();
            }
            final_alloc = Some(alloc);
        }
        let alloc = final_alloc.unwrap();
        // True REF point: (18, 4) / (6, 8).
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.5, "{alloc:?}");
        assert!((alloc.bundle(1).get(1) - 8.0).abs() < 0.5, "{alloc:?}");
    }
}
