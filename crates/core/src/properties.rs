//! Game-theoretic property checkers: sharing incentives, envy-freeness and
//! Pareto efficiency (§3 of the paper).
//!
//! These verify *any* allocation against a set of Cobb-Douglas agents —
//! they are how the evaluation demonstrates that equal slowdown violates SI
//! and EF while proportional elasticity satisfies all three (Figs. 10–12).

use std::fmt;

use crate::resource::{Allocation, Capacity};
use crate::utility::{CobbDouglas, Utility};

/// Relative tolerance used by [`FairnessReport::check`].
pub const DEFAULT_TOLERANCE: f64 = 1e-6;

/// A sharing-incentive violation: an agent that strictly prefers the equal
/// division to its allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiViolation {
    /// The violated agent.
    pub agent: usize,
    /// Utility of the agent's bundle.
    pub allocated_utility: f64,
    /// Utility of the equal division `C/N`.
    pub equal_split_utility: f64,
}

/// An envy edge: `envious` would rather have `envied`'s bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvyEdge {
    /// The agent who envies.
    pub envious: usize,
    /// The agent whose bundle is preferred.
    pub envied: usize,
    /// Utility of the envious agent's own bundle.
    pub own_utility: f64,
    /// Utility the envious agent would get from the other bundle.
    pub other_utility: f64,
}

/// Outcome of checking an allocation against SI, EF and PE.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Sharing-incentive violations (empty means SI holds).
    pub si_violations: Vec<SiViolation>,
    /// Envy edges (empty means EF holds).
    pub envy_edges: Vec<EnvyEdge>,
    /// Whether the allocation is Pareto efficient (tangent marginal rates
    /// of substitution and exhausted capacity).
    pub pareto_efficient: bool,
    /// Largest relative mismatch among pairwise marginal rates of
    /// substitution (0 for single-agent or single-resource systems).
    pub max_mrs_mismatch: f64,
}

impl FairnessReport {
    /// Whether sharing incentives hold.
    pub fn sharing_incentives(&self) -> bool {
        self.si_violations.is_empty()
    }

    /// Whether envy-freeness holds.
    pub fn envy_free(&self) -> bool {
        self.envy_edges.is_empty()
    }

    /// Whether the allocation is fair in the paper's sense (EF and PE) and
    /// additionally provides sharing incentives.
    pub fn is_fair_with_si(&self) -> bool {
        self.sharing_incentives() && self.envy_free() && self.pareto_efficient
    }

    /// Checks an allocation with [`DEFAULT_TOLERANCE`].
    ///
    /// # Panics
    ///
    /// Panics if `agents.len()` differs from the allocation's agent count
    /// or dimensions disagree with the capacity.
    pub fn check(
        agents: &[CobbDouglas],
        allocation: &Allocation,
        capacity: &Capacity,
    ) -> FairnessReport {
        FairnessReport::check_with_tolerance(agents, allocation, capacity, DEFAULT_TOLERANCE)
    }

    /// Checks an allocation with an explicit relative tolerance.
    ///
    /// The tolerance absorbs round-off from optimization-based mechanisms:
    /// a property counts as violated only when the gap exceeds `tol`
    /// relative to the compared utilities.
    ///
    /// # Panics
    ///
    /// Panics if `agents.len()` differs from the allocation's agent count.
    pub fn check_with_tolerance(
        agents: &[CobbDouglas],
        allocation: &Allocation,
        capacity: &Capacity,
        tol: f64,
    ) -> FairnessReport {
        assert_eq!(
            agents.len(),
            allocation.num_agents(),
            "one utility per agent"
        );
        let n = agents.len();
        let equal = capacity.equal_split(n);

        let mut si_violations = Vec::new();
        for (i, u) in agents.iter().enumerate() {
            let own = u.value(allocation.bundle(i));
            let split = u.value(&equal);
            if own < split * (1.0 - tol) {
                si_violations.push(SiViolation {
                    agent: i,
                    allocated_utility: own,
                    equal_split_utility: split,
                });
            }
        }

        let mut envy_edges = Vec::new();
        for (i, u) in agents.iter().enumerate() {
            let own = u.value(allocation.bundle(i));
            for j in 0..n {
                if i == j {
                    continue;
                }
                let other = u.value(allocation.bundle(j));
                if own < other * (1.0 - tol) {
                    envy_edges.push(EnvyEdge {
                        envious: i,
                        envied: j,
                        own_utility: own,
                        other_utility: other,
                    });
                }
            }
        }

        let max_mrs_mismatch = max_mrs_mismatch(agents, allocation);
        let pareto_efficient =
            max_mrs_mismatch <= tol.max(1e-3) && allocation.is_exhaustive(capacity, tol.max(1e-6));

        FairnessReport {
            si_violations,
            envy_edges,
            pareto_efficient,
            max_mrs_mismatch,
        }
    }
}

impl fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SI {} | EF {} | PE {}",
            if self.sharing_incentives() {
                "ok".to_string()
            } else {
                format!("violated by {} agent(s)", self.si_violations.len())
            },
            if self.envy_free() {
                "ok".to_string()
            } else {
                format!("{} envy edge(s)", self.envy_edges.len())
            },
            if self.pareto_efficient {
                "ok".to_string()
            } else {
                format!("violated (MRS mismatch {:.2e})", self.max_mrs_mismatch)
            }
        )
    }
}

/// Largest relative disagreement between any two agents' marginal rates of
/// substitution, over all resource pairs (the PE tangency condition,
/// Eq. 10). Pairs with undefined MRS (zero elasticity or zero holdings)
/// are skipped.
pub fn max_mrs_mismatch(agents: &[CobbDouglas], allocation: &Allocation) -> f64 {
    let n = agents.len();
    let r_count = allocation.num_resources();
    let mut worst = 0.0_f64;
    for r in 0..r_count {
        for s in (r + 1)..r_count {
            let rates: Vec<f64> = (0..n)
                .filter_map(|i| agents[i].mrs(allocation.bundle(i), r, s).ok())
                .filter(|m| m.is_finite() && *m > 0.0)
                .collect();
            if rates.len() < 2 {
                continue;
            }
            let max = rates.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
            let min = rates.iter().fold(f64::INFINITY, |m, &v| m.min(v));
            worst = worst.max(max / min - 1.0);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{EqualShare, Mechanism, ProportionalElasticity};
    use crate::resource::Bundle;

    fn fixture() -> (Vec<CobbDouglas>, Capacity) {
        (
            vec![
                CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
                CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
            ],
            Capacity::new(vec![24.0, 12.0]).unwrap(),
        )
    }

    #[test]
    fn ref_allocation_passes_all_properties() {
        let (agents, c) = fixture();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert!(report.sharing_incentives(), "{report:?}");
        assert!(report.envy_free(), "{report:?}");
        assert!(report.pareto_efficient, "{report:?}");
        assert!(report.is_fair_with_si());
    }

    #[test]
    fn equal_split_is_si_ef_but_not_pe() {
        let (agents, c) = fixture();
        let alloc = EqualShare.allocate(&agents, &c).unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert!(report.sharing_incentives());
        assert!(report.envy_free());
        // Heterogeneous agents at the midpoint have unequal MRS.
        assert!(!report.pareto_efficient, "{report:?}");
        assert!(report.max_mrs_mismatch > 0.1);
    }

    #[test]
    fn lopsided_allocation_violates_si_and_ef() {
        let (agents, c) = fixture();
        // Agent 0 gets almost everything.
        let alloc = Allocation::new(
            vec![
                Bundle::new(vec![23.0, 11.0]).unwrap(),
                Bundle::new(vec![1.0, 1.0]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert_eq!(report.si_violations.len(), 1);
        assert_eq!(report.si_violations[0].agent, 1);
        assert_eq!(report.envy_edges.len(), 1);
        assert_eq!(report.envy_edges[0].envious, 1);
        assert_eq!(report.envy_edges[0].envied, 0);
        assert!(!report.is_fair_with_si());
    }

    #[test]
    fn wasted_capacity_is_not_pareto_efficient() {
        let (agents, c) = fixture();
        // Tangent MRS (both agents hold proportional bundles) but only half
        // the machine handed out.
        let alloc = Allocation::new(
            vec![
                Bundle::new(vec![9.0, 2.0]).unwrap(),
                Bundle::new(vec![3.0, 4.0]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert!(!report.pareto_efficient);
    }

    #[test]
    fn tolerance_absorbs_round_off() {
        let (agents, c) = fixture();
        // REF allocation with a 1e-7 perturbation.
        let alloc = Allocation::new(
            vec![
                Bundle::new(vec![18.0 - 1e-7, 4.0]).unwrap(),
                Bundle::new(vec![6.0, 8.0 - 1e-7]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        let report = FairnessReport::check_with_tolerance(&agents, &alloc, &c, 1e-4);
        assert!(report.is_fair_with_si());
    }

    #[test]
    fn corner_allocations_are_envy_free_but_useless() {
        // Paper §3.2: giving all of one resource to each agent yields zero
        // utility for both, hence no envy.
        let (agents, c) = fixture();
        let alloc = Allocation::new(
            vec![
                Bundle::new(vec![24.0, 0.0]).unwrap(),
                Bundle::new(vec![0.0, 12.0]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert!(report.envy_free());
        // But both agents strictly prefer the equal split: SI fails.
        assert_eq!(report.si_violations.len(), 2);
    }

    #[test]
    fn display_summarizes_verdicts() {
        let (agents, c) = fixture();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert_eq!(report.to_string(), "SI ok | EF ok | PE ok");
        let lopsided = Allocation::new(
            vec![
                Bundle::new(vec![23.0, 11.0]).unwrap(),
                Bundle::new(vec![1.0, 1.0]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        let report = FairnessReport::check(&agents, &lopsided, &c);
        assert!(report.to_string().contains("violated"));
        assert!(report.to_string().contains("envy"));
    }

    #[test]
    fn single_agent_always_fair_when_given_everything() {
        let agents = vec![CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap()];
        let c = Capacity::new(vec![10.0, 10.0]).unwrap();
        let alloc = Allocation::new(vec![c.as_bundle()], &c).unwrap();
        let report = FairnessReport::check(&agents, &alloc, &c);
        assert!(report.is_fair_with_si());
        assert_eq!(report.max_mrs_mismatch, 0.0);
    }
}
