//! Resource bundles, capacities and allocations.
//!
//! The paper's model (§3): a system has `R` divisible resources with total
//! capacities `C = (C_1, ..., C_R)`; an allocation gives agent `i` a bundle
//! `x_i = (x_i1, ..., x_iR)`. These types carry the invariants the
//! mechanisms rely on (positive capacities, non-negative bundles, matching
//! dimensions).

use crate::error::{CoreError, Result};

/// A bundle of resource quantities held by one agent.
///
/// # Examples
///
/// ```
/// use ref_core::resource::Bundle;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let b = Bundle::new(vec![18.0, 4.0])?;
/// assert_eq!(b.get(0), 18.0);
/// assert_eq!(b.num_resources(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bundle(Vec<f64>);

impl Bundle {
    /// Creates a bundle from per-resource quantities.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `quantities` is empty or
    /// contains a negative or non-finite entry.
    pub fn new(quantities: Vec<f64>) -> Result<Bundle> {
        if quantities.is_empty() {
            return Err(CoreError::InvalidArgument(
                "bundle must cover at least one resource".to_string(),
            ));
        }
        if let Some(q) = quantities.iter().find(|q| !(q.is_finite() && **q >= 0.0)) {
            return Err(CoreError::InvalidArgument(format!(
                "bundle quantities must be finite and non-negative, got {q}"
            )));
        }
        Ok(Bundle(quantities))
    }

    /// Quantity of resource `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn get(&self, r: usize) -> f64 {
        self.0[r]
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.0.len()
    }

    /// Quantities as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

impl AsRef<[f64]> for Bundle {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

/// Total system capacities, one per resource.
///
/// # Examples
///
/// The paper's running example: 24 GB/s of bandwidth and 12 MB of cache.
///
/// ```
/// use ref_core::resource::Capacity;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = Capacity::new(vec![24.0, 12.0])?;
/// let split = c.equal_split(2);
/// assert_eq!(split.as_slice(), &[12.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capacity(Vec<f64>);

impl Capacity {
    /// Creates a capacity vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `totals` is empty or any
    /// entry is not strictly positive and finite.
    pub fn new(totals: Vec<f64>) -> Result<Capacity> {
        if totals.is_empty() {
            return Err(CoreError::InvalidArgument(
                "capacity must cover at least one resource".to_string(),
            ));
        }
        if let Some(t) = totals.iter().find(|t| !(t.is_finite() && **t > 0.0)) {
            return Err(CoreError::InvalidArgument(format!(
                "capacities must be finite and positive, got {t}"
            )));
        }
        Ok(Capacity(totals))
    }

    /// Capacity of resource `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn get(&self, r: usize) -> f64 {
        self.0[r]
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.0.len()
    }

    /// Capacities as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// The equal-division bundle `C / n` (the sharing-incentive reference
    /// point, Eq. 3 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn equal_split(&self, n: usize) -> Bundle {
        assert!(n > 0, "cannot split among zero agents");
        Bundle(self.0.iter().map(|c| c / n as f64).collect())
    }

    /// The whole machine as a bundle (used for weighted utility `u(C)`).
    pub fn as_bundle(&self) -> Bundle {
        Bundle(self.0.clone())
    }
}

impl AsRef<[f64]> for Capacity {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

/// An allocation: one bundle per agent over a shared capacity.
///
/// # Examples
///
/// ```
/// use ref_core::resource::{Allocation, Bundle, Capacity};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let alloc = Allocation::new(
///     vec![Bundle::new(vec![18.0, 4.0])?, Bundle::new(vec![6.0, 8.0])?],
///     &capacity,
/// )?;
/// assert_eq!(alloc.num_agents(), 2);
/// assert!(alloc.is_exhaustive(&capacity, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    bundles: Vec<Bundle>,
}

impl Allocation {
    /// Creates an allocation, checking dimensions and capacity feasibility.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if there are no agents, any
    /// bundle's dimension differs from the capacity's, or total usage of a
    /// resource exceeds capacity beyond round-off (`1e-9` relative).
    pub fn new(bundles: Vec<Bundle>, capacity: &Capacity) -> Result<Allocation> {
        if bundles.is_empty() {
            return Err(CoreError::InvalidArgument(
                "allocation needs at least one agent".to_string(),
            ));
        }
        let r = capacity.num_resources();
        for (i, b) in bundles.iter().enumerate() {
            if b.num_resources() != r {
                return Err(CoreError::InvalidArgument(format!(
                    "bundle {i} covers {} resources, capacity covers {r}",
                    b.num_resources()
                )));
            }
        }
        for res in 0..r {
            let used: f64 = bundles.iter().map(|b| b.get(res)).sum();
            let cap = capacity.get(res);
            if used > cap * (1.0 + 1e-9) {
                return Err(CoreError::InvalidArgument(format!(
                    "resource {res} over-allocated: {used} > {cap}"
                )));
            }
        }
        Ok(Allocation { bundles })
    }

    /// The bundle of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bundle(&self, i: usize) -> &Bundle {
        &self.bundles[i]
    }

    /// All bundles in agent order.
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.bundles.len()
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.bundles[0].num_resources()
    }

    /// Each agent's share of each resource as a fraction of capacity,
    /// `shares[i][r] = x_ir / C_r`.
    pub fn shares(&self, capacity: &Capacity) -> Vec<Vec<f64>> {
        self.bundles
            .iter()
            .map(|b| {
                (0..b.num_resources())
                    .map(|r| b.get(r) / capacity.get(r))
                    .collect()
            })
            .collect()
    }

    /// Whether every resource is fully allocated within `tol` relative
    /// slack (a necessary condition for Pareto efficiency under strictly
    /// monotone utilities).
    pub fn is_exhaustive(&self, capacity: &Capacity, tol: f64) -> bool {
        (0..self.num_resources()).all(|r| {
            let used: f64 = self.bundles.iter().map(|b| b.get(r)).sum();
            used >= capacity.get(r) * (1.0 - tol)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_validation() {
        assert!(Bundle::new(vec![]).is_err());
        assert!(Bundle::new(vec![-1.0]).is_err());
        assert!(Bundle::new(vec![f64::NAN]).is_err());
        assert!(Bundle::new(vec![0.0, 1.0]).is_ok());
    }

    #[test]
    fn capacity_validation() {
        assert!(Capacity::new(vec![]).is_err());
        assert!(Capacity::new(vec![0.0]).is_err());
        assert!(Capacity::new(vec![f64::INFINITY]).is_err());
        assert!(Capacity::new(vec![24.0, 12.0]).is_ok());
    }

    #[test]
    fn equal_split_divides() {
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        assert_eq!(c.equal_split(4).as_slice(), &[6.0, 3.0]);
        assert_eq!(c.as_bundle().as_slice(), &[24.0, 12.0]);
    }

    #[test]
    fn allocation_rejects_overcommit() {
        let c = Capacity::new(vec![10.0]).unwrap();
        let over = Allocation::new(
            vec![
                Bundle::new(vec![6.0]).unwrap(),
                Bundle::new(vec![5.0]).unwrap(),
            ],
            &c,
        );
        assert!(over.is_err());
    }

    #[test]
    fn allocation_rejects_dimension_mismatch() {
        let c = Capacity::new(vec![10.0, 10.0]).unwrap();
        let bad = Allocation::new(vec![Bundle::new(vec![1.0]).unwrap()], &c);
        assert!(bad.is_err());
    }

    #[test]
    fn allocation_allows_slack_and_reports_it() {
        let c = Capacity::new(vec![10.0]).unwrap();
        let a = Allocation::new(vec![Bundle::new(vec![4.0]).unwrap()], &c).unwrap();
        assert!(!a.is_exhaustive(&c, 1e-9));
        let b = Allocation::new(vec![Bundle::new(vec![10.0]).unwrap()], &c).unwrap();
        assert!(b.is_exhaustive(&c, 1e-9));
    }

    #[test]
    fn shares_normalize_by_capacity() {
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let a = Allocation::new(
            vec![
                Bundle::new(vec![18.0, 4.0]).unwrap(),
                Bundle::new(vec![6.0, 8.0]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        let s = a.shares(&c);
        assert!((s[0][0] - 0.75).abs() < 1e-12);
        assert!((s[1][1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn round_off_tolerated() {
        let c = Capacity::new(vec![1.0]).unwrap();
        let a = Allocation::new(vec![Bundle::new(vec![1.0 + 1e-12]).unwrap()], &c);
        assert!(a.is_ok());
    }
}
