//! Strategy-proofness in the large (§4.3 and Appendix A).
//!
//! Under proportional elasticity, a strategic agent who knows everyone
//! else's reports could mis-report elasticities `a'` to maximize its true
//! utility (Eq. 15). This module computes that best response numerically
//! and measures the gain from lying. The paper proves the gain vanishes as
//! the sum of other agents' elasticities grows; the
//! [`max_gain_from_lying`] experiment reproduces that trend and shows tens of
//! agents suffice in practice.

use crate::error::{CoreError, Result};
use crate::resource::Capacity;
use crate::utility::CobbDouglas;

/// Outcome of a best-response analysis for one strategic agent.
#[derive(Debug, Clone, PartialEq)]
pub struct LyingGain {
    /// The utility-maximizing (possibly dishonest) report, on the simplex.
    pub best_report: Vec<f64>,
    /// True utility when reporting truthfully.
    pub truthful_utility: f64,
    /// True utility under the best response.
    pub best_utility: f64,
}

impl LyingGain {
    /// Relative utility gain from lying, `best / truthful - 1`.
    pub fn relative_gain(&self) -> f64 {
        self.best_utility / self.truthful_utility - 1.0
    }

    /// Largest absolute deviation of the best report from the truthful
    /// (re-scaled) elasticities.
    pub fn report_deviation(&self, truthful: &[f64]) -> f64 {
        self.best_report
            .iter()
            .zip(truthful)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// True utility of agent `i` when it reports `report` and the sums of the
/// other agents' (re-scaled) elasticities are `others` (Eq. 15's inner
/// expression):
///
/// ```text
/// u(report) = prod_r ( report_r / (report_r + others_r) * C_r )^{alpha_r}
/// ```
fn utility_of_report(report: &[f64], truth: &[f64], others: &[f64], capacity: &[f64]) -> f64 {
    report
        .iter()
        .zip(others)
        .zip(capacity)
        .zip(truth)
        .map(|(((rep, oth), cap), tru)| (rep / (rep + oth) * cap).powf(*tru))
        .product()
}

/// Projects a vector onto the probability simplex (Duchi et al. algorithm),
/// with a small floor to keep reports strictly positive.
fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    const FLOOR: f64 = 1e-9;
    let n = v.len();
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite reports"));
    let mut cum = 0.0;
    let mut theta = 0.0;
    for (k, &s) in sorted.iter().enumerate() {
        cum += s;
        let candidate = (cum - 1.0) / (k + 1) as f64;
        if s - candidate > 0.0 {
            theta = candidate;
        }
    }
    let mut p: Vec<f64> = v.iter().map(|x| (x - theta).max(FLOOR)).collect();
    let total: f64 = p.iter().sum();
    for x in &mut p {
        *x /= total;
    }
    let _ = n;
    p
}

/// Computes the best response of a strategic agent by projected gradient
/// ascent on the simplex of reports.
///
/// `truthful` are the agent's true re-scaled elasticities (summing to one),
/// `others[r]` is the sum of all other agents' re-scaled elasticities for
/// resource `r`, and `capacity` the totals.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] on dimension mismatches, empty
/// input, or if `truthful` does not lie on the simplex.
///
/// # Examples
///
/// With many competitors, lying does not pay (SPL):
///
/// ```
/// use ref_core::spl::best_response;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let truthful = [0.7, 0.3];
/// let others = [20.0, 20.0]; // large system
/// let gain = best_response(&truthful, &others, &[24.0, 12.0])?;
/// assert!(gain.relative_gain() < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn best_response(truthful: &[f64], others: &[f64], capacity: &[f64]) -> Result<LyingGain> {
    let r = truthful.len();
    if r == 0 || others.len() != r || capacity.len() != r {
        return Err(CoreError::InvalidArgument(
            "truthful, others and capacity must share a nonzero dimension".to_string(),
        ));
    }
    let sum: f64 = truthful.iter().sum();
    if (sum - 1.0).abs() > 1e-6 || truthful.iter().any(|a| *a < 0.0) {
        return Err(CoreError::InvalidArgument(
            "truthful elasticities must lie on the simplex".to_string(),
        ));
    }
    if others.iter().any(|o| !(o.is_finite() && *o >= 0.0))
        || capacity.iter().any(|c| !(c.is_finite() && *c > 0.0))
    {
        return Err(CoreError::InvalidArgument(
            "others must be non-negative and capacities positive".to_string(),
        ));
    }

    // Ascend log-utility: numerically gentler, same maximizer.
    // d/d rep_r log u = truth_r * others_r / (rep_r * (rep_r + others_r)).
    let truthful_utility = utility_of_report(truthful, truthful, others, capacity);
    let mut report = project_to_simplex(truthful);
    let mut best = report.clone();
    let mut best_value = utility_of_report(&report, truthful, others, capacity);
    let mut step = 0.1;
    for _ in 0..2_000 {
        let grad: Vec<f64> = report
            .iter()
            .zip(others)
            .zip(truthful)
            .map(|((rep, oth), tru)| {
                if *tru == 0.0 {
                    0.0
                } else {
                    tru * oth / (rep * (rep + oth))
                }
            })
            .collect();
        let stepped: Vec<f64> = report
            .iter()
            .zip(&grad)
            .map(|(rep, g)| rep + step * g)
            .collect();
        let candidate = project_to_simplex(&stepped);
        let value = utility_of_report(&candidate, truthful, others, capacity);
        if value > best_value {
            best_value = value;
            best = candidate.clone();
            report = candidate;
        } else {
            step *= 0.5;
            if step < 1e-12 {
                break;
            }
        }
    }
    Ok(LyingGain {
        best_report: best,
        truthful_utility,
        best_utility: best_value.max(truthful_utility),
    })
}

/// Measures the worst relative gain from lying across `num_agents` agents
/// whose re-scaled elasticities are given row-wise.
///
/// Used to reproduce the paper's SPL experiment (64 agents with uniform
/// random elasticities): the returned gain should be negligible for large
/// systems and appreciable for very small ones.
///
/// # Errors
///
/// Propagates errors from [`best_response`].
pub fn max_gain_from_lying(elasticities: &[Vec<f64>], capacity: &Capacity) -> Result<f64> {
    if elasticities.is_empty() {
        return Err(CoreError::InvalidArgument(
            "need at least one agent".to_string(),
        ));
    }
    let r = capacity.num_resources();
    let mut totals = vec![0.0; r];
    for a in elasticities {
        if a.len() != r {
            return Err(CoreError::InvalidArgument(
                "elasticity rows must match the capacity dimension".to_string(),
            ));
        }
        for (t, v) in totals.iter_mut().zip(a) {
            *t += v;
        }
    }
    let mut worst = 0.0_f64;
    for a in elasticities {
        let others: Vec<f64> = totals.iter().zip(a).map(|(t, v)| t - v).collect();
        let gain = best_response(a, &others, capacity.as_slice())?;
        worst = worst.max(gain.relative_gain());
    }
    Ok(worst)
}

/// Re-scales raw per-agent elasticities onto the simplex (Eq. 12), a
/// convenience for building SPL experiments from fitted utilities.
pub fn rescaled_rows(agents: &[CobbDouglas]) -> Vec<Vec<f64>> {
    agents
        .iter()
        .map(|a| a.rescaled().elasticities().to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_lands_on_simplex() {
        for v in [
            vec![0.5, 0.5],
            vec![2.0, -1.0],
            vec![0.1, 0.2, 0.3],
            vec![-5.0, -6.0],
        ] {
            let p = project_to_simplex(&v);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{v:?} -> {p:?}");
            assert!(p.iter().all(|x| *x > 0.0));
        }
    }

    #[test]
    fn projection_is_identity_on_simplex_points() {
        let p = project_to_simplex(&[0.3, 0.7]);
        assert!((p[0] - 0.3).abs() < 1e-9);
        assert!((p[1] - 0.7).abs() < 1e-9);
    }

    #[test]
    fn two_agent_system_rewards_lying() {
        // With a single competitor, the strategic agent can gain by
        // flattening its report toward the contested resource.
        let gain = best_response(&[0.9, 0.1], &[0.5, 0.5], &[24.0, 12.0]).unwrap();
        assert!(gain.relative_gain() > 0.01, "{}", gain.relative_gain());
        assert!(gain.report_deviation(&[0.9, 0.1]) > 0.05);
    }

    #[test]
    fn large_system_suppresses_lying() {
        let gain = best_response(&[0.9, 0.1], &[30.0, 30.0], &[24.0, 12.0]).unwrap();
        assert!(gain.relative_gain() < 1e-3, "{}", gain.relative_gain());
        assert!(gain.report_deviation(&[0.9, 0.1]) < 0.2);
    }

    #[test]
    fn gain_shrinks_monotonically_with_system_size() {
        let mut last = f64::INFINITY;
        for n in [1.0, 4.0, 16.0, 64.0] {
            let gain = best_response(&[0.7, 0.3], &[n * 0.5, n * 0.5], &[24.0, 12.0])
                .unwrap()
                .relative_gain();
            assert!(gain <= last + 1e-9, "gain {gain} after {last}");
            last = gain;
        }
    }

    #[test]
    fn max_gain_over_population() {
        let rows: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let a = 0.1 + 0.8 * (i as f64 / 31.0);
                vec![a, 1.0 - a]
            })
            .collect();
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let worst = max_gain_from_lying(&rows, &c).unwrap();
        assert!(worst < 0.01, "worst gain {worst}");
    }

    #[test]
    fn input_validation() {
        assert!(best_response(&[], &[], &[]).is_err());
        assert!(best_response(&[0.5, 0.6], &[1.0, 1.0], &[1.0, 1.0]).is_err());
        assert!(best_response(&[0.5, 0.5], &[1.0], &[1.0, 1.0]).is_err());
        assert!(best_response(&[0.5, 0.5], &[1.0, 1.0], &[0.0, 1.0]).is_err());
        let c = Capacity::new(vec![1.0]).unwrap();
        assert!(max_gain_from_lying(&[], &c).is_err());
        assert!(max_gain_from_lying(&[vec![0.5, 0.5]], &c).is_err());
    }

    #[test]
    fn rescaled_rows_sum_to_one() {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.3, 0.9]).unwrap(),
            CobbDouglas::new(2.0, vec![1.0, 1.0]).unwrap(),
        ];
        for row in rescaled_rows(&agents) {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
