//! Cobb-Douglas utility functions (Eq. 1 of the paper).

use crate::error::{CoreError, Result};
use crate::resource::Bundle;
use crate::utility::Utility;

/// A Cobb-Douglas utility `u(x) = a0 * prod_r x_r^{a_r}`.
///
/// The exponents `a_r` are the agent's *resource elasticities*: if
/// `a_r > a_s` the agent benefits more from resource `r` than from `s`.
/// [`rescaled`](CobbDouglas::rescaled) normalizes them to sum to one
/// (Eq. 12), which makes the function homogeneous of degree one — the
/// property the proportional-elasticity mechanism's fairness proof relies
/// on (§4.2).
///
/// # Examples
///
/// The paper's running example, user 1: `u1 = x^0.6 y^0.4`.
///
/// ```
/// use ref_core::resource::Bundle;
/// use ref_core::utility::{CobbDouglas, Utility};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u1 = CobbDouglas::new(1.0, vec![0.6, 0.4])?;
/// let b = Bundle::new(vec![18.0, 4.0])?;
/// assert!(u1.value(&b) > 0.0);
/// // Marginal rate of substitution, Eq. 9: (0.6/0.4) * (y/x).
/// let mrs = u1.mrs(&b, 0, 1)?;
/// assert!((mrs - 1.5 * (4.0 / 18.0)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglas {
    scale: f64,
    elasticities: Vec<f64>,
}

impl CobbDouglas {
    /// Creates `a0 * prod_r x_r^{a_r}`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `scale` is not strictly
    /// positive and finite, `elasticities` is empty, any elasticity is
    /// negative or non-finite, or all elasticities are zero.
    pub fn new(scale: f64, elasticities: Vec<f64>) -> Result<CobbDouglas> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(CoreError::InvalidArgument(format!(
                "scale must be positive and finite, got {scale}"
            )));
        }
        if elasticities.is_empty() {
            return Err(CoreError::InvalidArgument(
                "utility needs at least one resource".to_string(),
            ));
        }
        if let Some(a) = elasticities.iter().find(|a| !(a.is_finite() && **a >= 0.0)) {
            return Err(CoreError::InvalidArgument(format!(
                "elasticities must be finite and non-negative, got {a}"
            )));
        }
        if elasticities.iter().all(|a| *a == 0.0) {
            return Err(CoreError::InvalidArgument(
                "at least one elasticity must be positive".to_string(),
            ));
        }
        Ok(CobbDouglas {
            scale,
            elasticities,
        })
    }

    /// Creates a utility with elasticities already summing to one.
    ///
    /// # Errors
    ///
    /// As [`CobbDouglas::new`], plus [`CoreError::InvalidArgument`] if the
    /// elasticities do not sum to 1 within `1e-9`.
    pub fn normalized(elasticities: Vec<f64>) -> Result<CobbDouglas> {
        let sum: f64 = elasticities.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(CoreError::InvalidArgument(format!(
                "normalized elasticities must sum to 1, got {sum}"
            )));
        }
        CobbDouglas::new(1.0, elasticities)
    }

    /// The multiplicative scale `a0`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The raw elasticities.
    pub fn elasticities(&self) -> &[f64] {
        &self.elasticities
    }

    /// Elasticity of resource `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn elasticity(&self, r: usize) -> f64 {
        self.elasticities[r]
    }

    /// Sum of elasticities (degree of homogeneity).
    pub fn elasticity_sum(&self) -> f64 {
        self.elasticities.iter().sum()
    }

    /// The re-scaled utility of Eq. 12: elasticities divided by their sum
    /// (so they sum to one) and unit scale.
    ///
    /// The re-scaled function is homogeneous of degree one, i.e.
    /// `u(k x) = k u(x)`.
    pub fn rescaled(&self) -> CobbDouglas {
        let sum = self.elasticity_sum();
        CobbDouglas {
            scale: 1.0,
            elasticities: self.elasticities.iter().map(|a| a / sum).collect(),
        }
    }

    /// Whether the elasticities sum to one within `tol`.
    pub fn is_homogeneous_degree_one(&self, tol: f64) -> bool {
        (self.elasticity_sum() - 1.0).abs() <= tol
    }

    /// Marginal rate of substitution of resource `r` for resource `s` at
    /// `x` (Eq. 9): `(a_r / a_s) * (x_s / x_r)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `r` or `s` is out of
    /// range, `a_s` is zero, or `x_r` is zero.
    pub fn mrs(&self, x: &Bundle, r: usize, s: usize) -> Result<f64> {
        let n = self.elasticities.len();
        if r >= n || s >= n || x.num_resources() != n {
            return Err(CoreError::InvalidArgument(format!(
                "resource indices ({r}, {s}) out of range for {n} resources"
            )));
        }
        let (ar, as_) = (self.elasticities[r], self.elasticities[s]);
        if as_ == 0.0 {
            return Err(CoreError::InvalidArgument(
                "marginal rate of substitution undefined for zero denominator elasticity"
                    .to_string(),
            ));
        }
        if x.get(r) == 0.0 {
            return Err(CoreError::InvalidArgument(
                "marginal rate of substitution undefined at zero holdings".to_string(),
            ));
        }
        Ok((ar / as_) * (x.get(s) / x.get(r)))
    }

    /// For a two-resource utility at level `u`, the quantity `y` of
    /// resource 1 that keeps utility constant given `x` of resource 0 —
    /// one point of an indifference curve (Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] unless the utility covers
    /// exactly two resources, both elasticities are positive, and `x` and
    /// `level` are positive.
    pub fn indifference_y(&self, level: f64, x: f64) -> Result<f64> {
        if self.elasticities.len() != 2 {
            return Err(CoreError::InvalidArgument(
                "indifference curves implemented for two resources".to_string(),
            ));
        }
        let (a, b) = (self.elasticities[0], self.elasticities[1]);
        if a <= 0.0 || b <= 0.0 {
            return Err(CoreError::InvalidArgument(
                "indifference curve needs positive elasticities".to_string(),
            ));
        }
        if !(x > 0.0 && level > 0.0) {
            return Err(CoreError::InvalidArgument(
                "indifference curve defined for positive level and quantity".to_string(),
            ));
        }
        // u = a0 x^a y^b  =>  y = (u / (a0 x^a))^(1/b)
        Ok((level / (self.scale * x.powf(a))).powf(1.0 / b))
    }
}

impl Utility for CobbDouglas {
    fn num_resources(&self) -> usize {
        self.elasticities.len()
    }

    fn value_slice(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len(),
            self.elasticities.len(),
            "bundle dimension mismatch"
        );
        self.scale
            * x.iter()
                .zip(&self.elasticities)
                .map(|(&xi, &ai)| xi.powf(ai))
                .product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u1() -> CobbDouglas {
        CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap()
    }

    #[test]
    fn validation() {
        assert!(CobbDouglas::new(0.0, vec![1.0]).is_err());
        assert!(CobbDouglas::new(1.0, vec![]).is_err());
        assert!(CobbDouglas::new(1.0, vec![-0.1]).is_err());
        assert!(CobbDouglas::new(1.0, vec![0.0, 0.0]).is_err());
        assert!(CobbDouglas::new(1.0, vec![0.0, 0.5]).is_ok());
        assert!(CobbDouglas::normalized(vec![0.6, 0.4]).is_ok());
        assert!(CobbDouglas::normalized(vec![0.6, 0.6]).is_err());
    }

    #[test]
    fn paper_example_values() {
        // u1 = x^0.6 y^0.4 at the REF allocation (18, 4) and equal split
        // (12, 6): the allocation must be preferred (sharing incentive).
        let u = u1();
        let alloc = Bundle::new(vec![18.0, 4.0]).unwrap();
        let equal = Bundle::new(vec![12.0, 6.0]).unwrap();
        assert!(u.value(&alloc) > u.value(&equal));
    }

    #[test]
    fn zero_resource_zero_utility() {
        let u = u1();
        let b = Bundle::new(vec![0.0, 5.0]).unwrap();
        assert_eq!(u.value(&b), 0.0);
    }

    #[test]
    fn rescaling_normalizes() {
        let u = CobbDouglas::new(2.5, vec![0.3, 0.9]).unwrap();
        let r = u.rescaled();
        assert!(r.is_homogeneous_degree_one(1e-12));
        assert_eq!(r.scale(), 1.0);
        assert!((r.elasticity(0) - 0.25).abs() < 1e-12);
        assert!((r.elasticity(1) - 0.75).abs() < 1e-12);
        // Rescaling preserves the preference order.
        let a = Bundle::new(vec![2.0, 8.0]).unwrap();
        let b = Bundle::new(vec![6.0, 2.0]).unwrap();
        assert_eq!(u.prefers(&a, &b), r.prefers(&a, &b));
    }

    #[test]
    fn homogeneity_of_rescaled() {
        let u = CobbDouglas::new(3.0, vec![0.5, 1.5]).unwrap().rescaled();
        let x = Bundle::new(vec![2.0, 3.0]).unwrap();
        let kx = Bundle::new(vec![4.0, 6.0]).unwrap();
        assert!((u.value(&kx) - 2.0 * u.value(&x)).abs() < 1e-12);
    }

    #[test]
    fn mrs_matches_eq9() {
        let u = u1();
        let b = Bundle::new(vec![6.0, 8.0]).unwrap();
        let mrs = u.mrs(&b, 0, 1).unwrap();
        assert!((mrs - 1.5 * (8.0 / 6.0)).abs() < 1e-12);
        // MRS in the other direction is the reciprocal.
        let inv = u.mrs(&b, 1, 0).unwrap();
        assert!((mrs * inv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrs_error_cases() {
        let u = CobbDouglas::new(1.0, vec![0.5, 0.0]).unwrap();
        let b = Bundle::new(vec![1.0, 1.0]).unwrap();
        assert!(u.mrs(&b, 0, 1).is_err()); // zero denominator elasticity
        assert!(u.mrs(&b, 0, 5).is_err()); // out of range
        let z = Bundle::new(vec![0.0, 1.0]).unwrap();
        let u2 = CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap();
        assert!(u2.mrs(&z, 0, 1).is_err()); // zero holdings
    }

    #[test]
    fn indifference_curve_holds_level() {
        let u = u1();
        let level = u.value_slice(&[6.0, 8.0]);
        for x in [1.0, 3.0, 6.0, 12.0, 20.0] {
            let y = u.indifference_y(level, x).unwrap();
            let v = u.value_slice(&[x, y]);
            assert!((v - level).abs() < 1e-9 * level, "x={x}");
        }
    }

    #[test]
    fn indifference_curve_error_cases() {
        let u3 = CobbDouglas::new(1.0, vec![0.3, 0.3, 0.4]).unwrap();
        assert!(u3.indifference_y(1.0, 1.0).is_err());
        assert!(u1().indifference_y(0.0, 1.0).is_err());
        assert!(u1().indifference_y(1.0, 0.0).is_err());
    }

    #[test]
    fn diminishing_marginal_returns() {
        // With elasticity < 1, utility gains per added unit shrink.
        let u = CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap();
        let base = |x: f64| u.value_slice(&[x, 4.0]);
        let gain1 = base(2.0) - base(1.0);
        let gain2 = base(3.0) - base(2.0);
        assert!(gain2 < gain1);
    }
}
