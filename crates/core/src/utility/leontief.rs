//! Leontief (perfect-complement) utilities, the preference domain of prior
//! multi-resource fairness work (DRF), included for comparison (Eq. 8,
//! Fig. 4 of the paper).

use crate::error::{CoreError, Result};
use crate::utility::Utility;

/// A Leontief utility `u(x) = min_r (x_r / d_r)` for a demand vector `d`.
///
/// Resources are perfect complements: extra quantity of one resource beyond
/// the demanded ratio adds no utility, and the marginal rate of
/// substitution is zero or infinite — the L-shaped indifference curves of
/// the paper's Fig. 4.
///
/// # Examples
///
/// The paper's example `u = min(x, 2y)` is demand vector `(1, 0.5)`:
///
/// ```
/// use ref_core::utility::{Leontief, Utility};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = Leontief::new(vec![1.0, 0.5])?;
/// // (4 GB/s, 2 MB) and the disproportionate (10 GB/s, 2 MB) tie.
/// assert_eq!(u.value_slice(&[4.0, 2.0]), u.value_slice(&[10.0, 2.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Leontief {
    demands: Vec<f64>,
}

impl Leontief {
    /// Creates `min_r (x_r / d_r)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if `demands` is empty or any
    /// demand is not strictly positive and finite.
    pub fn new(demands: Vec<f64>) -> Result<Leontief> {
        if demands.is_empty() {
            return Err(CoreError::InvalidArgument(
                "demand vector needs at least one resource".to_string(),
            ));
        }
        if let Some(d) = demands.iter().find(|d| !(d.is_finite() && **d > 0.0)) {
            return Err(CoreError::InvalidArgument(format!(
                "demands must be finite and positive, got {d}"
            )));
        }
        Ok(Leontief { demands })
    }

    /// The demand vector.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// The dominant share of a bundle relative to capacities — the quantity
    /// DRF equalizes.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn dominant_share(&self, x: &[f64], capacity: &[f64]) -> f64 {
        assert_eq!(x.len(), self.demands.len(), "bundle dimension mismatch");
        assert_eq!(
            capacity.len(),
            self.demands.len(),
            "capacity dimension mismatch"
        );
        x.iter()
            .zip(capacity)
            .map(|(xi, ci)| xi / ci)
            .fold(0.0_f64, f64::max)
    }
}

impl Utility for Leontief {
    fn num_resources(&self) -> usize {
        self.demands.len()
    }

    fn value_slice(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.demands.len(), "bundle dimension mismatch");
        x.iter()
            .zip(&self.demands)
            .map(|(xi, di)| xi / di)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Bundle;

    #[test]
    fn validation() {
        assert!(Leontief::new(vec![]).is_err());
        assert!(Leontief::new(vec![0.0]).is_err());
        assert!(Leontief::new(vec![-1.0]).is_err());
        assert!(Leontief::new(vec![2.0, 1.0]).is_ok());
    }

    #[test]
    fn paper_example_no_substitution() {
        // u = min(x, 2y): extra bandwidth or cache beyond the 2:1 ratio is
        // wasted (§3.3).
        let u = Leontief::new(vec![1.0, 0.5]).unwrap();
        let base = u.value_slice(&[4.0, 2.0]);
        assert_eq!(base, 4.0);
        assert_eq!(u.value_slice(&[10.0, 2.0]), base);
        assert_eq!(u.value_slice(&[4.0, 10.0]), base);
    }

    #[test]
    fn preference_relations() {
        let u = Leontief::new(vec![1.0, 1.0]).unwrap();
        let a = Bundle::new(vec![2.0, 2.0]).unwrap();
        let b = Bundle::new(vec![1.0, 5.0]).unwrap();
        assert!(u.prefers(&a, &b));
    }

    #[test]
    fn dominant_share_is_max_normalized() {
        let u = Leontief::new(vec![1.0, 1.0]).unwrap();
        let s = u.dominant_share(&[6.0, 3.0], &[24.0, 12.0]);
        assert!((s - 0.25).abs() < 1e-12);
        let s = u.dominant_share(&[12.0, 3.0], &[24.0, 12.0]);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_bundle_zero_utility() {
        let u = Leontief::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(u.value_slice(&[0.0, 4.0]), 0.0);
    }
}
