//! Utility functions over resource bundles.
//!
//! The paper models agents with Cobb-Douglas preferences
//! ([`CobbDouglas`], Eq. 1) and contrasts them with the Leontief
//! preferences of prior distributed-systems work ([`Leontief`], Eq. 8).
//! Both implement the [`Utility`] trait so property checkers and welfare
//! metrics can treat them uniformly.

mod cobb_douglas;
mod leontief;

pub use cobb_douglas::CobbDouglas;
pub use leontief::Leontief;

use crate::resource::Bundle;

/// A utility function `u: R_+^R -> R_+`.
pub trait Utility {
    /// Number of resources the function is defined over.
    fn num_resources(&self) -> usize;

    /// Utility of a bundle given as a slice.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len() != self.num_resources()`.
    fn value_slice(&self, x: &[f64]) -> f64;

    /// Utility of a [`Bundle`].
    fn value(&self, x: &Bundle) -> f64 {
        self.value_slice(x.as_slice())
    }

    /// Whether the agent strictly prefers `a` to `b`.
    fn prefers(&self, a: &Bundle, b: &Bundle) -> bool {
        self.value(a) > self.value(b)
    }

    /// Whether the agent weakly prefers `a` to `b`.
    fn weakly_prefers(&self, a: &Bundle, b: &Bundle) -> bool {
        self.value(a) >= self.value(b)
    }

    /// Whether the agent is indifferent between `a` and `b` within `tol`
    /// relative tolerance.
    fn indifferent(&self, a: &Bundle, b: &Bundle, tol: f64) -> bool {
        let (ua, ub) = (self.value(a), self.value(b));
        (ua - ub).abs() <= tol * ua.abs().max(ub.abs()).max(1e-300)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_relations_follow_values() {
        let u = CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap();
        let a = Bundle::new(vec![4.0, 4.0]).unwrap();
        let b = Bundle::new(vec![1.0, 1.0]).unwrap();
        assert!(u.prefers(&a, &b));
        assert!(u.weakly_prefers(&a, &b));
        assert!(!u.prefers(&b, &a));
        assert!(u.weakly_prefers(&a, &a));
        assert!(u.indifferent(&a, &a, 1e-12));
        assert!(!u.indifferent(&a, &b, 1e-6));
    }

    #[test]
    fn trait_objects_work() {
        let cd = CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap();
        let le = Leontief::new(vec![2.0, 1.0]).unwrap();
        let us: Vec<&dyn Utility> = vec![&cd, &le];
        let b = Bundle::new(vec![4.0, 2.0]).unwrap();
        for u in us {
            assert!(u.value(&b) > 0.0);
        }
    }
}
