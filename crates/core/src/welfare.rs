//! Welfare metrics (§4.5, Eq. 17).
//!
//! The evaluation compares mechanisms by *weighted system throughput*: each
//! agent's utility when sharing divided by its utility when given the whole
//! machine, summed over agents. This mirrors the weighted-progress metric
//! of prior multiprogram studies, expressed in utility space.

use crate::resource::{Allocation, Bundle, Capacity};
use crate::utility::{CobbDouglas, Utility};

/// Weighted utility `U_i(x) = u_i(x) / u_i(C)` — performance when sharing
/// normalized by performance when alone (the complement of slowdown).
///
/// # Examples
///
/// ```
/// use ref_core::resource::{Bundle, Capacity};
/// use ref_core::utility::CobbDouglas;
/// use ref_core::welfare::weighted_utility;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let u = CobbDouglas::new(1.0, vec![0.5, 0.5])?;
/// let c = Capacity::new(vec![24.0, 12.0])?;
/// let half = Bundle::new(vec![12.0, 6.0])?;
/// // Homogeneous degree one: half the machine gives half the utility.
/// assert!((weighted_utility(&u, &half, &c) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn weighted_utility(agent: &CobbDouglas, x: &Bundle, capacity: &Capacity) -> f64 {
    agent.value(x) / agent.value(&capacity.as_bundle())
}

/// Weighted system throughput `sum_i U_i(x_i)` (Eq. 17).
///
/// # Panics
///
/// Panics if `agents.len()` differs from the allocation's agent count.
pub fn weighted_system_throughput(
    agents: &[CobbDouglas],
    allocation: &Allocation,
    capacity: &Capacity,
) -> f64 {
    assert_eq!(
        agents.len(),
        allocation.num_agents(),
        "one utility per agent"
    );
    agents
        .iter()
        .zip(allocation.bundles())
        .map(|(a, x)| weighted_utility(a, x, capacity))
        .sum()
}

/// Nash social welfare `prod_i U_i(x_i)`.
///
/// # Panics
///
/// Panics if `agents.len()` differs from the allocation's agent count.
pub fn nash_welfare(agents: &[CobbDouglas], allocation: &Allocation, capacity: &Capacity) -> f64 {
    assert_eq!(
        agents.len(),
        allocation.num_agents(),
        "one utility per agent"
    );
    agents
        .iter()
        .zip(allocation.bundles())
        .map(|(a, x)| weighted_utility(a, x, capacity))
        .product()
}

/// Egalitarian welfare `min_i U_i(x_i)`.
///
/// # Panics
///
/// Panics if `agents.len()` differs from the allocation's agent count.
pub fn egalitarian_welfare(
    agents: &[CobbDouglas],
    allocation: &Allocation,
    capacity: &Capacity,
) -> f64 {
    assert_eq!(
        agents.len(),
        allocation.num_agents(),
        "one utility per agent"
    );
    agents
        .iter()
        .zip(allocation.bundles())
        .map(|(a, x)| weighted_utility(a, x, capacity))
        .fold(f64::INFINITY, f64::min)
}

/// The unfairness index of prior work: the ratio of the maximum to the
/// minimum weighted utility (1 means perfectly equal slowdowns).
///
/// # Panics
///
/// Panics if `agents.len()` differs from the allocation's agent count.
pub fn unfairness_index(
    agents: &[CobbDouglas],
    allocation: &Allocation,
    capacity: &Capacity,
) -> f64 {
    assert_eq!(
        agents.len(),
        allocation.num_agents(),
        "one utility per agent"
    );
    let us: Vec<f64> = agents
        .iter()
        .zip(allocation.bundles())
        .map(|(a, x)| weighted_utility(a, x, capacity))
        .collect();
    let max = us.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let min = us.iter().fold(f64::INFINITY, |m, &v| m.min(v));
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{EqualShare, Mechanism, ProportionalElasticity};

    fn fixture() -> (Vec<CobbDouglas>, Capacity) {
        (
            vec![
                CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
                CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
            ],
            Capacity::new(vec![24.0, 12.0]).unwrap(),
        )
    }

    #[test]
    fn equal_split_of_homogeneous_agents_has_half_utilities() {
        let (agents, c) = fixture();
        let alloc = EqualShare.allocate(&agents, &c).unwrap();
        let t = weighted_system_throughput(&agents, &alloc, &c);
        assert!((t - 1.0).abs() < 1e-9, "throughput {t}");
        assert!((nash_welfare(&agents, &alloc, &c) - 0.25).abs() < 1e-9);
        assert!((egalitarian_welfare(&agents, &alloc, &c) - 0.5).abs() < 1e-9);
        assert!((unfairness_index(&agents, &alloc, &c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ref_beats_equal_split_throughput() {
        let (agents, c) = fixture();
        let equal = EqualShare.allocate(&agents, &c).unwrap();
        let fair = ProportionalElasticity.allocate(&agents, &c).unwrap();
        assert!(
            weighted_system_throughput(&agents, &fair, &c)
                > weighted_system_throughput(&agents, &equal, &c)
        );
    }

    #[test]
    fn weighted_utility_is_one_for_whole_machine() {
        let (agents, c) = fixture();
        let whole = c.as_bundle();
        for a in &agents {
            assert!((weighted_utility(a, &whole, &c) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "one utility per agent")]
    fn mismatched_agents_panic() {
        let (agents, c) = fixture();
        let alloc = EqualShare.allocate(&agents, &c).unwrap();
        let _ = weighted_system_throughput(&agents[..1], &alloc, &c);
    }
}
