//! Property-based tests for the mechanism and utility invariants — the
//! heart of the reproduction: REF's fairness guarantees must hold for
//! *arbitrary* Cobb-Douglas populations, not just the paper's examples.

use proptest::prelude::*;
use ref_core::fitting::{fit_cobb_douglas, FitPoint};
use ref_core::mechanism::{EqualShare, Mechanism, ProportionalElasticity};
use ref_core::properties::FairnessReport;
use ref_core::resource::{Bundle, Capacity};
use ref_core::utility::{CobbDouglas, Utility};

/// Random positive elasticity in a well-conditioned range.
fn elasticity() -> impl Strategy<Value = f64> {
    0.05..1.5f64
}

/// A population of `n` agents over `r` resources.
fn agents(n: usize, r: usize) -> impl Strategy<Value = Vec<CobbDouglas>> {
    prop::collection::vec((0.1..3.0f64, prop::collection::vec(elasticity(), r)), n).prop_map(
        |rows| {
            rows.into_iter()
                .map(|(scale, es)| CobbDouglas::new(scale, es).expect("valid by construction"))
                .collect()
        },
    )
}

fn capacity(r: usize) -> impl Strategy<Value = Capacity> {
    prop::collection::vec(1.0..100.0f64, r)
        .prop_map(|c| Capacity::new(c).expect("positive by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The paper's theorem (§4.2): REF satisfies SI, EF and PE for every
    /// Cobb-Douglas population.
    #[test]
    fn ref_is_always_fair_two_resources(
        pop in agents(4, 2),
        cap in capacity(2),
    ) {
        let alloc = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        let report = FairnessReport::check_with_tolerance(&pop, &alloc, &cap, 1e-9);
        prop_assert!(report.sharing_incentives(), "{report:?}");
        prop_assert!(report.envy_free(), "{report:?}");
        prop_assert!(report.pareto_efficient, "{report:?}");
    }

    #[test]
    fn ref_is_always_fair_many_resources(
        pop in agents(3, 4),
        cap in capacity(4),
    ) {
        let alloc = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        let report = FairnessReport::check_with_tolerance(&pop, &alloc, &cap, 1e-9);
        prop_assert!(report.is_fair_with_si(), "{report:?}");
    }

    /// REF exhausts every resource (no waste).
    #[test]
    fn ref_exhausts_capacity(pop in agents(5, 3), cap in capacity(3)) {
        let alloc = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        prop_assert!(alloc.is_exhaustive(&cap, 1e-9));
    }

    /// Reports are scale-free: multiplying one agent's utility by a
    /// positive constant (or exponentiating it, i.e. scaling elasticities)
    /// never changes the allocation.
    #[test]
    fn ref_invariant_to_utility_scaling(
        pop in agents(3, 2),
        cap in capacity(2),
        k in 0.2..5.0f64,
    ) {
        let base = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        let scaled: Vec<CobbDouglas> = pop
            .iter()
            .map(|u| {
                let es: Vec<f64> = u.elasticities().iter().map(|e| e * k).collect();
                CobbDouglas::new(u.scale() * k, es).unwrap()
            })
            .collect();
        let same = ProportionalElasticity.allocate(&scaled, &cap).unwrap();
        for i in 0..pop.len() {
            for r in 0..2 {
                prop_assert!((base.bundle(i).get(r) - same.bundle(i).get(r)).abs() < 1e-9);
            }
        }
    }

    /// Truthful agents weakly prefer REF to the equal division — the
    /// sharing incentive, agent by agent.
    #[test]
    fn ref_dominates_equal_share_per_agent(pop in agents(4, 2), cap in capacity(2)) {
        let ref_alloc = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        let equal = EqualShare.allocate(&pop, &cap).unwrap();
        for (i, u) in pop.iter().enumerate() {
            prop_assert!(
                u.value(ref_alloc.bundle(i)) >= u.value(equal.bundle(i)) * (1.0 - 1e-12)
            );
        }
    }

    /// Adding an agent never increases anyone else's share of any resource
    /// (population monotonicity of proportional division).
    #[test]
    fn shares_shrink_when_population_grows(
        pop in agents(4, 2),
        cap in capacity(2),
    ) {
        let before = ProportionalElasticity.allocate(&pop[..3], &cap).unwrap();
        let after = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        for i in 0..3 {
            for r in 0..2 {
                prop_assert!(
                    after.bundle(i).get(r) <= before.bundle(i).get(r) + 1e-9,
                    "agent {i} resource {r} grew"
                );
            }
        }
    }

    /// Fitting recovers arbitrary ground-truth utilities from noiseless
    /// grid samples.
    #[test]
    fn fitting_recovers_ground_truth(
        scale in 0.2..3.0f64,
        a1 in 0.05..1.2f64,
        a2 in 0.05..1.2f64,
    ) {
        let truth = CobbDouglas::new(scale, vec![a1, a2]).unwrap();
        let mut pts = Vec::new();
        for &x in &[0.8, 1.6, 3.2, 6.4, 12.8] {
            for &y in &[0.125, 0.25, 0.5, 1.0, 2.0] {
                pts.push(FitPoint::new(vec![x, y], truth.value_slice(&[x, y])).unwrap());
            }
        }
        let fit = fit_cobb_douglas(&pts).unwrap();
        prop_assert!((fit.utility().scale() - scale).abs() < 1e-6);
        prop_assert!((fit.utility().elasticity(0) - a1).abs() < 1e-6);
        prop_assert!((fit.utility().elasticity(1) - a2).abs() < 1e-6);
        prop_assert!(fit.r_squared() > 0.999_999);
    }

    /// MRS antisymmetry: MRS(r, s) * MRS(s, r) = 1 wherever defined.
    #[test]
    fn mrs_reciprocal_identity(
        a1 in elasticity(),
        a2 in elasticity(),
        x in 0.5..20.0f64,
        y in 0.5..20.0f64,
    ) {
        let u = CobbDouglas::new(1.0, vec![a1, a2]).unwrap();
        let b = Bundle::new(vec![x, y]).unwrap();
        let m = u.mrs(&b, 0, 1).unwrap();
        let inv = u.mrs(&b, 1, 0).unwrap();
        prop_assert!((m * inv - 1.0).abs() < 1e-9);
    }

    /// Indifference curves hold their level across the whole range.
    #[test]
    fn indifference_curve_level_preserved(
        a1 in 0.1..0.9f64,
        x0 in 1.0..10.0f64,
        y0 in 1.0..10.0f64,
        xq in 0.5..20.0f64,
    ) {
        let u = CobbDouglas::new(1.0, vec![a1, 1.0 - a1]).unwrap();
        let level = u.value_slice(&[x0, y0]);
        let yq = u.indifference_y(level, xq).unwrap();
        prop_assert!((u.value_slice(&[xq, yq]) - level).abs() < 1e-9 * level);
    }

    /// Rescaling preserves the preference order everywhere.
    #[test]
    fn rescaling_preserves_preferences(
        scale in 0.2..3.0f64,
        es in prop::collection::vec(elasticity(), 2),
        xa in 0.5..20.0f64, ya in 0.5..20.0f64,
        xb in 0.5..20.0f64, yb in 0.5..20.0f64,
    ) {
        let u = CobbDouglas::new(scale, es).unwrap();
        let r = u.rescaled();
        let a = Bundle::new(vec![xa, ya]).unwrap();
        let b = Bundle::new(vec![xb, yb]).unwrap();
        prop_assert_eq!(u.prefers(&a, &b), r.prefers(&a, &b));
    }
}
