//! Property-based tests for the optimization-based mechanisms. These run
//! interior-point solves per case, so case counts are kept moderate.

use proptest::prelude::*;
use ref_core::mechanism::{
    EqualShare, EqualSlowdown, MaxWelfare, Mechanism, ProportionalElasticity,
};
use ref_core::properties::FairnessReport;
use ref_core::resource::Capacity;
use ref_core::utility::CobbDouglas;
use ref_core::welfare::{egalitarian_welfare, nash_welfare};

fn agents(n: usize) -> impl Strategy<Value = Vec<CobbDouglas>> {
    prop::collection::vec((0.2..2.0f64, 0.1..1.0f64, 0.1..1.0f64), n).prop_map(|rows| {
        rows.into_iter()
            .map(|(s, a, b)| CobbDouglas::new(s, vec![a, b]).expect("valid"))
            .collect()
    })
}

fn capacity() -> impl Strategy<Value = Capacity> {
    (5.0..50.0f64, 2.0..30.0f64).prop_map(|(x, y)| Capacity::new(vec![x, y]).expect("positive"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The constrained Nash-welfare mechanism always produces an SI + EF
    /// allocation, for arbitrary (unnormalized) populations.
    #[test]
    fn max_welfare_with_fairness_is_fair(pop in agents(3), cap in capacity()) {
        let alloc = MaxWelfare::with_fairness().allocate(&pop, &cap).unwrap();
        let report = FairnessReport::check_with_tolerance(&pop, &alloc, &cap, 2e-3);
        prop_assert!(report.sharing_incentives(), "{report:?}");
        prop_assert!(report.envy_free(), "{report:?}");
    }

    /// Unconstrained Nash welfare dominates every other mechanism on the
    /// Nash objective.
    #[test]
    fn unconstrained_nash_is_the_nash_optimum(pop in agents(3), cap in capacity()) {
        let best = MaxWelfare::without_fairness().allocate(&pop, &cap).unwrap();
        let best_val = nash_welfare(&pop, &best, &cap);
        for other in [
            ProportionalElasticity.allocate(&pop, &cap).unwrap(),
            EqualShare.allocate(&pop, &cap).unwrap(),
        ] {
            prop_assert!(best_val >= nash_welfare(&pop, &other, &cap) * (1.0 - 1e-3));
        }
    }

    /// Equal slowdown dominates every other mechanism on the egalitarian
    /// objective and (nearly) equalizes weighted utilities.
    #[test]
    fn equal_slowdown_is_the_maxmin_optimum(pop in agents(3), cap in capacity()) {
        let alloc = EqualSlowdown::new().allocate(&pop, &cap).unwrap();
        let best_min = egalitarian_welfare(&pop, &alloc, &cap);
        for other in [
            ProportionalElasticity.allocate(&pop, &cap).unwrap(),
            EqualShare.allocate(&pop, &cap).unwrap(),
        ] {
            prop_assert!(best_min >= egalitarian_welfare(&pop, &other, &cap) * (1.0 - 2e-3));
        }
    }

    /// All GP mechanisms respect capacity and exhaust it (PE requires no
    /// waste for strictly monotone utilities).
    #[test]
    fn gp_mechanisms_exhaust_capacity(pop in agents(2), cap in capacity()) {
        for m in [
            Box::new(MaxWelfare::with_fairness()) as Box<dyn Mechanism>,
            Box::new(MaxWelfare::without_fairness()),
            Box::new(EqualSlowdown::new()),
        ] {
            let alloc = m.allocate(&pop, &cap).unwrap();
            for r in 0..2 {
                let used: f64 = alloc.bundles().iter().map(|b| b.get(r)).sum();
                prop_assert!(used <= cap.get(r) * (1.0 + 1e-6), "{}", m.name());
                prop_assert!(used >= cap.get(r) * (1.0 - 1e-2), "{} wasted", m.name());
            }
        }
    }

    /// For already-normalized agents, the constrained Nash optimum
    /// coincides with the REF closed form (the §4.2 equivalence).
    #[test]
    fn fair_nash_equals_ref_for_normalized_agents(
        a0 in 0.1..0.9f64,
        a1 in 0.1..0.9f64,
        cap in capacity(),
    ) {
        let pop = vec![
            CobbDouglas::new(1.0, vec![a0, 1.0 - a0]).unwrap(),
            CobbDouglas::new(1.0, vec![a1, 1.0 - a1]).unwrap(),
        ];
        let nash = MaxWelfare::with_fairness().allocate(&pop, &cap).unwrap();
        let closed = ProportionalElasticity.allocate(&pop, &cap).unwrap();
        for i in 0..2 {
            for r in 0..2 {
                let gap = (nash.bundle(i).get(r) - closed.bundle(i).get(r)).abs();
                prop_assert!(gap <= 0.02 * cap.get(r), "agent {i} resource {r}: {gap}");
            }
        }
    }
}
