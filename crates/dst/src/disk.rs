//! `SimDisk`: an in-memory [`Storage`] implementation with seeded fault
//! injection.
//!
//! The WAL's real segment codec runs unmodified above this disk — same
//! framing, same CRCs, same checkpoint rename dance — so recovery,
//! scrub, and torn-tail repair are exercised against the byte formats
//! production writes. The disk itself can misbehave on demand:
//!
//! - **Torn write**: the next append lands only a prefix of its bytes
//!   and reports failure, and the handle's self-heal truncation fails
//!   once too — exactly the state a power cut mid-append leaves behind.
//!   The WAL poisons itself; recovery truncates the torn tail.
//! - **Failed fsync**: the next N `sync_data` calls error, turning
//!   appends into loud transient failures.
//! - **Bit flip**: one bit of a checkpoint already *covered* by a newer
//!   one flips — latent rot off the recovery path that only
//!   [`ref_serve::wal::scrub_with`] can find.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use ref_serve::{Storage, StorageFile};

/// The shared in-memory filesystem. Cloning shares the contents.
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    inner: Arc<Mutex<DiskInner>>,
}

#[derive(Debug, Default)]
struct DiskInner {
    dirs: BTreeSet<PathBuf>,
    files: BTreeMap<PathBuf, Vec<u8>>,
    /// Bytes of the next append that land before it "fails"; arming
    /// this also blocks the next `set_len` so the WAL's self-heal
    /// fails and the torn tail survives until recovery.
    torn_keep: Option<usize>,
    torn_block_heal: bool,
    fail_syncs: u32,
    bits_flipped: u64,
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: not found", path.display()),
    )
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> SimDisk {
        SimDisk::default()
    }

    /// Arms a torn write: the next `write_all` through any handle keeps
    /// only its first `keep` bytes and errors, and the follow-up
    /// self-heal `set_len` errors once as well.
    pub fn arm_torn_write(&self, keep: usize) {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        inner.torn_keep = Some(keep);
        inner.torn_block_heal = true;
    }

    /// Makes the next `n` `sync_data` calls fail.
    pub fn fail_next_syncs(&self, n: u32) {
        self.inner.lock().expect("disk lock poisoned").fail_syncs = n;
    }

    /// Flips one bit in the oldest checkpoint under `dir`, provided a
    /// newer checkpoint covers it (so recovery is untouched and only a
    /// scrub can notice). Returns the damaged path, or `None` when no
    /// covered checkpoint exists yet.
    pub fn flip_bit_in_covered_checkpoint(&self, dir: &Path) -> Option<PathBuf> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        let checkpoints: Vec<PathBuf> = inner
            .files
            .keys()
            .filter(|p| {
                p.parent() == Some(dir)
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("checkpoint-") && n.ends_with(".ckpt"))
            })
            .cloned()
            .collect();
        // Checkpoint names embed the sequence zero-padded, so the
        // lexicographically smallest is the oldest.
        if checkpoints.len() < 2 {
            return None;
        }
        let victim = checkpoints[0].clone();
        let bytes = inner.files.get_mut(&victim)?;
        if bytes.is_empty() {
            return None;
        }
        // Walk offset and bit with each strike so a second flip never
        // cancels the first one out.
        let strikes = inner.bits_flipped;
        let bytes = inner.files.get_mut(&victim)?;
        let offset = (bytes.len() / 2 + strikes as usize) % bytes.len();
        bytes[offset] ^= 1u8 << (strikes % 8);
        inner.bits_flipped += 1;
        Some(victim)
    }

    /// Number of bits flipped so far (trace bookkeeping).
    pub fn bits_flipped(&self) -> u64 {
        self.inner.lock().expect("disk lock poisoned").bits_flipped
    }
}

/// An open append-only handle into a [`SimDisk`] file.
#[derive(Debug)]
pub struct SimFile {
    inner: Arc<Mutex<DiskInner>>,
    path: PathBuf,
}

impl StorageFile for SimFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        if let Some(keep) = inner.torn_keep.take() {
            let keep = keep.min(bytes.len());
            let partial = bytes[..keep].to_vec();
            let file = inner.files.entry(self.path.clone()).or_default();
            file.extend_from_slice(&partial);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                format!("torn write: {keep} of {} bytes landed", bytes.len()),
            ));
        }
        inner
            .files
            .entry(self.path.clone())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        if inner.fail_syncs > 0 {
            inner.fail_syncs -= 1;
            return Err(io::Error::other("injected fsync failure"));
        }
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        if inner.torn_block_heal {
            inner.torn_block_heal = false;
            return Err(io::Error::other(
                "injected truncate failure after torn write",
            ));
        }
        let file = inner
            .files
            .get_mut(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        file.resize(usize::try_from(len).unwrap_or(usize::MAX), 0);
        Ok(())
    }
}

impl Storage for SimDisk {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        let mut cur = PathBuf::new();
        for part in dir.components() {
            cur.push(part);
            inner.dirs.insert(cur.clone());
        }
        Ok(())
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let inner = self.inner.lock().expect("disk lock poisoned");
        if !inner.dirs.contains(dir) {
            return Err(not_found(dir));
        }
        Ok(inner
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }

    fn exists(&self, path: &Path) -> bool {
        let inner = self.inner.lock().expect("disk lock poisoned");
        inner.files.contains_key(path) || inner.dirs.contains(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().expect("disk lock poisoned");
        inner
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        inner.files.insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        let bytes = inner.files.remove(from).ok_or_else(|| not_found(from))?;
        inner.files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        inner
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let inner = self.inner.lock().expect("disk lock poisoned");
        inner
            .files
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| not_found(path))
    }

    fn open_append(&self, path: &Path, create: bool) -> io::Result<Box<dyn StorageFile>> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        if !inner.files.contains_key(path) {
            if !create {
                return Err(not_found(path));
            }
            inner.files.insert(path.to_path_buf(), Vec::new());
        }
        Ok(Box::new(SimFile {
            inner: Arc::clone(&self.inner),
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk lock poisoned");
        let file = inner.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.truncate(usize::try_from(len).unwrap_or(usize::MAX));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_filesystem_semantics() {
        let disk = SimDisk::new();
        let dir = Path::new("/sim/a");
        disk.create_dir_all(dir).unwrap();
        assert!(disk.list_dir(dir).unwrap().is_empty());
        assert!(disk.list_dir(Path::new("/nope")).is_err());

        let mut f = disk.open_append(&dir.join("x.wal"), true).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert_eq!(disk.read(&dir.join("x.wal")).unwrap(), b"hello");
        assert_eq!(disk.len(&dir.join("x.wal")).unwrap(), 5);

        disk.write(&dir.join("t.tmp"), b"ckpt").unwrap();
        disk.rename(&dir.join("t.tmp"), &dir.join("c.ckpt"))
            .unwrap();
        assert!(!disk.exists(&dir.join("t.tmp")));
        assert_eq!(disk.list_dir(dir).unwrap().len(), 2);

        disk.truncate(&dir.join("x.wal"), 2).unwrap();
        assert_eq!(disk.read(&dir.join("x.wal")).unwrap(), b"he");
        disk.remove_file(&dir.join("c.ckpt")).unwrap();
        assert!(disk.remove_file(&dir.join("c.ckpt")).is_err());
    }

    #[test]
    fn torn_write_lands_prefix_and_blocks_self_heal_once() {
        let disk = SimDisk::new();
        let dir = Path::new("/sim/t");
        disk.create_dir_all(dir).unwrap();
        let path = dir.join("seg.wal");
        let mut f = disk.open_append(&path, true).unwrap();
        f.write_all(b"whole-record").unwrap();

        disk.arm_torn_write(3);
        assert!(f.write_all(b"torn-record").is_err());
        assert_eq!(disk.read(&path).unwrap(), b"whole-recordtor");
        // Self-heal truncation fails once, then works again.
        assert!(f.set_len(12).is_err());
        f.set_len(12).unwrap();
        assert_eq!(disk.read(&path).unwrap(), b"whole-record");
    }

    #[test]
    fn fsync_failures_are_counted_down() {
        let disk = SimDisk::new();
        disk.create_dir_all(Path::new("/sim")).unwrap();
        let mut f = disk.open_append(Path::new("/sim/f.wal"), true).unwrap();
        disk.fail_next_syncs(2);
        assert!(f.sync_data().is_err());
        assert!(f.sync_data().is_err());
        assert!(f.sync_data().is_ok());
    }

    #[test]
    fn bit_flip_targets_only_covered_checkpoints() {
        let disk = SimDisk::new();
        let dir = Path::new("/sim/w");
        disk.create_dir_all(dir).unwrap();
        assert!(disk.flip_bit_in_covered_checkpoint(dir).is_none());
        disk.write(
            &dir.join("checkpoint-0000000000000004.ckpt"),
            b"old-snapshot",
        )
        .unwrap();
        assert!(disk.flip_bit_in_covered_checkpoint(dir).is_none());
        disk.write(
            &dir.join("checkpoint-0000000000000008.ckpt"),
            b"new-snapshot",
        )
        .unwrap();
        let hit = disk.flip_bit_in_covered_checkpoint(dir).unwrap();
        assert!(hit.to_string_lossy().ends_with("0004.ckpt"));
        assert_ne!(
            disk.read(&dir.join("checkpoint-0000000000000004.ckpt"))
                .unwrap(),
            b"old-snapshot"
        );
        assert_eq!(
            disk.read(&dir.join("checkpoint-0000000000000008.ckpt"))
                .unwrap(),
            b"new-snapshot"
        );
    }
}
