//! The simulated fleet: sharded cores, a replicated pair per shard, a
//! router model, scripted clients — all single-threaded on virtual time.
//!
//! Every node hosts a real [`ServiceCore`] recovered through a
//! [`SimDisk`], so the WAL codec, checkpointing, recovery, scrub, and
//! the market engine all run production code. Replication is the real
//! wire protocol — `rec`/`ack`/`hb`/`hello`/`meta`/`refuse`/`diverged`
//! frames built by [`ref_serve::repl::message`] and routed through
//! [`SimNet`] — with the thread-shaped parts (sinks, pullers, tickers)
//! replaced by this deterministic event loop. The router tier
//! (fan-out ticks, the quorum gate, coordinator reallotment, supervisor
//! resync) is modeled against the real [`Coordinator`].
//!
//! After every schedule the standing invariants are checked:
//!
//! 1. **Zero acked-event loss** — every event a client saw confirmed is
//!    in the authoritative primary's WAL, bit-identical.
//! 2. **Bit-identical replay** — each live node's engine equals an
//!    offline [`replay`] of its own WAL.
//! 3. **Divergence fencing** — a replica that corrupted an apply is
//!    fenced and never promoted.
//! 4. **Reallotment consistency** — each shard's capacity agrees with
//!    the coordinator's allotments; quorum freezes roll back (re-offer)
//!    undelivered reallotments rather than half-applying them.
//! 5. **No phantom audits** — fleet temporal-SI accounting never folds
//!    in epochs from a partial (below-full-report) round.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ref_core::resource::Capacity;
use ref_core::utility::CobbDouglas;
use ref_market::{MarketConfig, ObservationSource};
use ref_serve::protocol::event_to_value;
use ref_serve::repl::{kind, message, parse_message};
use ref_serve::wal::read_events_with;
use ref_serve::{
    decode_frame, default_quorum, replay, shard_market_config, Clock, Coordinator, FaultPlan,
    FrameDecode, HashRing, JournalLimit, ReplApply, Request, Role, ServeMetrics, ServiceCore,
    Storage, Value, WalConfig,
};

use crate::disk::SimDisk;
use crate::net::SimNet;
use crate::schedule::{
    generate, ClientOp, FaultOp, Op, Schedule, NODES, REPLICAS, SHARDS, TICK_EVERY,
};
use crate::sim::{mix64, SimClock, SimRng, Trace};

/// Event-loop granularity.
const STEP: Duration = Duration::from_micros(500);
/// Primary heartbeat cadence.
const HB_EVERY: Duration = Duration::from_millis(10);
/// Base election timeout (jittered up to 1.5× per node per boot).
const ELECTION_BASE: Duration = Duration::from_millis(50);
/// How long a primary holds a client reply for the standby's ack.
const ACK_TIMEOUT: Duration = Duration::from_millis(25);
/// Delay before a node crashed by a poisoned WAL recovers.
const POISON_RESTART: Duration = Duration::from_millis(40);
/// Fault-free convergence window after the scripted horizon.
const SETTLE: Duration = Duration::from_millis(220);
/// Per-resource tolerance (× total capacity) for invariant 4: the
/// coordinator withholds deliveries below `REALLOT_EPSILON` (1e-4) of
/// total, so delivered capacity may trail allotments by that much.
const REALLOT_TOLERANCE: f64 = 2e-4;

/// Which invariant to deliberately break (test-only): proves the sweep
/// catches violations and reproduces them bit-identically from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakKind {
    /// Ack client mutations without waiting for (or sending) the
    /// replication stream — failovers then lose acked events.
    AckUnreplicated,
    /// Fold per-shard fairness audits into the fleet view even on
    /// partial rounds — phantom temporal-SI accounting.
    SiDuringPartial,
}

/// Simulation options.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Shorter horizon for CI smoke sweeps.
    pub quick: bool,
    /// Deliberately broken invariant (test-only).
    pub break_invariant: Option<BreakKind>,
}

/// The result of simulating one seed.
#[derive(Debug)]
pub struct RunOutcome {
    /// The seed simulated.
    pub seed: u64,
    /// Fault classes the schedule mixed in.
    pub classes: Vec<String>,
    /// Observable simulator events (trace entries).
    pub sim_events: u64,
    /// FNV-1a hash over the whole trace — the determinism oracle.
    pub trace_hash: u64,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
    /// The per-event trace, chronological.
    pub trace: Vec<String>,
    /// Client events confirmed replicated (or confirmed solo-durable).
    pub acked_events: u64,
    /// Coordination rounds frozen below quorum.
    pub quorum_freezes: u64,
    /// Coordination rounds missing at least one shard's report.
    pub partial_rounds: u64,
}

#[derive(Debug)]
struct Node {
    dir: PathBuf,
    disk: SimDisk,
    core: Option<ServiceCore>,
    metrics: ServeMetrics,
    role: Role,
    term: u64,
    last_heard: Duration,
    election_timeout: Duration,
    boots: u64,
    /// This node's view (as a primary) of whether its peer is an
    /// attached, streaming standby. Only changes on *observable*
    /// events: handshakes, peer crashes, divergence detection.
    peer_attached: bool,
    /// Ground truth: a corrupting fault was injected into this replica.
    diverged: bool,
    /// Primary-side memory: this node caught its peer diverging and
    /// must never re-attach it (the real sender thread exits and a
    /// fenced standby never reconnects).
    peer_diverged: bool,
    promoted_ever: bool,
    /// Whether this standby has heard *anything* from its primary since
    /// its last boot. A standby that never attached cannot lose a
    /// leader it never had, so it must not elect itself — it retries
    /// the handshake instead.
    heard_any: bool,
    /// The primary's log position as last advertised (heartbeats carry
    /// `seq`). Electing while behind this would promote a stale log.
    primary_seq: u64,
    last_hello: Duration,
    /// A bit flip landed on this node's disk (scrub must notice).
    bitflip_hit: bool,
    /// Recovery lease: a restarted primary refuses mutations until its
    /// standby re-attaches or this deadline passes — a standby whose
    /// election timer is already running may depose it any moment, and
    /// solo-acking into that window would lose acked events.
    grace_until: Duration,
    /// Tick fingerprints keyed by log position after the tick record —
    /// `have → (epoch, fp)` — mirroring the real primary's ring.
    epoch_fps: BTreeMap<u64, (u64, u64)>,
}

#[derive(Debug)]
struct Pending {
    primary: usize,
    shard: usize,
    seq: u64,
    deadline: Duration,
    /// `Some` for client mutations: the encoded event to ledger on ack.
    event_json: Option<String>,
}

#[derive(Debug)]
struct AckedEvent {
    shard: usize,
    seq: u64,
    event_json: String,
}

struct Sim {
    seed: u64,
    opts: SimOptions,
    schedule: Schedule,
    next_op: usize,
    clock: SimClock,
    rng: SimRng,
    net: SimNet,
    trace: Trace,
    nodes: Vec<Node>,
    ring: HashRing,
    coord: Coordinator,
    quorum: usize,
    shard_config: MarketConfig,
    total_capacity: Vec<f64>,
    demands: Vec<Vec<f64>>,
    router_known_primary: [Option<usize>; SHARDS],
    router_term: [u64; SHARDS],
    round: u64,
    pending: Vec<Pending>,
    acked: Vec<AckedEvent>,
    violations: Vec<String>,
    quorum_freezes: u64,
    partial_rounds: u64,
    fleet_temporal_si: u64,
    si_partial_accruals: u64,
    next_hb: Duration,
    pending_restarts: Vec<(Duration, usize)>,
}

fn wal_config(dir: &std::path::Path) -> WalConfig {
    WalConfig::new(dir.to_path_buf())
        .with_checkpoint_every(4)
        .with_segment_max_bytes(2048)
        .with_fsync(true)
        .with_retain_history(true)
}

/// Election jitter mirroring the serve-side seam: `base × [1.0, 1.5)`,
/// a pure function of `(seed, node, boot)`.
fn jittered(base: Duration, seed: u64, node: usize, boot: u64) -> Duration {
    let frac = u64::from((mix64(seed ^ ((node as u64) << 32) ^ boot ^ 0x00E1_EC71) >> 32) as u32);
    let extra = (((base.as_nanos() as u64 as u128) * u128::from(frac)) >> 32) as u64 / 2;
    base + Duration::from_nanos(extra)
}

fn is_ok(reply: &Value) -> bool {
    reply.get("ok").and_then(Value::as_bool) == Some(true)
}

fn err_code(reply: &Value) -> &str {
    reply.get("error").and_then(Value::as_str).unwrap_or("")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AppKind {
    Client,
    Internal,
}

/// Simulates one seed end to end and checks every standing invariant.
pub fn run_seed(seed: u64, opts: &SimOptions) -> RunOutcome {
    let mut sim = Sim::new(seed, opts.clone());
    sim.run_script();
    sim.settle();
    sim.check_invariants();
    sim.finish()
}

impl Sim {
    fn new(seed: u64, opts: SimOptions) -> Sim {
        let schedule = generate(seed, opts.quick);
        let base = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).expect("capacity"));
        let total_capacity = base.capacity.as_slice().to_vec();
        let shard_config = shard_market_config(&base, SHARDS);
        let clock = SimClock::new();
        let mut rng = SimRng::new(seed);
        let net = SimNet::new(
            Duration::from_millis(1),
            Duration::from_millis(2),
            0.005,
            0.01,
        );
        let mut trace = Trace::new();
        trace.push(
            Duration::ZERO,
            format!(
                "boot seed={seed} classes={:?} agents={} horizon={}ms",
                schedule.classes,
                schedule.agents,
                schedule.horizon.as_millis()
            ),
        );
        let mut nodes = Vec::with_capacity(NODES);
        for id in 0..NODES {
            nodes.push(Node {
                dir: PathBuf::from(format!("/sim/node-{id}")),
                disk: SimDisk::new(),
                core: None,
                metrics: ServeMetrics::new(),
                role: if id % REPLICAS == 0 {
                    Role::Primary
                } else {
                    Role::Standby
                },
                term: 1,
                last_heard: Duration::ZERO,
                election_timeout: ELECTION_BASE,
                boots: 0,
                peer_attached: id % REPLICAS == 0,
                diverged: false,
                peer_diverged: false,
                promoted_ever: false,
                heard_any: false,
                primary_seq: 0,
                last_hello: Duration::ZERO,
                bitflip_hit: false,
                grace_until: Duration::ZERO,
                epoch_fps: BTreeMap::new(),
            });
        }
        let _ = rng.next_u64(); // reserve a draw for future layout changes
        let mut sim = Sim {
            seed,
            opts,
            schedule,
            next_op: 0,
            clock,
            rng,
            net,
            trace,
            nodes,
            ring: HashRing::new(SHARDS, 0xD5),
            coord: Coordinator::new(total_capacity.clone(), SHARDS, 0.05),
            quorum: default_quorum(SHARDS),
            shard_config,
            total_capacity,
            demands: vec![vec![0.0; 2]; SHARDS],
            router_known_primary: [None; SHARDS],
            router_term: [0; SHARDS],
            round: 0,
            pending: Vec::new(),
            acked: Vec::new(),
            violations: Vec::new(),
            quorum_freezes: 0,
            partial_rounds: 0,
            fleet_temporal_si: 0,
            si_partial_accruals: 0,
            next_hb: HB_EVERY,
            pending_restarts: Vec::new(),
        };
        for id in 0..NODES {
            sim.boot_node(id);
        }
        sim
    }

    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn violation(&mut self, msg: String) {
        let now = self.now();
        self.trace.push(now, format!("VIOLATION: {msg}"));
        self.violations.push(msg);
    }

    /// Recovers the node's core from its disk and scrubs the log,
    /// mirroring `Server::recover`.
    fn boot_node(&mut self, id: usize) {
        let now = self.now();
        let node = &mut self.nodes[id];
        let storage: Arc<dyn Storage> = Arc::new(node.disk.clone());
        match ServiceCore::recover_with(
            storage,
            self.shard_config.clone(),
            JournalLimit::default(),
            wal_config(&node.dir),
            FaultPlan::default(),
        ) {
            Ok(core) => {
                let scrub_errors = match core.wal().map(|w| w.scrub()) {
                    Some(Ok(report)) => report.errors.len() as u64,
                    Some(Err(_)) => 1,
                    None => 0,
                };
                if scrub_errors > 0 {
                    ServeMetrics::bump_by(&node.metrics.wal_scrub_errors, scrub_errors);
                }
                node.boots += 1;
                node.election_timeout = jittered(ELECTION_BASE, self.seed, id, node.boots);
                node.last_heard = now;
                node.heard_any = false;
                node.primary_seq = 0;
                node.last_hello = now;
                // Recovery replays the WAL from disk, so any in-memory
                // corruption injected before the crash is gone: the
                // rebooted replica is genuinely clean again.
                node.diverged = false;
                let seq = core.events_applied();
                node.core = Some(core);
                self.trace.push(
                    now,
                    format!(
                        "n{id} boot role={:?} term={} seq={seq} scrub_errors={scrub_errors}",
                        node.role, node.term
                    ),
                );
            }
            Err(e) => {
                self.trace.push(now, format!("n{id} recovery FAILED: {e}"));
                self.violation(format!(
                    "node {id} failed to recover from its own disk: {e}"
                ));
            }
        }
    }

    fn send_frame(&mut self, from: usize, to: usize, frame: Vec<u8>) {
        let now = self.now();
        self.net.send(now, from, to, frame, &mut self.rng);
    }

    /// The node currently serving `shard` as primary (highest term wins
    /// during a split-brain window, as an informed router would pick).
    fn live_primary(&self, shard: usize) -> Option<usize> {
        (shard * REPLICAS..shard * REPLICAS + REPLICAS)
            .filter(|id| self.nodes[*id].core.is_some() && self.nodes[*id].role == Role::Primary)
            .max_by_key(|id| (self.nodes[*id].term, usize::MAX - id))
    }

    /// The primary the router routes to: [`live_primary`] filtered by
    /// the fencing-token floor. Once the router has seen term `t` for a
    /// shard it never again routes below it — a crashed high-term
    /// primary must not fail routing back to a deposed one whose
    /// solo acks would die with its branch.
    ///
    /// [`live_primary`]: Sim::live_primary
    fn routed_primary(&self, shard: usize) -> Option<usize> {
        self.live_primary(shard)
            .filter(|id| self.nodes[*id].term >= self.router_term[shard])
    }

    /// Routes to a primary, ratcheting the shard's fencing-token floor.
    fn route(&mut self, shard: usize) -> Option<usize> {
        let p = self.routed_primary(shard)?;
        self.router_term[shard] = self.nodes[p].term;
        Some(p)
    }

    /// Applies one request on a primary, replicating event-bearing
    /// records and holding client acks for the standby (sync mode).
    fn primary_apply(&mut self, id: usize, req: &Request, app: AppKind) -> Value {
        let now = self.now();
        let event = req.to_event();
        if event.is_some() && !self.nodes[id].peer_attached && now < self.nodes[id].grace_until {
            self.trace
                .push(now, format!("n{id} in recovery grace: refusing mutation"));
            return ref_serve::protocol::error_response(
                "unavailable",
                Some("recovering: standby not yet re-attached"),
                Some(10),
            );
        }
        let (reply, seq_after, poisoned, tick_fp) = {
            let node = &mut self.nodes[id];
            let core = node.core.as_mut().expect("primary core present");
            let reply = core.handle(req, &node.metrics);
            let tick_fp = matches!(req, Request::Tick)
                .then(|| (core.engine().epoch(), core.engine().state_fingerprint()));
            let poisoned = core.wal().map(|w| w.poisoned()).unwrap_or(false);
            (reply, core.events_applied(), poisoned, tick_fp)
        };
        let appended = event.is_some() && err_code(&reply) != "wal";
        if appended {
            if let Some((epoch, fp)) = tick_fp {
                let node = &mut self.nodes[id];
                node.epoch_fps.insert(seq_after, (epoch, fp));
                while node.epoch_fps.len() > 64 {
                    let oldest = *node.epoch_fps.keys().next().expect("non-empty");
                    node.epoch_fps.remove(&oldest);
                }
            }
            let seq = seq_after - 1;
            let event = event.expect("event-bearing");
            let event_value = event_to_value(&event);
            let event_json = event_value.encode();
            let shard = id / REPLICAS;
            let peer = id ^ 1;
            let broken_ack = self.opts.break_invariant == Some(BreakKind::AckUnreplicated);
            if self.nodes[id].peer_attached {
                let frame = message(
                    "rec",
                    vec![("seq", Value::from_u64(seq)), ("event", event_value)],
                );
                self.send_frame(id, peer, frame);
                self.pending.push(Pending {
                    primary: id,
                    shard,
                    seq,
                    deadline: now + ACK_TIMEOUT,
                    event_json: (app == AppKind::Client && !broken_ack).then(|| event_json.clone()),
                });
                if broken_ack && app == AppKind::Client {
                    // BROKEN (test-only): ack the client before the
                    // standby confirms — a failover inside the
                    // replication window now loses the acked tail.
                    self.trace
                        .push(now, format!("n{id} BROKEN eager-ack seq={seq}"));
                    self.acked.push(AckedEvent {
                        shard,
                        seq,
                        event_json,
                    });
                }
            } else if app == AppKind::Client {
                // No attached standby: the primary degrades to solo
                // durability and acks from its own log.
                self.trace.push(now, format!("n{id} local-ack seq={seq}"));
                self.acked.push(AckedEvent {
                    shard,
                    seq,
                    event_json,
                });
            }
        }
        if poisoned {
            self.trace
                .push(now, format!("n{id} wal poisoned: crashing for recovery"));
            self.crash(id);
            self.pending_restarts.push((now + POISON_RESTART, id));
        }
        reply
    }

    fn crash(&mut self, id: usize) {
        if self.nodes[id].core.is_none() {
            return;
        }
        let now = self.now();
        self.nodes[id].core = None;
        self.nodes[id].peer_attached = false;
        // A dead peer is observable (connection reset): its primary
        // stops counting it as an attached standby. Divergence memory is
        // connection-scoped — a replica that crashes and recovers replays
        // its WAL from disk, so the peer starts judging the next
        // connection on its own merits.
        self.nodes[id ^ 1].peer_attached = false;
        self.nodes[id ^ 1].peer_diverged = false;
        // Clients talking to a crashed primary get connection drops,
        // never acks.
        self.pending.retain(|p| p.primary != id);
        self.trace.push(now, format!("n{id} crash"));
    }

    fn restart(&mut self, id: usize) {
        if self.nodes[id].core.is_some() {
            return;
        }
        let now = self.now();
        self.boot_node(id);
        if self.nodes[id].core.is_none() {
            return; // recovery failure already recorded
        }
        let peer = id ^ 1;
        let peer_is_primary = self.nodes[peer].core.is_some()
            && self.nodes[peer].role == Role::Primary
            && self.nodes[peer].term >= self.nodes[id].term;
        if peer_is_primary {
            self.nodes[id].role = Role::Standby;
            let term = self.nodes[id].term;
            let have = self.nodes[id]
                .core
                .as_ref()
                .expect("just booted")
                .events_applied();
            self.trace
                .push(now, format!("n{id} rejoin as standby have={have}"));
            let frame = message(
                "hello",
                vec![
                    ("term", Value::from_u64(term)),
                    ("have_seq", Value::from_u64(have)),
                ],
            );
            self.send_frame(id, peer, frame);
        } else if self.nodes[id].role == Role::Fenced {
            self.trace.push(now, format!("n{id} restart still fenced"));
        } else if self.nodes[id].role == Role::Primary {
            self.nodes[id].role = Role::Primary;
            self.nodes[id].grace_until = now + 2 * ELECTION_BASE;
            self.trace.push(
                now,
                format!("n{id} resume primary term={}", self.nodes[id].term),
            );
        } else {
            // A crashed standby whose primary is also down must wait:
            // self-appointing could resurrect a log missing events the
            // primary acked solo. The hello retry loop rejoins it the
            // moment a primary reappears.
            self.trace
                .push(now, format!("n{id} restart awaiting a primary"));
        }
    }

    // ------------------------------------------------------------------
    // Frame handling: the real wire protocol, minus the threads.
    // ------------------------------------------------------------------

    fn on_frame(&mut self, from: usize, to: usize, frame: &[u8]) {
        let FrameDecode::Complete { payload, .. } = decode_frame(frame) else {
            return;
        };
        let Some(msg) = parse_message(&payload) else {
            return;
        };
        if self.nodes[to].core.is_none() {
            return;
        }
        match kind(&msg) {
            "rec" => self.on_rec(from, to, &msg),
            "ack" => self.on_ack(from, to, &msg),
            "hb" => self.on_hb(from, to, &msg),
            "hello" => self.on_hello(from, to, &msg),
            "meta" => self.on_meta(from, to, &msg),
            "refuse" => self.on_refuse(from, to, &msg),
            "diverged" => {
                let now = self.now();
                self.nodes[to].role = Role::Fenced;
                self.nodes[to].peer_attached = false;
                self.trace
                    .push(now, format!("n{to} fenced: diverged notice from n{from}"));
            }
            _ => {}
        }
    }

    fn on_rec(&mut self, from: usize, to: usize, msg: &Value) {
        let now = self.now();
        let node = &mut self.nodes[to];
        node.last_heard = now;
        node.heard_any = true;
        if node.role != Role::Standby {
            return;
        }
        let seq = msg.get("seq").and_then(Value::as_u64).unwrap_or(0);
        node.primary_seq = node.primary_seq.max(seq + 1);
        let Some(event) = msg
            .get("event")
            .and_then(|v| ref_serve::protocol::value_to_event(v).ok())
        else {
            return;
        };
        let core = node.core.as_mut().expect("checked in on_frame");
        match core.apply_repl(seq, event, &node.metrics) {
            ReplApply::Applied { epoch_fp } => {
                let have = core.events_applied();
                let mut fields = vec![("have", Value::from_u64(have))];
                if let Some((epoch, fp)) = epoch_fp {
                    fields.push(("epoch", Value::from_u64(epoch)));
                    fields.push(("fp", Value::str(format!("{fp:016x}"))));
                }
                self.trace
                    .push(now, format!("n{to} applied seq={seq} have={have}"));
                let frame = message("ack", fields);
                self.send_frame(to, from, frame);
            }
            ReplApply::Skipped => {
                let have = node.core.as_ref().expect("present").events_applied();
                let frame = message("ack", vec![("have", Value::from_u64(have))]);
                self.send_frame(to, from, frame);
            }
            ReplApply::Gap => {
                let term = node.term;
                let have = node.core.as_ref().expect("present").events_applied();
                self.trace
                    .push(now, format!("n{to} gap at seq={seq} have={have}: resync"));
                let frame = message(
                    "hello",
                    vec![
                        ("term", Value::from_u64(term)),
                        ("have_seq", Value::from_u64(have)),
                    ],
                );
                self.send_frame(to, from, frame);
            }
            ReplApply::WalError => {
                let poisoned = node
                    .core
                    .as_ref()
                    .and_then(|c| c.wal())
                    .map(|w| w.poisoned());
                if poisoned == Some(true) {
                    self.trace
                        .push(now, format!("n{to} standby wal poisoned: crashing"));
                    self.crash(to);
                    self.pending_restarts.push((now + POISON_RESTART, to));
                }
            }
        }
    }

    fn on_ack(&mut self, from: usize, to: usize, msg: &Value) {
        let now = self.now();
        if self.nodes[to].role != Role::Primary {
            return;
        }
        let have = msg.get("have").and_then(Value::as_u64).unwrap_or(0);
        // Fingerprint audit: a mismatched epoch fingerprint is a
        // diverged replica — fence it, stop trusting its acks.
        let epoch = msg.get("epoch").and_then(Value::as_u64);
        let fp = msg
            .get("fp")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok());
        if let (Some(epoch), Some(fp)) = (epoch, fp) {
            if let Some((want_epoch, expected)) = self.nodes[to].epoch_fps.get(&have).copied() {
                if want_epoch != epoch || expected != fp {
                    self.trace.push(
                        now,
                        format!(
                            "n{to} divergence detected: n{from} at have={have} epoch={epoch} fp={fp:016x} expected epoch={want_epoch} fp={expected:016x}"
                        ),
                    );
                    self.nodes[to].peer_attached = false;
                    self.nodes[to].peer_diverged = true;
                    let frame = message(
                        "diverged",
                        vec![
                            ("epoch", Value::from_u64(epoch)),
                            ("expected", Value::str(format!("{expected:016x}"))),
                            ("got", Value::str(format!("{fp:016x}"))),
                        ],
                    );
                    // The real primary closes the replication socket after
                    // the notice; the close (EOF) is observed by the peer
                    // as reliably as the notice itself, so the combined
                    // "you are diverged" signal rides a reliable send.
                    self.net.send_reliable(now, to, from, frame);
                    return;
                }
            }
        }
        // Reconnect path: an ack from a peer the primary does not have
        // attached is an implicit re-handshake (the real standby
        // reconnects and re-hellos; the ack carries the same have_seq).
        if !self.nodes[to].peer_attached && from == (to ^ 1) && !self.nodes[to].peer_diverged {
            let my_seq = self.nodes[to]
                .core
                .as_ref()
                .expect("present")
                .events_applied();
            if have <= my_seq {
                self.attach_standby(to, from, have);
            } else {
                let term = self.nodes[to].term;
                let frame = message(
                    "refuse",
                    vec![
                        ("reason", Value::str("standby_ahead")),
                        ("term", Value::from_u64(term)),
                    ],
                );
                self.send_frame(to, from, frame);
                return;
            }
        }
        let mut resolved: Vec<AckedEvent> = Vec::new();
        self.pending.retain(|p| {
            if p.primary == to && p.seq < have {
                if let Some(event_json) = &p.event_json {
                    resolved.push(AckedEvent {
                        shard: p.shard,
                        seq: p.seq,
                        event_json: event_json.clone(),
                    });
                }
                false
            } else {
                true
            }
        });
        for acked in resolved {
            self.trace
                .push(now, format!("n{to} acked seq={} (replicated)", acked.seq));
            self.acked.push(acked);
        }
    }

    fn on_hb(&mut self, from: usize, to: usize, msg: &Value) {
        let now = self.now();
        let term = msg.get("term").and_then(Value::as_u64).unwrap_or(0);
        match self.nodes[to].role {
            Role::Standby => {
                let node = &mut self.nodes[to];
                node.last_heard = now;
                node.heard_any = true;
                if term >= node.term {
                    node.term = term;
                }
                node.primary_seq = node
                    .primary_seq
                    .max(msg.get("seq").and_then(Value::as_u64).unwrap_or(0));
                let have = node.core.as_ref().expect("present").events_applied();
                let frame = message("ack", vec![("have", Value::from_u64(have))]);
                self.send_frame(to, from, frame);
            }
            Role::Primary => {
                if term < self.nodes[to].term {
                    // A deposed primary is still beating: fence it on
                    // contact by presenting the higher term.
                    let my_term = self.nodes[to].term;
                    let frame = message(
                        "hello",
                        vec![
                            ("term", Value::from_u64(my_term)),
                            ("have_seq", Value::from_u64(0)),
                        ],
                    );
                    self.send_frame(to, from, frame);
                } else if term > self.nodes[to].term {
                    self.nodes[to].role = Role::Fenced;
                    self.trace
                        .push(now, format!("n{to} fenced: higher-term heartbeat"));
                }
            }
            Role::Fenced => {}
        }
    }

    /// A hello presented to this node (fence notice or catch-up
    /// request), handled exactly like `repl::handle_standby`'s preamble.
    fn on_hello(&mut self, from: usize, to: usize, msg: &Value) {
        let now = self.now();
        let their_term = msg.get("term").and_then(Value::as_u64).unwrap_or(0);
        let have = msg.get("have_seq").and_then(Value::as_u64).unwrap_or(0);
        if their_term > self.nodes[to].term {
            if self.nodes[to].role != Role::Fenced {
                self.nodes[to].role = Role::Fenced;
                self.trace
                    .push(now, format!("n{to} fenced: hello with term {their_term}"));
            }
            let frame = message(
                "refuse",
                vec![
                    ("reason", Value::str("fenced")),
                    ("term", Value::from_u64(their_term)),
                ],
            );
            self.send_frame(to, from, frame);
            return;
        }
        if self.nodes[to].role != Role::Primary {
            let term = self.nodes[to].term;
            let frame = message(
                "refuse",
                vec![
                    ("reason", Value::str("not_primary")),
                    ("term", Value::from_u64(term)),
                ],
            );
            self.send_frame(to, from, frame);
            return;
        }
        let my_seq = self.nodes[to]
            .core
            .as_ref()
            .expect("present")
            .events_applied();
        if have > my_seq {
            let term = self.nodes[to].term;
            let frame = message(
                "refuse",
                vec![
                    ("reason", Value::str("standby_ahead")),
                    ("term", Value::from_u64(term)),
                ],
            );
            self.send_frame(to, from, frame);
            return;
        }
        if self.nodes[to].peer_diverged && from == (to ^ 1) {
            // A replica we caught diverging carries garbage state; its
            // only way back is an operator rebuild, not a re-handshake.
            // Re-state the verdict reliably so a hello that raced a lost
            // notice still learns it must fence.
            let frame = message(
                "diverged",
                vec![
                    ("epoch", Value::from_u64(0)),
                    ("expected", Value::str("0")),
                    ("got", Value::str("0")),
                ],
            );
            self.net.send_reliable(now, to, from, frame);
            return;
        }
        self.attach_standby(to, from, have);
    }

    /// Accepts a standby at `have`: meta, then stream the log tail —
    /// the catch-up the real `handle_standby` performs from disk.
    fn attach_standby(&mut self, primary: usize, standby: usize, have: u64) {
        let now = self.now();
        let term = self.nodes[primary].term;
        let meta = message("meta", vec![("term", Value::from_u64(term))]);
        self.send_frame(primary, standby, meta);
        let events = {
            let core = self.nodes[primary].core.as_ref().expect("present");
            match core.wal().expect("wal-backed").read_events() {
                Ok((first, mut events)) => {
                    debug_assert_eq!(first, 0, "retain_history keeps the full log");
                    events.split_off((have as usize).min(events.len()))
                }
                Err(_) => Vec::new(),
            }
        };
        let count = events.len();
        for (i, event) in events.into_iter().enumerate() {
            let frame = message(
                "rec",
                vec![
                    ("seq", Value::from_u64(have + i as u64)),
                    ("event", event_to_value(&event)),
                ],
            );
            self.send_frame(primary, standby, frame);
        }
        self.nodes[primary].peer_attached = true;
        self.trace.push(
            now,
            format!("n{primary} attached n{standby} from seq={have} (+{count} catch-up records)"),
        );
    }

    fn on_meta(&mut self, from: usize, to: usize, msg: &Value) {
        let now = self.now();
        let term = msg.get("term").and_then(Value::as_u64).unwrap_or(0);
        let node = &mut self.nodes[to];
        if node.role == Role::Standby {
            node.last_heard = now;
            node.heard_any = true;
            if term >= node.term {
                node.term = term;
            }
            self.trace
                .push(now, format!("n{to} meta from n{from} term={term}"));
        }
    }

    fn on_refuse(&mut self, from: usize, to: usize, msg: &Value) {
        let now = self.now();
        let reason = msg.get("reason").and_then(Value::as_str).unwrap_or("");
        if reason == "standby_ahead" && self.nodes[to].role == Role::Standby {
            // This replica holds history the primary lacks: accepting a
            // truncation would fork the past. Terminal fence.
            self.nodes[to].role = Role::Fenced;
            self.trace
                .push(now, format!("n{to} fenced: ahead of primary n{from}"));
        }
    }

    // ------------------------------------------------------------------
    // Timers: heartbeats, elections, ack deadlines, delayed restarts.
    // ------------------------------------------------------------------

    fn timers(&mut self) {
        let now = self.now();
        // Delayed restarts (poison crashes).
        let due: Vec<usize> = {
            let mut due = Vec::new();
            self.pending_restarts.retain(|(at, id)| {
                if *at <= now {
                    due.push(*id);
                    false
                } else {
                    true
                }
            });
            due
        };
        for id in due {
            self.restart(id);
        }
        // Heartbeats.
        if now >= self.next_hb {
            self.next_hb = now + HB_EVERY;
            for id in 0..NODES {
                let node = &self.nodes[id];
                // Heartbeats ride the replication connection: a primary
                // with no attached standby has no socket to write them
                // to, so a detached standby goes silent and falls into
                // its hello-retry loop instead of idling on fresh hbs.
                let Some(core) = node.core.as_ref() else {
                    continue;
                };
                if node.role == Role::Primary && node.peer_attached {
                    let term = node.term;
                    let seq = core.events_applied();
                    let frame = message(
                        "hb",
                        vec![
                            ("term", Value::from_u64(term)),
                            ("seq", Value::from_u64(seq)),
                        ],
                    );
                    self.send_frame(id, id ^ 1, frame);
                }
            }
        }
        // Ack deadlines: the client gets a loud replication error; the
        // event stays applied locally but is never ledgered as acked.
        let mut expired = Vec::new();
        self.pending.retain(|p| {
            if p.deadline <= now {
                expired.push((p.primary, p.seq, p.event_json.is_some()));
                false
            } else {
                true
            }
        });
        for (primary, seq, client) in expired {
            self.trace.push(
                now,
                format!("n{primary} ack timeout seq={seq} client={client}: not confirmed"),
            );
        }
        // Standby handshake retries and elections.
        for id in 0..NODES {
            let node = &self.nodes[id];
            if node.role != Role::Standby || node.core.is_none() {
                continue;
            }
            if now.saturating_sub(node.last_heard) > node.election_timeout {
                // Only a standby that was actually streaming may elect:
                // one that never heard its primary this boot cannot have
                // lost it, and one behind the primary's advertised log
                // position would promote a stale branch.
                let applied = node.core.as_ref().expect("present").events_applied();
                if node.heard_any && applied >= node.primary_seq {
                    self.promote(id);
                    continue;
                }
            }
            // Reconnect loop: a detached standby re-presents its hello
            // every 20ms until a primary accepts it.
            let node = &self.nodes[id];
            let silent = now.saturating_sub(node.last_heard) > Duration::from_millis(20);
            let due = now.saturating_sub(node.last_hello) > Duration::from_millis(20);
            if silent && due {
                let term = node.term;
                let have = node.core.as_ref().expect("present").events_applied();
                self.nodes[id].last_hello = now;
                let frame = message(
                    "hello",
                    vec![
                        ("term", Value::from_u64(term)),
                        ("have_seq", Value::from_u64(have)),
                    ],
                );
                self.send_frame(id, id ^ 1, frame);
            }
        }
    }

    fn promote(&mut self, id: usize) {
        let now = self.now();
        if self.nodes[id].diverged {
            // The fencing invariant says this must be impossible: a
            // diverged replica is caught by the fingerprint channel
            // before its election timer can fire.
            self.violation(format!("diverged standby n{id} promoted itself"));
        }
        let node = &mut self.nodes[id];
        node.term += 1;
        node.role = Role::Primary;
        node.promoted_ever = true;
        node.peer_attached = false;
        node.epoch_fps.clear();
        let term = node.term;
        self.trace.push(now, format!("n{id} promote term={term}"));
        // Depose the old primary if it is somehow still reachable.
        let frame = message(
            "hello",
            vec![
                ("term", Value::from_u64(term)),
                ("have_seq", Value::from_u64(0)),
            ],
        );
        self.send_frame(id, id ^ 1, frame);
    }

    // ------------------------------------------------------------------
    // The router model: fan ticks, quorum gate, coordinator, resync.
    // ------------------------------------------------------------------

    fn fleet_tick(&mut self) {
        let now = self.now();
        self.round += 1;
        let round = self.round;
        // Supervisor resync: a shard whose serving primary changed is
        // offered its current allotment again — WAL recovery may have
        // restored an older journaled split.
        for shard in 0..SHARDS {
            let Some(p) = self.route(shard) else { continue };
            if self.router_known_primary[shard] != Some(p) {
                let first = self.router_known_primary[shard].is_none();
                self.router_known_primary[shard] = Some(p);
                if !first {
                    let capacity = self.coord.resync_delivery(shard);
                    self.trace
                        .push(now, format!("router resync shard={shard} via n{p}"));
                    let reply =
                        self.primary_apply(p, &Request::Reallot { capacity }, AppKind::Internal);
                    if !is_ok(&reply) {
                        // A refusing primary (e.g. in its recovery grace)
                        // never journaled the split: keep it pending so a
                        // later round re-offers instead of drifting.
                        self.coord.mark_undelivered(shard);
                        self.trace
                            .push(now, format!("router resync shard={shard} undelivered"));
                    }
                }
            }
        }
        let mut delivered = [false; SHARDS];
        let mut reports: Vec<Option<Value>> = vec![None, None];
        for shard in 0..SHARDS {
            let Some(p) = self.route(shard) else { continue };
            let reply = self.primary_apply(p, &Request::Tick, AppKind::Internal);
            if is_ok(&reply) {
                delivered[shard] = true;
                reports[shard] = reply.get("report").cloned();
                self.demands[shard] = self.nodes[p]
                    .core
                    .as_ref()
                    .map(|c| c.engine().aggregate_demand())
                    .unwrap_or_else(|| self.demands[shard].clone());
            }
        }
        let reported = delivered.iter().filter(|d| **d).count();
        let full = reported == SHARDS;
        if !full {
            self.partial_rounds += 1;
        }
        if reported < self.quorum {
            // Below quorum the demand picture is too partial to act on:
            // freeze allotments; undelivered updates stay pending.
            self.quorum_freezes += 1;
            self.trace.push(
                now,
                format!("round={round} quorum freeze ({reported}/{})", SHARDS),
            );
        } else {
            let mut updates = self.coord.step(&self.demands);
            for (shard, update) in updates.iter_mut().enumerate() {
                if update.is_some() && !delivered[shard] {
                    self.coord.mark_undelivered(shard);
                    *update = None;
                }
            }
            for (shard, update) in updates.into_iter().enumerate() {
                let Some(capacity) = update else { continue };
                let p = self.route(shard).expect("delivered shard has a primary");
                let reply =
                    self.primary_apply(p, &Request::Reallot { capacity }, AppKind::Internal);
                if !is_ok(&reply) {
                    // The shard never journaled the new split: re-offer
                    // it next round instead of letting it drift.
                    self.coord.mark_undelivered(shard);
                    self.trace.push(
                        now,
                        format!("round={round} reallot undelivered shard={shard}"),
                    );
                }
            }
        }
        // Fleet fairness accounting: temporal-SI only merges over a
        // full picture — a partial fleet would be phantom data.
        let si: u64 = reports
            .iter()
            .flatten()
            .filter_map(|r| r.get("temporal_violations").and_then(Value::as_u64))
            .sum();
        if full {
            self.fleet_temporal_si += si;
        } else if self.opts.break_invariant == Some(BreakKind::SiDuringPartial) {
            self.fleet_temporal_si += si;
            self.si_partial_accruals += 1;
            self.trace.push(
                now,
                format!("round={round} BROKEN: fairness merged while partial"),
            );
        }
        self.trace
            .push(now, format!("round={round} reported={reported} si={si}"));
    }

    // ------------------------------------------------------------------
    // Scripted operations.
    // ------------------------------------------------------------------

    fn apply_client(&mut self, op: &ClientOp) {
        let now = self.now();
        let (agent, req) = match op {
            ClientOp::Join { agent, e0 } => (
                *agent,
                Request::Join {
                    agent: *agent,
                    source: ObservationSource::GroundTruth(
                        CobbDouglas::new(1.0, vec![*e0, 1.0 - *e0]).expect("valid elasticities"),
                    ),
                },
            ),
            ClientOp::Leave { agent } => (*agent, Request::Leave { agent: *agent }),
            ClientOp::Demand { agent, e0 } => (
                *agent,
                Request::Demand {
                    agent: *agent,
                    truth: Some(CobbDouglas::new(1.0, vec![*e0, 1.0 - *e0]).expect("valid")),
                },
            ),
            ClientOp::Query { agent } => (
                *agent,
                Request::Query {
                    agent: Some(*agent),
                },
            ),
        };
        let shard = self.ring.shard_of(agent);
        let Some(p) = self.route(shard) else {
            self.trace.push(
                now,
                format!("client agent={agent} shard={shard} unavailable"),
            );
            return;
        };
        let reply = self.primary_apply(p, &req, AppKind::Client);
        self.trace.push(
            now,
            format!(
                "client agent={agent} shard={shard} n{p} ok={}",
                is_ok(&reply)
            ),
        );
    }

    fn apply_fault(&mut self, op: &FaultOp) {
        let now = self.now();
        match op {
            FaultOp::Crash { node } => self.crash(*node),
            FaultOp::Restart { node } => self.restart(*node),
            FaultOp::Partition { shard, both } => {
                let a = shard * REPLICAS;
                let b = a + 1;
                let p = self.live_primary(*shard).unwrap_or(a);
                let s = p ^ 1;
                self.net.cut(p, s, None);
                if *both {
                    self.net.cut(s, p, None);
                }
                self.trace.push(
                    now,
                    format!("partition shard={shard} n{p}->n{s} both={both}"),
                );
                let _ = (a, b);
            }
            FaultOp::Heal { shard } => {
                let a = shard * REPLICAS;
                let b = a + 1;
                self.net.heal(a, b);
                self.net.heal(b, a);
                self.trace.push(now, format!("heal shard={shard}"));
            }
            FaultOp::TornWrite { node } => {
                let keep = self.rng.range(1, 12) as usize;
                self.nodes[*node].disk.arm_torn_write(keep);
                self.trace
                    .push(now, format!("torn write armed n{node} keep={keep}"));
            }
            FaultOp::FailSync { node, n } => {
                self.nodes[*node].disk.fail_next_syncs(*n);
                self.trace
                    .push(now, format!("fsync failures armed n{node} n={n}"));
            }
            FaultOp::BitFlip { node } => {
                let dir = self.nodes[*node].dir.clone();
                match self.nodes[*node].disk.flip_bit_in_covered_checkpoint(&dir) {
                    Some(path) => {
                        self.nodes[*node].bitflip_hit = true;
                        self.trace.push(
                            now,
                            format!(
                                "bit flip n{node} in {}",
                                path.file_name().unwrap_or_default().to_string_lossy()
                            ),
                        );
                    }
                    None => {
                        self.trace.push(
                            now,
                            format!("bit flip n{node} skipped: no covered checkpoint"),
                        );
                    }
                }
            }
            FaultOp::Diverge { shard } => {
                let target = (shard * REPLICAS..shard * REPLICAS + REPLICAS).find(|id| {
                    self.nodes[*id].role == Role::Standby && self.nodes[*id].core.is_some()
                });
                let Some(id) = target else {
                    self.trace
                        .push(now, format!("diverge shard={shard} skipped: no standby"));
                    return;
                };
                let node = &mut self.nodes[id];
                let core = node.core.take().expect("checked");
                let seq = core.events_applied();
                let plan = FaultPlan {
                    corrupt_standby_at: Some(seq),
                    ..FaultPlan::default()
                };
                node.core = Some(core.with_faults(plan));
                node.diverged = true;
                self.trace
                    .push(now, format!("diverge armed n{id} at seq={seq}"));
            }
            FaultOp::DelayBump { factor } => {
                self.net.base_delay *= *factor;
                self.net.jitter *= *factor;
                self.trace.push(now, format!("delay bump x{factor}"));
            }
        }
    }

    fn apply_op(&mut self, op: &Op) {
        match op {
            Op::Client(c) => self.apply_client(c),
            Op::Fault(f) => self.apply_fault(f),
            Op::FleetTick => self.fleet_tick(),
            Op::Scrub { node } => {
                let now = self.now();
                if self.nodes[*node].core.is_some() {
                    let node_ref = &mut self.nodes[*node];
                    let core = node_ref.core.as_mut().expect("present");
                    let reply = core.handle(&Request::Scrub, &node_ref.metrics);
                    let errors = reply
                        .get("errors")
                        .and_then(Value::as_array)
                        .map(<[Value]>::len);
                    self.trace
                        .push(now, format!("scrub n{node} errors={errors:?}"));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // The event loop.
    // ------------------------------------------------------------------

    fn step_to(&mut self, t: Duration) {
        self.clock.set(t);
        // Scheduled operations due at or before t.
        let ops: Vec<Op> = {
            let mut ops = Vec::new();
            while self.next_op < self.schedule.ops.len() && self.schedule.ops[self.next_op].at <= t
            {
                ops.push(self.schedule.ops[self.next_op].op.clone());
                self.next_op += 1;
            }
            ops
        };
        for op in &ops {
            self.apply_op(op);
        }
        // Network deliveries due at or before t.
        let packets = self.net.pop_due(t);
        for packet in packets {
            self.on_frame(packet.from, packet.to, &packet.frame);
        }
        self.timers();
    }

    fn run_script(&mut self) {
        let horizon = self.schedule.horizon;
        let mut t = Duration::ZERO;
        while t <= horizon {
            self.step_to(t);
            t += STEP;
        }
    }

    /// Heals everything, recovers every crashed node, and runs a
    /// fault-free convergence window so elections, catch-ups, fencing,
    /// and reallotments all complete before the invariants are judged.
    fn settle(&mut self) {
        let start = self.now();
        self.net.heal_all();
        self.trace.push(start, "settle: heal all links".to_string());
        // Fire the script's leftover restarts immediately, then any
        // poison restarts, then anything still down.
        let leftovers: Vec<Op> = self.schedule.ops[self.next_op..]
            .iter()
            .filter(|s| matches!(s.op, Op::Fault(FaultOp::Restart { .. })))
            .map(|s| s.op.clone())
            .collect();
        self.next_op = self.schedule.ops.len();
        for op in &leftovers {
            self.apply_op(op);
        }
        let down: Vec<usize> = {
            let mut down: Vec<usize> = self.pending_restarts.drain(..).map(|(_, id)| id).collect();
            for id in 0..NODES {
                if self.nodes[id].core.is_none() && !down.contains(&id) {
                    down.push(id);
                }
            }
            down.sort_unstable();
            down
        };
        for id in down {
            self.restart(id);
        }
        let end = start + SETTLE;
        let mut next_tick = start + TICK_EVERY;
        let mut t = start;
        while t <= end {
            self.step_to(t);
            if t >= next_tick {
                self.fleet_tick();
                next_tick += TICK_EVERY;
            }
            t += STEP;
        }
        // Drain whatever is still in flight.
        let mut guard = 0;
        while self.net.in_flight() > 0 && guard < 2000 {
            t += STEP;
            self.step_to(t);
            guard += 1;
        }
        // Two final full rounds over the quiesced fleet.
        self.fleet_tick();
        t += STEP;
        self.step_to(t);
        self.fleet_tick();
        let mut guard = 0;
        while self.net.in_flight() > 0 && guard < 2000 {
            t += STEP;
            self.step_to(t);
            guard += 1;
        }
    }

    // ------------------------------------------------------------------
    // Standing invariants.
    // ------------------------------------------------------------------

    fn authoritative(&self, shard: usize) -> Option<usize> {
        self.routed_primary(shard).or_else(|| {
            (shard * REPLICAS..shard * REPLICAS + REPLICAS)
                .filter(|id| self.nodes[*id].core.is_some() && self.nodes[*id].role != Role::Fenced)
                .max_by_key(|id| {
                    (
                        self.nodes[*id].term,
                        self.nodes[*id]
                            .core
                            .as_ref()
                            .expect("present")
                            .events_applied(),
                    )
                })
        })
    }

    fn check_invariants(&mut self) {
        // 1. Zero acked-event loss.
        for shard in 0..SHARDS {
            let Some(auth) = self.authoritative(shard) else {
                if self.acked.iter().any(|a| a.shard == shard) {
                    self.violation(format!(
                        "shard {shard} has acked events but no authoritative node"
                    ));
                }
                continue;
            };
            let dir = self.nodes[auth].dir.clone();
            let disk = self.nodes[auth].disk.clone();
            let events = match read_events_with(&disk, &dir) {
                Ok((0, events)) => events,
                Ok((first, _)) => {
                    self.violation(format!(
                        "shard {shard} history starts at {first}, expected 0"
                    ));
                    continue;
                }
                Err(e) => {
                    self.violation(format!("shard {shard} authoritative log unreadable: {e}"));
                    continue;
                }
            };
            let acked: Vec<(u64, String)> = self
                .acked
                .iter()
                .filter(|a| a.shard == shard)
                .map(|a| (a.seq, a.event_json.clone()))
                .collect();
            for (seq, event_json) in acked {
                match events.get(seq as usize) {
                    None => self.violation(format!(
                        "acked event lost: shard {shard} seq {seq} missing from n{auth} (log len {})",
                        events.len()
                    )),
                    Some(event) => {
                        let found = event_to_value(event).encode();
                        if found != event_json {
                            self.violation(format!(
                                "acked event mutated: shard {shard} seq {seq}: acked {event_json} found {found}"
                            ));
                        }
                    }
                }
            }
        }
        // 2. Bit-identical replay on every live, unfenced node.
        for id in 0..NODES {
            if self.nodes[id].core.is_none() || self.nodes[id].role == Role::Fenced {
                continue;
            }
            let dir = self.nodes[id].dir.clone();
            let disk = self.nodes[id].disk.clone();
            let events = match read_events_with(&disk, &dir) {
                Ok((0, events)) => events,
                Ok((first, _)) => {
                    self.violation(format!("n{id} history starts at {first}, expected 0"));
                    continue;
                }
                Err(e) => {
                    self.violation(format!("n{id} log unreadable for replay: {e}"));
                    continue;
                }
            };
            let live = self.nodes[id]
                .core
                .as_ref()
                .expect("present")
                .final_snapshot();
            match replay(self.shard_config.clone(), &events) {
                Ok(engine) => {
                    if engine.snapshot().encode() != live {
                        self.violation(format!(
                            "n{id} replay divergence: offline replay of {} events != live state",
                            events.len()
                        ));
                    }
                }
                Err(e) => self.violation(format!("n{id} replay failed: {e}")),
            }
        }
        // 3. Diverged replicas are fenced and never promoted.
        for id in 0..NODES {
            let node = &self.nodes[id];
            if !node.diverged {
                continue;
            }
            if node.promoted_ever {
                self.violation(format!("diverged replica n{id} was promoted"));
            } else if node.core.is_some() && node.role != Role::Fenced {
                self.violation(format!(
                    "diverged replica n{id} ended {:?}, expected Fenced",
                    node.role
                ));
            }
        }
        // 4. Shard capacities agree with the coordinator's allotments
        // (frozen or rolled-back reallotments never half-apply), and
        // capacity is conserved fleet-wide.
        let mut live_total = vec![0.0f64; self.total_capacity.len()];
        let mut all_live = true;
        for shard in 0..SHARDS {
            let Some(p) = self.routed_primary(shard) else {
                all_live = false;
                continue;
            };
            let capacity: Vec<f64> = self.nodes[p]
                .core
                .as_ref()
                .expect("present")
                .engine()
                .config()
                .capacity
                .as_slice()
                .to_vec();
            let want = self.coord.allotments()[shard].clone();
            for (r, (cap, want_r)) in capacity.iter().zip(&want).enumerate() {
                let tolerance = REALLOT_TOLERANCE * self.total_capacity[r];
                if (cap - want_r).abs() > tolerance {
                    self.violation(format!(
                        "shard {shard} capacity[{r}]={cap} but coordinator allotment={want_r} (tolerance {tolerance})",
                    ));
                }
                live_total[r] += cap;
            }
        }
        if all_live {
            let totals: Vec<(f64, f64)> = live_total
                .iter()
                .copied()
                .zip(self.total_capacity.iter().copied())
                .collect();
            for (r, (live, total)) in totals.into_iter().enumerate() {
                if (live - total).abs() > 1e-3 * total {
                    self.violation(format!(
                        "capacity not conserved: resource {r} sums to {live} of {total}",
                    ));
                }
            }
        }
        // 5. Temporal-SI accounting never accrued during partial rounds.
        if self.si_partial_accruals > 0 {
            self.violation(format!(
                "fleet fairness merged on {} partial round(s)",
                self.si_partial_accruals
            ));
        }
        // Scrub expectation: injected rot must have been found.
        for id in 0..NODES {
            if self.nodes[id].bitflip_hit {
                let found = self.nodes[id].metrics.snapshot().wal_scrub_errors;
                if found == 0 {
                    self.violation(format!("bit flip on n{id} never surfaced in a scrub"));
                }
            }
        }
        let now = self.now();
        self.trace.push(
            now,
            format!(
                "end acked={} rounds={} freezes={} partial={} si={} violations={}",
                self.acked.len(),
                self.round,
                self.quorum_freezes,
                self.partial_rounds,
                self.fleet_temporal_si,
                self.violations.len()
            ),
        );
    }

    fn finish(self) -> RunOutcome {
        RunOutcome {
            seed: self.seed,
            classes: self
                .schedule
                .classes
                .iter()
                .map(|c| c.to_string())
                .collect(),
            sim_events: self.trace.events(),
            trace_hash: self.trace.hash(),
            violations: self.violations,
            trace: self.trace.into_lines(),
            acked_events: self.acked.len() as u64,
            quorum_freezes: self.quorum_freezes,
            partial_rounds: self.partial_rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimOptions {
        SimOptions {
            quick: true,
            break_invariant: None,
        }
    }

    #[test]
    fn clean_seed_holds_every_invariant_and_reproduces() {
        let a = run_seed(0, &quick());
        assert!(a.violations.is_empty(), "violations: {:?}", a.violations);
        assert!(
            a.sim_events > 50,
            "suspiciously quiet run: {}",
            a.sim_events
        );
        let b = run_seed(0, &quick());
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "same seed must replay bit-identically"
        );
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn a_band_of_seeds_holds_every_invariant() {
        for seed in 0..20 {
            let outcome = run_seed(seed, &quick());
            assert!(
                outcome.violations.is_empty(),
                "seed {seed} violated: {:?}\ntrace tail: {:?}",
                outcome.violations,
                outcome.trace.iter().rev().take(25).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn fleet_makes_progress_and_acks_events() {
        let outcome = run_seed(3, &quick());
        assert!(outcome.acked_events > 0, "no client event was ever acked");
    }

    #[test]
    fn partitions_and_crashes_freeze_the_quorum_somewhere() {
        let mut froze = false;
        for seed in 0..40 {
            let outcome = run_seed(seed, &quick());
            assert!(
                outcome.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.violations
            );
            if outcome.quorum_freezes > 0 {
                assert!(outcome.partial_rounds > 0);
                froze = true;
                break;
            }
        }
        assert!(froze, "no seed in 0..40 ever froze the quorum");
    }

    #[test]
    fn divergence_is_fenced_and_never_promoted() {
        let mut seen = false;
        for seed in 0..60 {
            let outcome = run_seed(seed, &quick());
            assert!(
                outcome.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.violations
            );
            if outcome.classes.iter().any(|c| c == "diverge")
                && outcome
                    .trace
                    .iter()
                    .any(|l| l.contains("divergence detected"))
            {
                assert!(
                    outcome
                        .trace
                        .iter()
                        .any(|l| l.contains("fenced: diverged notice")),
                    "seed {seed}: divergence detected but replica never fenced"
                );
                seen = true;
                break;
            }
        }
        assert!(seen, "no seed in 0..60 exercised divergence detection");
    }

    #[test]
    fn broken_ack_invariant_is_caught_and_reproduced_bit_identically() {
        let opts = SimOptions {
            quick: true,
            break_invariant: Some(BreakKind::AckUnreplicated),
        };
        let mut caught = None;
        for seed in 0..300 {
            let outcome = run_seed(seed, &opts);
            if !outcome.violations.is_empty() {
                caught = Some((seed, outcome));
                break;
            }
        }
        let (seed, first) = caught.expect("300 seeds of unreplicated acks never lost an event");
        assert!(
            first.violations.iter().any(|v| v.contains("acked event")),
            "unexpected violation kind: {:?}",
            first.violations
        );
        // The printed seed must reproduce the exact same run.
        let again = run_seed(seed, &opts);
        assert_eq!(first.trace_hash, again.trace_hash);
        assert_eq!(first.violations, again.violations);
        assert_eq!(first.trace, again.trace);
    }

    #[test]
    fn broken_si_merge_is_caught_on_partial_rounds() {
        let opts = SimOptions {
            quick: true,
            break_invariant: Some(BreakKind::SiDuringPartial),
        };
        let mut caught = false;
        for seed in 0..80 {
            let outcome = run_seed(seed, &opts);
            if outcome.partial_rounds > 0 {
                assert!(
                    outcome
                        .violations
                        .iter()
                        .any(|v| v.contains("partial round")),
                    "seed {seed} had partial rounds but the phantom merge went unnoticed"
                );
                caught = true;
                break;
            }
        }
        assert!(caught, "no seed in 0..80 produced a partial round");
    }

    #[test]
    fn bit_flips_are_surfaced_by_scrub_not_swallowed() {
        let mut seen = false;
        for seed in 0..120 {
            let outcome = run_seed(seed, &quick());
            assert!(
                outcome.violations.is_empty(),
                "seed {seed}: {:?}",
                outcome.violations
            );
            if outcome
                .trace
                .iter()
                .any(|l| l.contains("bit flip n") && !l.contains("skipped"))
            {
                seen = true;
                break;
            }
        }
        assert!(seen, "no seed in 0..120 landed a bit flip");
    }
}
