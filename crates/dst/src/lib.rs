//! ref-dst: deterministic simulation testing for the ref-serve fleet.
//!
//! A FoundationDB-style, single-threaded, virtual-time fault simulator
//! that hosts the *whole* fleet in-process: two sharded [`ServiceCore`]s
//! with real WALs behind an in-memory [`SimDisk`], a primary and standby
//! per shard speaking the real replication frame protocol over a
//! [`SimNet`] that delays, drops, duplicates, partitions, and heals, a
//! router model with the real [`Coordinator`] and quorum gate, and
//! scripted clients — all driven by one seeded schedule on a
//! [`SimClock`] that only moves when the event loop says so.
//!
//! [`run_seed`] simulates one seed end to end and judges the standing
//! invariants (zero acked-event loss, bit-identical replay, divergence
//! fencing, reallotment consistency, no phantom fairness accounting).
//! Any violation carries the seed and the full per-event trace, and
//! `cargo run -p ref-bench --bin dst_sweep -- --seed N` replays it
//! bit-identically.
//!
//! [`ServiceCore`]: ref_serve::ServiceCore
//! [`Coordinator`]: ref_serve::Coordinator

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod fleet;
pub mod net;
pub mod schedule;
pub mod sim;

pub use disk::SimDisk;
pub use fleet::{run_seed, BreakKind, RunOutcome, SimOptions};
pub use net::{Packet, SimNet};
pub use schedule::{generate, Schedule};
pub use sim::{mix64, SimClock, SimRng, Trace};
