//! `SimNet`: a deterministic message bag standing in for the fleet's
//! TCP links.
//!
//! Every frame sent between simulated nodes goes into a priority queue
//! keyed by `(delivery time, send order)`. Per-send randomness (delay
//! jitter, loss, duplication) comes from the caller's seeded stream, so
//! the whole network is a pure function of the seed. Links are
//! *directional*: a partition can cut primary→standby while acks still
//! flow, or sever both ways. Delivery within one link is FIFO — delays
//! jitter, but a later send never overtakes an earlier one on the same
//! link, matching TCP's in-order contract. Reordering across *different*
//! links (and duplicated frames, standing in for retransmits) still
//! happens freely.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::sim::SimRng;

/// One frame in flight between two nodes.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending node id.
    pub from: usize,
    /// Receiving node id.
    pub to: usize,
    /// The framed bytes (exactly what a socket would carry).
    pub frame: Vec<u8>,
}

/// The simulated network (see the module docs).
#[derive(Debug)]
pub struct SimNet {
    queue: BTreeMap<(u64, u64), Packet>,
    seq: u64,
    /// Per-link FIFO floor: nanosecond delivery time of the last frame
    /// scheduled on the link.
    fifo_floor: BTreeMap<(usize, usize), u64>,
    /// Directional cuts: link → open-again time in nanoseconds
    /// (`u64::MAX` until explicitly healed).
    cuts: BTreeMap<(usize, usize), u64>,
    /// Fixed propagation delay added to every frame.
    pub base_delay: Duration,
    /// Uniform extra delay in `[0, jitter)` drawn per frame.
    pub jitter: Duration,
    /// Probability a frame is silently lost.
    pub drop_p: f64,
    /// Probability a frame is delivered twice (a retransmit duplicate).
    pub dup_p: f64,
    /// Frames dropped (loss or cut), delivered, and duplicated.
    pub dropped: u64,
    /// Frames handed to receivers.
    pub delivered: u64,
    /// Duplicate deliveries scheduled.
    pub duplicated: u64,
}

impl SimNet {
    /// A network with the given base delay/jitter and loss/dup rates.
    pub fn new(base_delay: Duration, jitter: Duration, drop_p: f64, dup_p: f64) -> SimNet {
        SimNet {
            queue: BTreeMap::new(),
            seq: 0,
            fifo_floor: BTreeMap::new(),
            cuts: BTreeMap::new(),
            base_delay,
            jitter,
            drop_p,
            dup_p,
            dropped: 0,
            delivered: 0,
            duplicated: 0,
        }
    }

    /// Whether the directional link `from → to` is cut at `now`.
    pub fn is_cut(&self, from: usize, to: usize, now: Duration) -> bool {
        self.cuts
            .get(&(from, to))
            .is_some_and(|until| *until > now.as_nanos() as u64)
    }

    /// Cuts the directional link until `until` (`None` = until healed).
    pub fn cut(&mut self, from: usize, to: usize, until: Option<Duration>) {
        let until = until.map_or(u64::MAX, |d| d.as_nanos() as u64);
        self.cuts.insert((from, to), until);
    }

    /// Reopens the directional link.
    pub fn heal(&mut self, from: usize, to: usize) {
        self.cuts.remove(&(from, to));
    }

    /// Reopens every link.
    pub fn heal_all(&mut self) {
        self.cuts.clear();
    }

    /// Sends `frame` from `from` to `to` at virtual time `now`. Returns
    /// `true` if at least one delivery was scheduled (frames on a cut
    /// link or lost to `drop_p` vanish without a trace at the receiver).
    pub fn send(
        &mut self,
        now: Duration,
        from: usize,
        to: usize,
        frame: Vec<u8>,
        rng: &mut SimRng,
    ) -> bool {
        if self.is_cut(from, to, now) {
            self.dropped += 1;
            return false;
        }
        if rng.chance(self.drop_p) {
            self.dropped += 1;
            return false;
        }
        let jitter_ns = (self.jitter.as_nanos() as f64 * rng.next_f64()) as u64;
        let at = now.as_nanos() as u64 + self.base_delay.as_nanos() as u64 + jitter_ns;
        let floor = self.fifo_floor.get(&(from, to)).copied().unwrap_or(0);
        let at = at.max(floor);
        self.fifo_floor.insert((from, to), at);
        self.seq += 1;
        self.queue.insert(
            (at, self.seq),
            Packet {
                from,
                to,
                frame: frame.clone(),
            },
        );
        if rng.chance(self.dup_p) {
            let extra = (self.jitter.as_nanos() as f64 * rng.next_f64()) as u64;
            let dup_at = at + self.base_delay.as_nanos() as u64 + extra;
            let dup_at = dup_at.max(self.fifo_floor.get(&(from, to)).copied().unwrap_or(0));
            self.fifo_floor.insert((from, to), dup_at);
            self.seq += 1;
            self.queue
                .insert((dup_at, self.seq), Packet { from, to, frame });
            self.duplicated += 1;
        }
        true
    }

    /// Sends `frame` reliably: immune to random loss and duplication,
    /// but still subject to link cuts, base delay, and FIFO ordering.
    ///
    /// Models signals the transport itself guarantees — a TCP connection
    /// close (EOF) is reliably observed by the peer unless the link is
    /// partitioned, unlike an individual datagram which `send` may drop.
    pub fn send_reliable(&mut self, now: Duration, from: usize, to: usize, frame: Vec<u8>) -> bool {
        if self.is_cut(from, to, now) {
            self.dropped += 1;
            return false;
        }
        let at = now.as_nanos() as u64 + self.base_delay.as_nanos() as u64;
        let floor = self.fifo_floor.get(&(from, to)).copied().unwrap_or(0);
        let at = at.max(floor);
        self.fifo_floor.insert((from, to), at);
        self.seq += 1;
        self.queue
            .insert((at, self.seq), Packet { from, to, frame });
        true
    }

    /// Virtual time of the next pending delivery, if any.
    pub fn next_due(&self) -> Option<Duration> {
        self.queue
            .keys()
            .next()
            .map(|(at, _)| Duration::from_nanos(*at))
    }

    /// Removes and returns every packet due at or before `now`, in
    /// deterministic `(time, send order)` order.
    pub fn pop_due(&mut self, now: Duration) -> Vec<Packet> {
        let cutoff = now.as_nanos() as u64;
        let later = self.queue.split_off(&(cutoff + 1, 0));
        let due: Vec<Packet> = std::mem::replace(&mut self.queue, later)
            .into_values()
            .collect();
        self.delivered += due.len() as u64;
        due
    }

    /// Number of frames still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> SimNet {
        SimNet::new(Duration::from_millis(1), Duration::from_millis(2), 0.0, 0.0)
    }

    #[test]
    fn same_link_delivery_is_fifo_despite_jitter() {
        let mut net = net();
        let mut rng = SimRng::new(3);
        for i in 0..50u64 {
            net.send(Duration::from_micros(i * 10), 0, 1, vec![i as u8], &mut rng);
        }
        let packets = net.pop_due(Duration::from_secs(1));
        let order: Vec<u8> = packets.iter().map(|p| p.frame[0]).collect();
        let sorted: Vec<u8> = (0..50).collect();
        assert_eq!(order, sorted);
    }

    #[test]
    fn directional_cuts_drop_one_way_only() {
        let mut net = net();
        let mut rng = SimRng::new(3);
        net.cut(0, 1, None);
        assert!(!net.send(Duration::ZERO, 0, 1, vec![1], &mut rng));
        assert!(net.send(Duration::ZERO, 1, 0, vec![2], &mut rng));
        assert_eq!(net.dropped, 1);
        net.heal(0, 1);
        assert!(net.send(Duration::from_millis(1), 0, 1, vec![3], &mut rng));

        let mut timed = SimNet::new(Duration::ZERO, Duration::ZERO, 0.0, 0.0);
        timed.cut(0, 1, Some(Duration::from_millis(10)));
        assert!(timed.is_cut(0, 1, Duration::from_millis(9)));
        assert!(!timed.is_cut(0, 1, Duration::from_millis(10)));
    }

    #[test]
    fn pop_due_returns_only_ripe_packets() {
        let mut net = net();
        let mut rng = SimRng::new(9);
        net.send(Duration::ZERO, 0, 1, vec![1], &mut rng);
        assert!(net.pop_due(Duration::from_micros(500)).is_empty());
        assert_eq!(net.in_flight(), 1);
        assert_eq!(net.pop_due(Duration::from_millis(5)).len(), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn duplication_schedules_a_second_delivery() {
        let mut net = SimNet::new(Duration::from_millis(1), Duration::ZERO, 0.0, 1.0);
        let mut rng = SimRng::new(11);
        net.send(Duration::ZERO, 0, 1, vec![7], &mut rng);
        let packets = net.pop_due(Duration::from_secs(1));
        assert_eq!(packets.len(), 2);
        assert_eq!(net.duplicated, 1);
    }
}
