//! Seeded fault-schedule generation.
//!
//! A schedule is the complete script of one simulated run: client
//! operations, fleet ticks, and fault injections, each pinned to a
//! virtual instant. Generation is a pure function of `(seed, quick)`,
//! so `dst_sweep --seed N` rebuilds the exact run that failed.
//!
//! Fault classes mix freely across a run with one safety constraint: a
//! shard given a **divergence** fault (a standby that silently corrupts
//! an apply) never also gets a partition or a primary crash. Divergence
//! detection rides the ack fingerprint channel; cutting that channel
//! while the replica is divergent models a *doubly* faulty world the
//! fencing invariant does not claim to cover.

use std::time::Duration;

use crate::sim::SimRng;

/// Number of shards in the simulated fleet.
pub const SHARDS: usize = 2;
/// Replicas per shard (primary + standby).
pub const REPLICAS: usize = 2;
/// Total simulated nodes.
pub const NODES: usize = SHARDS * REPLICAS;
/// Virtual interval between fleet coordination ticks.
pub const TICK_EVERY: Duration = Duration::from_millis(20);

/// A scripted client-side operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Admit agent `agent` with a ground-truth Cobb-Douglas utility of
    /// bandwidth elasticity `e0` (cache elasticity is `1 - e0`).
    Join {
        /// Agent id.
        agent: u64,
        /// Bandwidth elasticity in `(0, 1)`.
        e0: f64,
    },
    /// Remove the agent.
    Leave {
        /// Agent id.
        agent: u64,
    },
    /// Reset the agent's estimator with a new hidden truth.
    Demand {
        /// Agent id.
        agent: u64,
        /// New bandwidth elasticity.
        e0: f64,
    },
    /// Read-only market query (exercises the non-mutating path).
    Query {
        /// Agent id.
        agent: u64,
    },
}

/// A scripted fault injection.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultOp {
    /// Kill the node (its disk survives; a restart is scheduled).
    Crash {
        /// Node id.
        node: usize,
    },
    /// Recover the node from its own disk.
    Restart {
        /// Node id.
        node: usize,
    },
    /// Cut the replication links of `shard`: primary→standby always,
    /// and standby→primary too when `both`.
    Partition {
        /// Shard index.
        shard: usize,
        /// Sever both directions.
        both: bool,
    },
    /// Reopen every link of `shard`.
    Heal {
        /// Shard index.
        shard: usize,
    },
    /// Arm a torn write on the node's disk: the next WAL append lands
    /// partially, self-heal fails, the WAL poisons, the node crashes
    /// and recovers through torn-tail repair.
    TornWrite {
        /// Node id.
        node: usize,
    },
    /// Fail the node's next `n` fsyncs (transient append errors).
    FailSync {
        /// Node id.
        node: usize,
        /// Number of consecutive sync failures.
        n: u32,
    },
    /// Flip a bit in a covered checkpoint on the node's disk, then
    /// scrub to surface it.
    BitFlip {
        /// Node id.
        node: usize,
    },
    /// Make the shard's standby silently skip one engine apply — the
    /// fingerprint channel must catch and fence it.
    Diverge {
        /// Shard index.
        shard: usize,
    },
    /// Multiply network delay/jitter for the rest of the run.
    DelayBump {
        /// Multiplier applied to base delay and jitter.
        factor: u32,
    },
}

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// A client request.
    Client(ClientOp),
    /// A fault injection.
    Fault(FaultOp),
    /// One router coordination round (fan Tick, quorum gate, reallot).
    FleetTick,
    /// An online `scrub` request against the node.
    Scrub {
        /// Node id.
        node: usize,
    },
}

/// An operation pinned to a virtual instant.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// When the operation fires.
    pub at: Duration,
    /// What fires.
    pub op: Op,
}

/// A complete generated run script.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Operations in chronological order (stable on ties).
    pub ops: Vec<Scheduled>,
    /// Distinct fault classes present (for sweep accounting).
    pub classes: Vec<&'static str>,
    /// End of the scripted window; the simulator heals and settles after.
    pub horizon: Duration,
    /// Agents the script admits.
    pub agents: u64,
}

fn ms(x: u64) -> Duration {
    Duration::from_millis(x)
}

/// Generates the run script for `seed`. `quick` shortens the horizon
/// for CI smoke sweeps; the structure is identical.
pub fn generate(seed: u64, quick: bool) -> Schedule {
    let mut rng = SimRng::new(seed ^ 0x5C8E_D01E);
    let horizon = if quick { ms(280) } else { ms(640) };
    let mut ops: Vec<Scheduled> = Vec::new();
    let mut classes: Vec<&'static str> = Vec::new();

    // Clients: admissions early, demand churn and departures later.
    let agents = rng.range(4, 8);
    for agent in 1..=agents {
        ops.push(Scheduled {
            at: Duration::from_micros(rng.range(500, 12_000)),
            op: Op::Client(ClientOp::Join {
                agent,
                e0: 0.15 + 0.7 * rng.next_f64(),
            }),
        });
        if rng.chance(0.3) {
            ops.push(Scheduled {
                at: horizon / 4 + Duration::from_micros(rng.below(horizon.as_micros() as u64 / 2)),
                op: Op::Client(ClientOp::Demand {
                    agent,
                    e0: 0.15 + 0.7 * rng.next_f64(),
                }),
            });
        }
        if rng.chance(0.2) {
            ops.push(Scheduled {
                at: horizon / 2 + Duration::from_micros(rng.below(horizon.as_micros() as u64 / 3)),
                op: Op::Client(ClientOp::Leave { agent }),
            });
        }
    }
    for _ in 0..rng.range(2, 6) {
        ops.push(Scheduled {
            at: Duration::from_micros(rng.below(horizon.as_micros() as u64)),
            op: Op::Client(ClientOp::Query {
                agent: rng.range(1, agents + 1),
            }),
        });
    }

    // Coordination rounds on a fixed cadence.
    let mut t = TICK_EVERY;
    while t < horizon {
        ops.push(Scheduled {
            at: t,
            op: Op::FleetTick,
        });
        t += TICK_EVERY;
    }

    // Fault incidents. Track, per shard, whether a divergence fault or
    // a connectivity fault landed, to keep the two apart.
    let mut diverged_shard = [false; SHARDS];
    let mut connectivity_shard = [false; SHARDS];
    let mut crashed_node = [false; NODES];
    let mut fsync_shard = [false; SHARDS];
    let incidents = rng.range(1, 4);
    let push_class = |classes: &mut Vec<&'static str>, c: &'static str| {
        if !classes.contains(&c) {
            classes.push(c);
        }
    };
    for _ in 0..incidents {
        let lo = horizon.as_millis() as u64 / 5;
        let hi = horizon.as_millis() as u64 * 7 / 10;
        let at = ms(rng.range(lo, hi));
        match rng.below(100) {
            // Crash one node; restart it after a spell. Never crash a
            // node twice, and never both replicas of one shard.
            0..=24 => {
                let node = rng.below(NODES as u64) as usize;
                let peer = node ^ 1;
                if crashed_node[node] || crashed_node[peer] || diverged_shard[node / REPLICAS] {
                    continue;
                }
                crashed_node[node] = true;
                connectivity_shard[node / REPLICAS] = true;
                push_class(&mut classes, "crash");
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::Crash { node }),
                });
                ops.push(Scheduled {
                    at: at + ms(rng.range(40, 90)),
                    op: Op::Fault(FaultOp::Restart { node }),
                });
            }
            // Partition a shard's replication links; heal later.
            25..=49 => {
                let shard = rng.below(SHARDS as u64) as usize;
                if diverged_shard[shard] || connectivity_shard[shard] {
                    continue;
                }
                connectivity_shard[shard] = true;
                push_class(&mut classes, "partition");
                let both = rng.chance(0.5);
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::Partition { shard, both }),
                });
                ops.push(Scheduled {
                    at: at + ms(rng.range(70, 130)),
                    op: Op::Fault(FaultOp::Heal { shard }),
                });
            }
            // Torn write: partial append + failed self-heal + recovery.
            50..=64 => {
                let node = rng.below(NODES as u64) as usize;
                if crashed_node[node] || diverged_shard[node / REPLICAS] {
                    continue;
                }
                crashed_node[node] = true;
                connectivity_shard[node / REPLICAS] = true;
                push_class(&mut classes, "torn-write");
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::TornWrite { node }),
                });
            }
            // Delay storm for the rest of the run.
            65..=74 => {
                push_class(&mut classes, "delay");
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::DelayBump {
                        factor: rng.range(2, 5) as u32,
                    }),
                });
            }
            // Transient fsync failures. Kept off diverge shards: a
            // poisoned primary self-crashes, and no protocol can stop a
            // silently-corrupted standby from electing before the first
            // fingerprint audit has had a chance to run.
            75..=84 => {
                let node = rng.below(NODES as u64) as usize;
                if diverged_shard[node / REPLICAS] {
                    continue;
                }
                fsync_shard[node / REPLICAS] = true;
                push_class(&mut classes, "fsync");
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::FailSync {
                        node,
                        n: rng.range(1, 4) as u32,
                    }),
                });
            }
            // Latent rot in a covered checkpoint, then an online scrub.
            85..=92 => {
                let node = rng.below(NODES as u64) as usize;
                // Late enough that two checkpoints exist.
                let at = ms(rng.range(hi.saturating_sub(40).max(lo), hi));
                push_class(&mut classes, "bit-flip");
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::BitFlip { node }),
                });
                ops.push(Scheduled {
                    at: at + ms(15),
                    op: Op::Scrub { node },
                });
            }
            // Divergence: the fingerprint channel must fence the replica.
            _ => {
                let shard = rng.below(SHARDS as u64) as usize;
                if connectivity_shard[shard] || diverged_shard[shard] || fsync_shard[shard] {
                    continue;
                }
                diverged_shard[shard] = true;
                push_class(&mut classes, "diverge");
                ops.push(Scheduled {
                    at,
                    op: Op::Fault(FaultOp::Diverge { shard }),
                });
            }
        }
    }
    if classes.is_empty() {
        classes.push("clean");
    }

    // Stable chronological order; ties keep generation order.
    ops.sort_by_key(|s| s.at);
    Schedule {
        ops,
        classes,
        horizon,
        agents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(1234, true);
        let b = generate(1234, true);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(&b.ops) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.op, y.op);
        }
        assert_eq!(a.classes, b.classes);
    }

    #[test]
    fn schedules_are_chronological_and_classified() {
        for seed in 0..200 {
            let s = generate(seed, true);
            assert!(!s.classes.is_empty(), "seed {seed} has no classes");
            assert!(s.ops.windows(2).all(|w| w[0].at <= w[1].at));
            assert!(s.agents >= 4);
            // Divergence never shares a shard with connectivity faults.
            for shard in 0..SHARDS {
                let diverge = s.ops.iter().any(
                    |o| matches!(o.op, Op::Fault(FaultOp::Diverge { shard: sh }) if sh == shard),
                );
                let connectivity = s.ops.iter().any(|o| match &o.op {
                    Op::Fault(FaultOp::Partition { shard: sh, .. }) => *sh == shard,
                    Op::Fault(FaultOp::Crash { node }) | Op::Fault(FaultOp::TornWrite { node }) => {
                        node / REPLICAS == shard
                    }
                    _ => false,
                });
                assert!(
                    !(diverge && connectivity),
                    "seed {seed}: diverge and connectivity faults share shard {shard}"
                );
            }
        }
    }

    #[test]
    fn fault_classes_all_appear_across_seeds() {
        let mut seen: Vec<&'static str> = Vec::new();
        for seed in 0..400 {
            for class in generate(seed, true).classes {
                if !seen.contains(&class) {
                    seen.push(class);
                }
            }
        }
        for class in [
            "crash",
            "partition",
            "torn-write",
            "delay",
            "fsync",
            "bit-flip",
            "diverge",
        ] {
            assert!(seen.contains(&class), "class {class} never generated");
        }
    }
}
