//! The deterministic substrate: virtual time, seeded randomness, and
//! the hashed event trace.
//!
//! Nothing in the simulator reads [`std::time::Instant`], the OS
//! entropy pool, or thread scheduling. Time is a counter that advances
//! only when the scheduler says so; randomness is a `splitmix64` stream
//! forked per concern; and every observable step appends to a running
//! FNV-1a trace hash, so two runs of the same seed either match
//! bit-for-bit or point at the first divergent event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ref_serve::Clock;

/// Virtual monotonic time: a shared nanosecond counter implementing the
/// serve [`Clock`] seam. Cloning shares the counter, so the fleet and
/// every component it hands the clock to observe the same instant.
#[derive(Debug, Clone, Default)]
pub struct SimClock(Arc<AtomicU64>);

impl SimClock {
    /// A clock at virtual time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Moves time forward by `d`. Time never moves backwards.
    pub fn advance(&self, d: Duration) {
        self.0.fetch_add(
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            Ordering::SeqCst,
        );
    }

    /// Jumps to an absolute virtual instant (ignored if in the past).
    pub fn set(&self, at: Duration) {
        let nanos = u64::try_from(at.as_nanos()).unwrap_or(u64::MAX);
        self.0.fetch_max(nanos, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.0.load(Ordering::SeqCst))
    }
}

/// `splitmix64`: the same full-avalanche mixer the serve crate uses for
/// ring placement and election jitter, so simulated randomness and
/// product randomness share one arithmetic.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded deterministic random stream (`splitmix64` sequence).
///
/// Pure state machine: no process entropy, no locks. [`SimRng::fork`]
/// derives an independent stream for a sub-concern so inserting a draw
/// in one component cannot shift every draw after it fleet-wide.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A stream seeded (and stirred) from `seed`.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            state: mix64(seed ^ 0x00D5_7000_0D57),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)` (`0` when `n == 0`), via the
    /// multiply-high reduction — no modulo bias worth caring about.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` (`lo` when the range is empty).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi.saturating_sub(lo))
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// An independent stream for the sub-concern tagged `tag`.
    pub fn fork(&self, tag: u64) -> SimRng {
        SimRng {
            state: mix64(self.state ^ mix64(tag ^ 0xF04C)),
        }
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The append-only event trace: every observable simulator step, stamped
/// with virtual time, folded into a running FNV-1a hash.
///
/// The hash is the determinism oracle — two runs of one seed must agree
/// on it exactly — and the stored lines are the debugging artifact a
/// violation prints so `dst_sweep --seed N` reproduces the failure
/// event-for-event.
#[derive(Debug)]
pub struct Trace {
    lines: Vec<String>,
    hash: u64,
    events: u64,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace {
            lines: Vec::new(),
            hash: FNV_OFFSET,
            events: 0,
        }
    }
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records one event at virtual time `at`.
    pub fn push(&mut self, at: Duration, line: impl Into<String>) {
        let line = line.into();
        let stamped = format!("t={:>9}us {}", at.as_micros(), line);
        for byte in stamped.as_bytes() {
            self.hash ^= u64::from(*byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.hash ^= 0xFF;
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        self.events += 1;
        self.lines.push(stamped);
    }

    /// The running FNV-1a hash over every event so far.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Number of events recorded.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The recorded lines (chronological).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the trace, returning the lines.
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances_only_on_request() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        let shared = clock.clone();
        shared.set(Duration::from_millis(3)); // past: ignored
        assert_eq!(clock.now(), Duration::from_millis(5));
        shared.set(Duration::from_millis(9));
        assert_eq!(clock.now(), Duration::from_millis(9));
    }

    #[test]
    fn rng_streams_are_deterministic_and_forks_independent() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        let mut f1 = SimRng::new(42).fork(1);
        let mut f2 = SimRng::new(42).fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn rng_range_stays_in_bounds() {
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
            let p = rng.next_f64();
            assert!((0.0..1.0).contains(&p));
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.range(5, 5), 5);
    }

    #[test]
    fn trace_hash_is_order_and_content_sensitive() {
        let mut a = Trace::new();
        a.push(Duration::from_millis(1), "x");
        a.push(Duration::from_millis(2), "y");
        let mut b = Trace::new();
        b.push(Duration::from_millis(2), "y");
        b.push(Duration::from_millis(1), "x");
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.events(), 2);

        let mut c = Trace::new();
        c.push(Duration::from_millis(1), "x");
        c.push(Duration::from_millis(2), "y");
        assert_eq!(a.hash(), c.hash());
    }
}
