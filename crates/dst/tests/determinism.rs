//! Determinism proof for the fault simulator: the whole point of DST
//! is that a seed IS the run. Re-running any seed must reproduce the
//! per-event trace bit-identically (same FNV hash, same lines, same
//! violations), and distinct seeds must actually explore distinct
//! executions rather than collapsing onto one trajectory.

use proptest::prelude::*;
use ref_dst::{run_seed, RunOutcome, SimOptions};

fn quick() -> SimOptions {
    SimOptions {
        quick: true,
        break_invariant: None,
    }
}

fn outcomes_bit_identical(a: &RunOutcome, b: &RunOutcome) -> bool {
    a.trace_hash == b.trace_hash
        && a.trace == b.trace
        && a.violations == b.violations
        && a.sim_events == b.sim_events
        && a.acked_events == b.acked_events
        && a.quorum_freezes == b.quorum_freezes
        && a.partial_rounds == b.partial_rounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Same seed, two fresh simulators: byte-identical trace hash and
    /// event-for-event identical traces. Nothing may leak in from wall
    /// clocks, map iteration order, or allocator addresses.
    #[test]
    fn same_seed_is_bit_identical(seed in 0u64..20_000) {
        let first = run_seed(seed, &quick());
        let again = run_seed(seed, &quick());
        prop_assert!(
            outcomes_bit_identical(&first, &again),
            "seed {seed}: reruns disagree ({:016x} vs {:016x})",
            first.trace_hash,
            again.trace_hash
        );
        prop_assert!(first.violations.is_empty(), "seed {seed}: {:?}", first.violations);
    }

    /// Adjacent seeds diverge: the seed feeds the schedule, the
    /// network, and the jitter, so two different seeds virtually never
    /// hash to the same trace. (A collision here would mean the seed
    /// is not actually reaching the simulation.)
    #[test]
    fn different_seeds_explore_different_runs(seed in 0u64..20_000) {
        let a = run_seed(seed, &quick());
        let b = run_seed(seed + 1, &quick());
        prop_assert!(
            a.trace_hash != b.trace_hash,
            "seeds {} and {} produced the same trace hash",
            seed,
            seed + 1
        );
    }
}
