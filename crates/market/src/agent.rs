//! Per-agent market state: identity, observation source, and the online
//! utility estimate.

use ref_core::online::OnlineEstimator;
use ref_core::utility::CobbDouglas;

use crate::error::{MarketError, Result};

/// Stable identity of a market participant.
pub type AgentId = u64;

/// Consecutive degenerate refits after which an agent is quarantined:
/// its estimator stops ingesting observations (the last good fit keeps
/// driving allocation) until a demand change resets it. Three in a row
/// distinguishes a workload that has genuinely gone pathological from a
/// single unlucky measurement.
pub const QUARANTINE_THRESHOLD: usize = 3;

/// Where an agent's per-epoch performance observations come from.
///
/// The market itself never sees ground truth — it always allocates from the
/// *fitted* utilities — but it must know how to produce an observation at
/// the end of each epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservationSource {
    /// A hidden true Cobb-Douglas utility: performance at a bundle is the
    /// true utility value. Used by closed-loop deployments where the
    /// "measurement" is an analytic model, and by tests that check
    /// convergence of fitted elasticities toward a known truth.
    GroundTruth(CobbDouglas),
    /// A named benchmark from [`ref_workloads::profiles`]: each epoch the
    /// engine runs the cycle-level simulator with the agent's granted
    /// cache/bandwidth shares and observes the achieved IPC. Only valid in
    /// two-resource markets laid out as `[bandwidth GB/s, cache MB]`.
    Simulated {
        /// Benchmark name resolvable by [`ref_workloads::profiles::by_name`].
        benchmark: String,
    },
    /// Observations arrive from outside through
    /// [`MarketEvent::ObservationReported`](crate::events::MarketEvent):
    /// the agent is a real workload measured by an external profiler.
    External,
}

impl ObservationSource {
    /// Validates the source against the market's resource dimension.
    pub fn validate(&self, num_resources: usize) -> Result<()> {
        match self {
            ObservationSource::GroundTruth(u) => {
                if u.elasticities().len() != num_resources {
                    return Err(MarketError::InvalidArgument(format!(
                        "ground-truth utility covers {} resources, market has {num_resources}",
                        u.elasticities().len()
                    )));
                }
                Ok(())
            }
            ObservationSource::Simulated { benchmark } => {
                if num_resources != 2 {
                    return Err(MarketError::InvalidArgument(
                        "simulated agents require a [bandwidth, cache] market".to_string(),
                    ));
                }
                if ref_workloads::profiles::by_name(benchmark).is_none() {
                    return Err(MarketError::InvalidArgument(format!(
                        "unknown benchmark {benchmark:?}"
                    )));
                }
                Ok(())
            }
            ObservationSource::External => Ok(()),
        }
    }
}

/// One live participant: estimator state plus bookkeeping.
#[derive(Debug, Clone)]
pub struct AgentState {
    /// The agent's stable id.
    pub id: AgentId,
    /// Epoch at which the agent was admitted.
    pub joined_epoch: u64,
    /// How this agent's observations are produced.
    pub source: ObservationSource,
    /// The adaptive Cobb-Douglas estimate driving allocation.
    pub estimator: OnlineEstimator,
}

impl AgentState {
    /// Admits a new agent with the naive uniform prior.
    pub fn new(
        id: AgentId,
        joined_epoch: u64,
        source: ObservationSource,
        num_resources: usize,
    ) -> Result<AgentState> {
        source.validate(num_resources)?;
        Ok(AgentState {
            id,
            joined_epoch,
            source,
            estimator: OnlineEstimator::new(num_resources)?,
        })
    }

    /// The utility this agent currently reports to the mechanism: the
    /// fitted estimate with elasticities re-scaled to sum to one (Eq. 12).
    pub fn reported_utility(&self) -> CobbDouglas {
        self.estimator.utility().rescaled()
    }

    /// Whether the agent's online refit has repeatedly produced a
    /// degenerate (non-finite or invalid) Cobb-Douglas fit and is held on
    /// its last good estimate. Quarantined agents keep their current
    /// allocation behavior but stop ingesting observations; a
    /// `DemandChanged` event resets the estimator and lifts the
    /// quarantine. Derived from the estimator's consecutive-degenerate
    /// counter, so it survives snapshot/restore without extra state.
    pub fn quarantined(&self) -> bool {
        self.estimator.consecutive_degenerate() >= QUARANTINE_THRESHOLD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_agent_starts_on_uniform_prior() {
        let truth = CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap();
        let a = AgentState::new(1, 0, ObservationSource::GroundTruth(truth), 2).unwrap();
        assert_eq!(a.reported_utility().elasticities(), &[0.5, 0.5]);
        assert_eq!(a.estimator.num_observations(), 0);
    }

    #[test]
    fn source_validation_checks_dimensions_and_names() {
        let truth = CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap();
        assert!(ObservationSource::GroundTruth(truth.clone())
            .validate(3)
            .is_err());
        assert!(ObservationSource::GroundTruth(truth).validate(2).is_ok());
        assert!(ObservationSource::Simulated {
            benchmark: "histogram".to_string()
        }
        .validate(2)
        .is_ok());
        assert!(ObservationSource::Simulated {
            benchmark: "histogram".to_string()
        }
        .validate(3)
        .is_err());
        assert!(ObservationSource::Simulated {
            benchmark: "no-such-benchmark".to_string()
        }
        .validate(2)
        .is_err());
        assert!(ObservationSource::External.validate(5).is_ok());
    }
}
