//! Per-epoch fairness auditing with violation counters.
//!
//! Every epoch the engine checks the allocation it just granted against the
//! utilities the agents reported, using [`ref_core::properties`]. REF's
//! theorem guarantees SI, EF and PE for the *reported* utilities, so any
//! violation signals an engine bug (stale cache, numerical drift) — the
//! auditor is the service's tripwire, not a statement about hidden truths.
//!
//! Early epochs run on the naive prior while estimators warm up, and a
//! `DemandChanged` flush briefly re-enters that regime, so the auditor
//! tracks violations both in total and after a configurable warm-up epoch
//! count per agent population; the service-level objective is *zero*
//! post-warm-up violations.

use ref_core::properties::FairnessReport;

/// Counts fairness violations over the market's lifetime.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Auditor {
    /// Epochs audited in total.
    pub epochs_audited: u64,
    /// Epochs with at least one sharing-incentive violation.
    pub si_violation_epochs: u64,
    /// Epochs with at least one envy edge.
    pub ef_violation_epochs: u64,
    /// Epochs that were not Pareto efficient.
    pub pe_violation_epochs: u64,
    /// SI-violation epochs occurring after the warm-up window.
    pub si_after_warmup: u64,
    /// EF-violation epochs occurring after the warm-up window.
    pub ef_after_warmup: u64,
    /// PE-violation epochs occurring after the warm-up window.
    pub pe_after_warmup: u64,
    /// Epochs with at least one temporal (windowed) SI violation.
    pub temporal_si_violation_epochs: u64,
    /// Temporal-SI-violation epochs occurring after the warm-up window.
    pub temporal_si_after_warmup: u64,
}

impl Auditor {
    /// Creates an auditor with zeroed counters.
    pub fn new() -> Auditor {
        Auditor::default()
    }

    /// Records one epoch's fairness report.
    ///
    /// `warm` is whether the epoch still falls in the warm-up window (the
    /// engine derives it from epochs-since-last-membership-change).
    pub fn record(&mut self, report: &FairnessReport, warm: bool) {
        self.epochs_audited += 1;
        if !report.sharing_incentives() {
            self.si_violation_epochs += 1;
            if !warm {
                self.si_after_warmup += 1;
            }
        }
        if !report.envy_free() {
            self.ef_violation_epochs += 1;
            if !warm {
                self.ef_after_warmup += 1;
            }
        }
        if !report.pareto_efficient {
            self.pe_violation_epochs += 1;
            if !warm {
                self.pe_after_warmup += 1;
            }
        }
    }

    /// Records one epoch's temporal sharing-incentive verdict (whether any
    /// agent's full delivered-vs-entitled window fell below the slack).
    /// Called once per audited epoch, alongside [`Auditor::record`].
    pub fn record_temporal(&mut self, violated: bool, warm: bool) {
        if violated {
            self.temporal_si_violation_epochs += 1;
            if !warm {
                self.temporal_si_after_warmup += 1;
            }
        }
    }

    /// SI violations after warm-up (the headline service objective).
    pub fn si_violations_after_warmup(&self) -> u64 {
        self.si_after_warmup
    }

    /// Temporal SI violations after warm-up.
    pub fn temporal_si_violations_after_warmup(&self) -> u64 {
        self.temporal_si_after_warmup
    }

    /// Whether every audited epoch after warm-up satisfied all three
    /// properties.
    pub fn clean_after_warmup(&self) -> bool {
        self.si_after_warmup == 0 && self.ef_after_warmup == 0 && self.pe_after_warmup == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ref_core::mechanism::{Mechanism, ProportionalElasticity};
    use ref_core::resource::{Allocation, Bundle, Capacity};
    use ref_core::utility::CobbDouglas;

    fn fair_report() -> FairnessReport {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ];
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        FairnessReport::check(&agents, &alloc, &c)
    }

    fn unfair_report() -> FairnessReport {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ];
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let alloc = Allocation::new(
            vec![
                Bundle::new(vec![23.0, 11.0]).unwrap(),
                Bundle::new(vec![1.0, 1.0]).unwrap(),
            ],
            &c,
        )
        .unwrap();
        FairnessReport::check(&agents, &alloc, &c)
    }

    #[test]
    fn clean_epochs_leave_counters_zero() {
        let mut a = Auditor::new();
        for _ in 0..5 {
            a.record(&fair_report(), false);
        }
        assert_eq!(a.epochs_audited, 5);
        assert!(a.clean_after_warmup());
        assert_eq!(a.si_violation_epochs, 0);
    }

    #[test]
    fn warmup_violations_do_not_count_against_the_slo() {
        let mut a = Auditor::new();
        a.record(&unfair_report(), true);
        assert_eq!(a.si_violation_epochs, 1);
        assert_eq!(a.si_violations_after_warmup(), 0);
        assert!(a.clean_after_warmup());
        a.record(&unfair_report(), false);
        assert_eq!(a.si_violations_after_warmup(), 1);
        assert!(!a.clean_after_warmup());
    }

    #[test]
    fn temporal_verdicts_are_counted_separately() {
        let mut a = Auditor::new();
        a.record_temporal(false, false);
        assert_eq!(a.temporal_si_violation_epochs, 0);
        a.record_temporal(true, true);
        assert_eq!(a.temporal_si_violation_epochs, 1);
        assert_eq!(a.temporal_si_violations_after_warmup(), 0);
        a.record_temporal(true, false);
        assert_eq!(a.temporal_si_violation_epochs, 2);
        assert_eq!(a.temporal_si_violations_after_warmup(), 1);
        // Temporal verdicts do not touch the per-epoch SLO.
        assert!(a.clean_after_warmup());
    }
}
