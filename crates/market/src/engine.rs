//! The market engine: an epoch loop over a churning agent population.
//!
//! [`MarketEngine::pump`] drains the event queue in submission order.
//! Membership events (`AgentJoined`, `AgentLeft`, `DemandChanged`) mutate
//! the population immediately; each `EpochTick` then runs one epoch:
//!
//! 1. collect the *reported* utilities (each agent's fitted Cobb-Douglas
//!    estimate, re-scaled per Eq. 12);
//! 2. fingerprint the population (agent ids + quantized elasticities) and
//!    recompute fair shares with proportional elasticity only when the
//!    fingerprint moved — otherwise reuse the cached allocation;
//! 3. audit the granted allocation for SI/EF/PE against the reported
//!    utilities;
//! 4. enforce each resource's shares with a stride scheduler and record
//!    the achieved service;
//! 5. produce one performance observation per engine-driven agent (hidden
//!    ground truth or the cycle-level simulator) at a deterministically
//!    jittered allocation, feeding each agent's online estimator.
//!
//! Every random choice is derived from `(seed, epoch, agent id)`, never
//! from engine call history, so a market restored from a
//! [snapshot](crate::snapshot) replays the exact observation stream — and
//! therefore the exact allocations — the original would have produced.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ref_core::mechanism::{
    CreditInner, CreditMechanism, EqualSlowdown, GpWarmStart, MaxWelfare, Mechanism,
    ProportionalElasticity,
};
use ref_core::online::OnlineEstimator;
use ref_core::properties::FairnessReport;
use ref_core::resource::{Allocation, Capacity};
use ref_core::utility::{CobbDouglas, Utility};
use ref_sched::StrideScheduler;
use ref_sim::config::{Bandwidth, CacheSize, PlatformConfig};
use ref_sim::MulticoreSystem;
use ref_workloads::profiles::by_name;

use crate::agent::{AgentId, AgentState, ObservationSource};
use crate::audit::Auditor;
use crate::epoch::{EnforcementSummary, EpochReport, ReallocationOutcome};
use crate::error::{MarketError, Result};
use crate::events::{EventQueue, MarketEvent};
use crate::ledger::CreditLedger;
use crate::metrics::MarketMetrics;
use crate::snapshot::{AgentSnapshot, MarketSnapshot, SNAPSHOT_VERSION};
use crate::warm::WarmStartCache;

/// Smallest scheduler weight granted to an agent whose fitted elasticity
/// collapsed to (near) zero for a resource; keeps the stride scheduler
/// constructible without materially distorting service.
const MIN_STRIDE_WEIGHT: f64 = 1e-9;

/// Floor applied to simulated cache/bandwidth shares so the partitioned
/// system stays constructible even for vanishing fitted shares.
const MIN_SIM_SHARE: f64 = 0.005;

/// Which allocation mechanism the market runs each epoch.
///
/// [`MechanismKind::ProportionalElasticity`] is the paper's closed-form
/// REF mechanism and the default. The optimization-backed kinds solve a
/// geometric program per reallocation; for those the engine keeps a
/// [`WarmStartCache`] and seeds each solve from the previous epoch's
/// optimum (see [`MarketMetrics::warm_start_hits`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismKind {
    /// Closed-form REF (§4.1): proportional to re-scaled elasticities.
    ProportionalElasticity,
    /// Nash-social-welfare maximization via GP (§4.5).
    MaxWelfare {
        /// Impose the SI/EF/PE constraints of Eq. 11.
        fairness: bool,
    },
    /// Egalitarian max-min weighted utility via GP (§4.5, §5.5).
    EqualSlowdown {
        /// Impose the SI/EF/PE constraints of Eq. 11.
        fairness: bool,
    },
    /// Credit fairness: the inner mechanism tilted each epoch by the
    /// [`CreditLedger`]'s per-agent weights, so agents cumulatively below
    /// their fair share are repaid across epochs.
    Credit {
        /// The optimization-backed mechanism whose objective is tilted.
        inner: CreditInner,
    },
}

impl MechanismKind {
    /// Stable wire label (used by the snapshot format and service config).
    pub fn label(&self) -> &'static str {
        match self {
            MechanismKind::ProportionalElasticity => "proportional-elasticity",
            MechanismKind::MaxWelfare { fairness: false } => "max-welfare",
            MechanismKind::MaxWelfare { fairness: true } => "max-welfare-fair",
            MechanismKind::EqualSlowdown { fairness: false } => "equal-slowdown",
            MechanismKind::EqualSlowdown { fairness: true } => "equal-slowdown-fair",
            MechanismKind::Credit {
                inner: CreditInner::MaxWelfare,
            } => "credit-max-welfare",
            MechanismKind::Credit {
                inner: CreditInner::EqualSlowdown,
            } => "credit-equal-slowdown",
        }
    }

    /// Parses a [`MechanismKind::label`].
    pub fn from_label(label: &str) -> Option<MechanismKind> {
        match label {
            "proportional-elasticity" => Some(MechanismKind::ProportionalElasticity),
            "max-welfare" => Some(MechanismKind::MaxWelfare { fairness: false }),
            "max-welfare-fair" => Some(MechanismKind::MaxWelfare { fairness: true }),
            "equal-slowdown" => Some(MechanismKind::EqualSlowdown { fairness: false }),
            "equal-slowdown-fair" => Some(MechanismKind::EqualSlowdown { fairness: true }),
            // Bare "credit" is accepted as shorthand for the default inner.
            "credit" | "credit-max-welfare" => Some(MechanismKind::Credit {
                inner: CreditInner::MaxWelfare,
            }),
            "credit-equal-slowdown" => Some(MechanismKind::Credit {
                inner: CreditInner::EqualSlowdown,
            }),
            _ => None,
        }
    }

    /// Whether this kind consults the credit ledger for per-agent weights.
    pub fn credit_weighted(&self) -> bool {
        matches!(self, MechanismKind::Credit { .. })
    }

    /// Whether this mechanism's solves benefit from a warm start (i.e. it
    /// is optimization-backed). Closed-form mechanisms never consult the
    /// cache and never touch the warm-start counters.
    pub fn warm_startable(&self) -> bool {
        !matches!(self, MechanismKind::ProportionalElasticity)
    }

    /// Dispatches to the mechanism implementation. `weights` carries the
    /// ledger's per-agent credit weights and is consulted only by
    /// [`MechanismKind::Credit`].
    fn allocate_warm(
        &self,
        agents: &[CobbDouglas],
        capacity: &Capacity,
        warm: Option<&GpWarmStart>,
        weights: &[f64],
    ) -> ref_core::error::Result<(Allocation, Option<GpWarmStart>)> {
        match self {
            MechanismKind::ProportionalElasticity => {
                ProportionalElasticity.allocate_warm(agents, capacity, warm)
            }
            MechanismKind::MaxWelfare { fairness: true } => {
                MaxWelfare::with_fairness().allocate_warm(agents, capacity, warm)
            }
            MechanismKind::MaxWelfare { fairness: false } => {
                MaxWelfare::without_fairness().allocate_warm(agents, capacity, warm)
            }
            MechanismKind::EqualSlowdown { fairness: true } => {
                EqualSlowdown::with_fairness().allocate_warm(agents, capacity, warm)
            }
            MechanismKind::EqualSlowdown { fairness: false } => {
                EqualSlowdown::new().allocate_warm(agents, capacity, warm)
            }
            MechanismKind::Credit { inner } => CreditMechanism::new(*inner, weights.to_vec())?
                .allocate_warm(agents, capacity, warm),
        }
    }
}

/// Static configuration of a market.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Total capacity of each resource. For markets with simulated agents
    /// the layout is `[bandwidth GB/s, cache MB]` (the paper's platform).
    pub capacity: Capacity,
    /// Reallocation tolerance: fitted elasticities are quantized to this
    /// grid when fingerprinting the population, so estimate drift below
    /// the tolerance reuses the cached allocation.
    pub realloc_tolerance: f64,
    /// Relative tolerance for the per-epoch SI/EF/PE audit. Must absorb
    /// the drift incremental reallocation permits: a cache-hit epoch may
    /// serve an allocation computed from utilities up to
    /// `realloc_tolerance` stale, so this should sit comfortably above
    /// that (the default is an order of magnitude over the default
    /// reallocation tolerance).
    pub audit_tolerance: f64,
    /// Epochs after a membership or demand change during which audit
    /// violations are excused (estimators are re-converging).
    pub warmup_epochs: u64,
    /// Relative amplitude of the allocation jitter used to excite the
    /// estimators' regression designs (0 disables excitation — estimators
    /// then starve on collinear observations and keep their priors).
    pub excitation: f64,
    /// Stride-scheduler quanta simulated per resource per epoch
    /// (0 disables enforcement reporting).
    pub enforcement_quanta: u64,
    /// Instructions each simulated agent retires per epoch.
    pub sim_instructions: u64,
    /// Root seed for all per-epoch deterministic randomness.
    pub seed: u64,
    /// The allocation mechanism to run each epoch.
    pub mechanism: MechanismKind,
    /// Window size `W` (in epochs) of the temporal sharing-incentive
    /// audit: over any `W` consecutive epochs an agent's cumulative
    /// delivered utility must reach its cumulative equal-share utility
    /// minus the slack. Agents are only judged once their ledger window
    /// is full.
    pub temporal_window: u64,
    /// Relative slack of the temporal SI inequality: a violation is
    /// `sum(delivered) < (1 - temporal_slack) * sum(entitled)`.
    pub temporal_slack: f64,
}

impl MarketConfig {
    /// Creates a configuration with default tuning.
    pub fn new(capacity: Capacity) -> MarketConfig {
        MarketConfig {
            capacity,
            realloc_tolerance: 1e-3,
            audit_tolerance: 1e-2,
            warmup_epochs: 8,
            excitation: 0.1,
            enforcement_quanta: 2_000,
            sim_instructions: 30_000,
            seed: 0x5EED,
            mechanism: MechanismKind::ProportionalElasticity,
            temporal_window: 16,
            temporal_slack: 0.05,
        }
    }

    /// Sets the reallocation tolerance.
    pub fn with_realloc_tolerance(mut self, tol: f64) -> MarketConfig {
        self.realloc_tolerance = tol;
        self
    }

    /// Sets the audit tolerance.
    pub fn with_audit_tolerance(mut self, tol: f64) -> MarketConfig {
        self.audit_tolerance = tol;
        self
    }

    /// Sets the audit warm-up window.
    pub fn with_warmup_epochs(mut self, epochs: u64) -> MarketConfig {
        self.warmup_epochs = epochs;
        self
    }

    /// Sets the excitation amplitude.
    pub fn with_excitation(mut self, excitation: f64) -> MarketConfig {
        self.excitation = excitation;
        self
    }

    /// Sets the per-epoch enforcement quanta.
    pub fn with_enforcement_quanta(mut self, quanta: u64) -> MarketConfig {
        self.enforcement_quanta = quanta;
        self
    }

    /// Sets the per-epoch simulated instruction budget.
    pub fn with_sim_instructions(mut self, instructions: u64) -> MarketConfig {
        self.sim_instructions = instructions;
        self
    }

    /// Sets the root randomness seed.
    pub fn with_seed(mut self, seed: u64) -> MarketConfig {
        self.seed = seed;
        self
    }

    /// Sets the allocation mechanism.
    pub fn with_mechanism(mut self, mechanism: MechanismKind) -> MarketConfig {
        self.mechanism = mechanism;
        self
    }

    /// Sets the temporal SI audit window (epochs).
    pub fn with_temporal_window(mut self, window: u64) -> MarketConfig {
        self.temporal_window = window;
        self
    }

    /// Sets the temporal SI audit slack.
    pub fn with_temporal_slack(mut self, slack: f64) -> MarketConfig {
        self.temporal_slack = slack;
        self
    }

    /// Whether two configs describe the same market up to the capacity
    /// *values*. The sharded serving tier reallots capacity between shards
    /// at runtime via [`MarketEvent::CapacityRealloted`], so a recovered
    /// checkpoint may legitimately carry a different capacity than the boot
    /// config — but every tuning knob and the resource arity must match,
    /// or the WAL belongs to a different market.
    pub fn compatible_with(&self, other: &MarketConfig) -> bool {
        self.capacity.num_resources() == other.capacity.num_resources()
            && self.realloc_tolerance == other.realloc_tolerance
            && self.audit_tolerance == other.audit_tolerance
            && self.warmup_epochs == other.warmup_epochs
            && self.excitation == other.excitation
            && self.enforcement_quanta == other.enforcement_quanta
            && self.sim_instructions == other.sim_instructions
            && self.seed == other.seed
            && self.mechanism == other.mechanism
            && self.temporal_window == other.temporal_window
            && self.temporal_slack == other.temporal_slack
    }

    /// Checks the tuning parameters.
    pub(crate) fn validate(&self) -> Result<()> {
        if !(self.realloc_tolerance.is_finite() && self.realloc_tolerance > 0.0) {
            return Err(MarketError::InvalidArgument(format!(
                "realloc tolerance must be positive and finite, got {}",
                self.realloc_tolerance
            )));
        }
        if !(self.audit_tolerance.is_finite() && self.audit_tolerance > 0.0) {
            return Err(MarketError::InvalidArgument(format!(
                "audit tolerance must be positive and finite, got {}",
                self.audit_tolerance
            )));
        }
        if !(self.excitation.is_finite() && (0.0..0.5).contains(&self.excitation)) {
            return Err(MarketError::InvalidArgument(format!(
                "excitation must lie in [0, 0.5), got {}",
                self.excitation
            )));
        }
        if self.temporal_window == 0 {
            return Err(MarketError::InvalidArgument(
                "temporal window must cover at least one epoch".to_string(),
            ));
        }
        if !(self.temporal_slack.is_finite() && (0.0..1.0).contains(&self.temporal_slack)) {
            return Err(MarketError::InvalidArgument(format!(
                "temporal slack must lie in [0, 1), got {}",
                self.temporal_slack
            )));
        }
        Ok(())
    }
}

/// Identity of a population for reallocation caching: which agents are
/// live, their fitted elasticities on a `realloc_tolerance` grid, and the
/// capacity. Equal fingerprints guarantee the mechanism would produce an
/// allocation within tolerance of the cached one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    pub(crate) ids: Vec<AgentId>,
    pub(crate) quantized: Vec<i64>,
    pub(crate) capacity_bits: Vec<u64>,
    /// Quantized credit weights (empty for non-credit mechanisms), so
    /// balance drift beyond the tolerance invalidates the cached
    /// allocation.
    pub(crate) tilt: Vec<i64>,
}

impl Fingerprint {
    fn compute(
        ids: &[AgentId],
        reported: &[CobbDouglas],
        capacity: &Capacity,
        tolerance: f64,
        weights: &[f64],
    ) -> Fingerprint {
        let quantized = reported
            .iter()
            .flat_map(|u| {
                u.elasticities()
                    .iter()
                    .map(|a| (a / tolerance).round() as i64)
            })
            .collect();
        Fingerprint {
            ids: ids.to_vec(),
            quantized,
            capacity_bits: capacity.as_slice().iter().map(|c| c.to_bits()).collect(),
            tilt: weights
                .iter()
                .map(|w| (w / tolerance).round() as i64)
                .collect(),
        }
    }
}

/// The long-running allocation engine.
///
/// See the [crate docs](crate) for the epoch loop and a quickstart.
#[derive(Debug)]
pub struct MarketEngine {
    config: MarketConfig,
    population: BTreeMap<AgentId, AgentState>,
    queue: EventQueue,
    epoch: u64,
    stable_since: u64,
    cache: Option<(Fingerprint, Allocation)>,
    warm: WarmStartCache,
    auditor: Auditor,
    metrics: MarketMetrics,
    ledger: CreditLedger,
}

impl MarketEngine {
    /// Creates an empty market.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidArgument`] for out-of-range tuning
    /// parameters.
    pub fn new(config: MarketConfig) -> Result<MarketEngine> {
        config.validate()?;
        Ok(MarketEngine {
            config,
            population: BTreeMap::new(),
            queue: EventQueue::new(),
            epoch: 0,
            stable_since: 0,
            cache: None,
            warm: WarmStartCache::new(),
            auditor: Auditor::new(),
            metrics: MarketMetrics::new(),
            ledger: CreditLedger::new(),
        })
    }

    /// Enqueues an event; nothing happens until [`MarketEngine::pump`].
    pub fn submit(&mut self, event: MarketEvent) {
        self.queue.push(event);
    }

    /// Enqueues a batch of events in order.
    pub fn submit_all<I: IntoIterator<Item = MarketEvent>>(&mut self, events: I) {
        for e in events {
            self.queue.push(e);
        }
    }

    /// Processes every pending event in submission order and returns one
    /// report per `EpochTick` executed.
    ///
    /// Processing is fail-fast: on the first invalid event (duplicate
    /// join, unknown agent, malformed observation) the event is dropped,
    /// [`MarketMetrics::rejected_events`] is bumped, the error is returned
    /// and the remaining events stay queued for a later pump.
    ///
    /// # Errors
    ///
    /// Returns the first event's [`MarketError`]; the engine state remains
    /// consistent (the failed event has no partial effect).
    pub fn pump(&mut self) -> Result<Vec<EpochReport>> {
        let mut reports = Vec::new();
        while let Some(event) = self.queue.pop() {
            match self.apply(event) {
                Ok(Some(report)) => reports.push(report),
                Ok(None) => {}
                Err(e) => {
                    self.metrics.rejected_events += 1;
                    return Err(e);
                }
            }
        }
        Ok(reports)
    }

    /// Applies one event immediately, bypassing the queue.
    ///
    /// This is the per-event entry point for transports (ref-serve) that
    /// need to map each event's outcome back to the request that carried
    /// it. Applying a sequence of events through `apply_now` — continuing
    /// past errors — leaves the engine in exactly the state that
    /// [`MarketEngine::submit_all`] followed by [`MarketEngine::pump`]
    /// retried to completion would: both paths apply events one at a time
    /// in order and bump [`MarketMetrics::rejected_events`] on failure.
    /// Events already queued via [`MarketEngine::submit`] stay queued and
    /// are *not* reordered relative to this call; mixing the two styles on
    /// one engine is almost never what you want.
    ///
    /// # Errors
    ///
    /// Returns the event's [`MarketError`]; the failed event has no
    /// partial effect.
    pub fn apply_now(&mut self, event: MarketEvent) -> Result<Option<EpochReport>> {
        match self.apply(event) {
            Ok(report) => Ok(report),
            Err(e) => {
                self.metrics.rejected_events += 1;
                Err(e)
            }
        }
    }

    fn apply(&mut self, event: MarketEvent) -> Result<Option<EpochReport>> {
        self.metrics.events += 1;
        match event {
            MarketEvent::AgentJoined { id, source } => {
                if self.population.contains_key(&id) {
                    return Err(MarketError::DuplicateAgent(id));
                }
                let agent =
                    AgentState::new(id, self.epoch, source, self.config.capacity.num_resources())?;
                self.population.insert(id, agent);
                self.ledger.admit(id);
                self.metrics.joins += 1;
                self.stable_since = self.epoch;
                Ok(None)
            }
            MarketEvent::AgentLeft { id } => {
                if self.population.remove(&id).is_none() {
                    return Err(MarketError::UnknownAgent(id));
                }
                self.warm.invalidate(id);
                self.ledger.settle(id);
                self.metrics.leaves += 1;
                self.stable_since = self.epoch;
                Ok(None)
            }
            MarketEvent::DemandChanged { id, new_truth } => {
                let num_resources = self.config.capacity.num_resources();
                let agent = self
                    .population
                    .get_mut(&id)
                    .ok_or(MarketError::UnknownAgent(id))?;
                if let Some(truth) = new_truth {
                    if !matches!(agent.source, ObservationSource::GroundTruth(_)) {
                        return Err(MarketError::InvalidArgument(format!(
                            "agent {id} has no ground truth to replace"
                        )));
                    }
                    let source = ObservationSource::GroundTruth(truth);
                    source.validate(num_resources)?;
                    agent.source = source;
                }
                agent.estimator = OnlineEstimator::new(num_resources)?;
                self.warm.invalidate(id);
                // The estimator restart — which also lifts any quarantine —
                // begins a new demand regime: accrual from the old one
                // (or from quarantined epochs) must not buy future weight.
                self.ledger.rebaseline(id);
                self.metrics.demand_changes += 1;
                self.stable_since = self.epoch;
                Ok(None)
            }
            MarketEvent::ObservationReported {
                id,
                allocation,
                performance,
            } => {
                let agent = self
                    .population
                    .get_mut(&id)
                    .ok_or(MarketError::UnknownAgent(id))?;
                if agent.source != ObservationSource::External {
                    return Err(MarketError::InvalidArgument(format!(
                        "agent {id} is engine-driven and cannot accept external observations"
                    )));
                }
                if agent.quarantined() {
                    return Err(MarketError::QuarantinedAgent(id));
                }
                let degen_before = agent.estimator.degenerate_refits();
                let inc_before = agent.estimator.incremental_refits();
                let refit = agent.estimator.observe(allocation, performance)?;
                self.metrics.external_observations += 1;
                self.metrics.refits += u64::from(refit);
                self.metrics.incremental_refits +=
                    (agent.estimator.incremental_refits() - inc_before) as u64;
                self.metrics.degenerate_refits +=
                    (agent.estimator.degenerate_refits() - degen_before) as u64;
                // The agent was not quarantined on entry, so crossing the
                // threshold here is exactly one transition.
                if agent.quarantined() {
                    self.metrics.quarantines += 1;
                    self.warm.invalidate(id);
                    self.ledger.rebaseline(id);
                }
                Ok(None)
            }
            MarketEvent::CapacityRealloted { capacity } => {
                let current = self.config.capacity.num_resources();
                if capacity.len() != current {
                    return Err(MarketError::InvalidArgument(format!(
                        "reallotment has {} resources, market has {current}",
                        capacity.len()
                    )));
                }
                let capacity = Capacity::new(capacity)?;
                // The capacity participates in the allocation fingerprint,
                // so dropping the cache here is belt-and-braces; the warmup
                // restart mirrors membership churn — allotments settling
                // between shards should not trip the fairness audit.
                self.config.capacity = capacity;
                self.cache = None;
                // The previous optimum lived on the old capacity frontier;
                // it may be infeasible under the new one.
                self.warm.clear();
                // Entitlements scale with capacity, so mid-window evidence
                // mixes regimes; balances are normalized ratios and keep.
                self.ledger.clear_windows();
                self.metrics.reallotments += 1;
                self.stable_since = self.epoch;
                Ok(None)
            }
            MarketEvent::EpochTick => self.run_epoch().map(Some),
        }
    }

    fn run_epoch(&mut self) -> Result<EpochReport> {
        let epoch = self.epoch;
        let warm = epoch.saturating_sub(self.stable_since) < self.config.warmup_epochs;
        let ids: Vec<AgentId> = self.population.keys().copied().collect();
        self.epoch += 1;
        self.metrics.epochs += 1;
        if ids.is_empty() {
            return Ok(EpochReport {
                epoch,
                agents: ids,
                realloc: ReallocationOutcome::EmptyMarket,
                allocation: None,
                fairness: None,
                enforcement: Vec::new(),
                warm,
                observations: 0,
                refits: 0,
                temporal_violations: 0,
                worst_temporal_ratio: 1.0,
            });
        }

        let reported: Vec<CobbDouglas> = self
            .population
            .values()
            .map(AgentState::reported_utility)
            .collect();
        // Credit mechanisms tilt this epoch's objective by the balances
        // accrued through the *previous* epoch.
        let weights = if self.config.mechanism.credit_weighted() {
            self.ledger.weights(&ids)
        } else {
            Vec::new()
        };
        let fingerprint = Fingerprint::compute(
            &ids,
            &reported,
            &self.config.capacity,
            self.config.realloc_tolerance,
            &weights,
        );
        let (allocation, realloc) = match &self.cache {
            Some((cached_fp, cached_alloc)) if *cached_fp == fingerprint => {
                self.metrics.cache_hits += 1;
                (cached_alloc.clone(), ReallocationOutcome::CacheHit)
            }
            _ => {
                let kind = self.config.mechanism;
                let num_resources = self.config.capacity.num_resources();
                // Seed optimization-backed mechanisms from the previous
                // epoch's optimum; the solver falls back to the cold start
                // on any unusable hint, so a hit can only save work.
                let hint = if kind.warm_startable() {
                    let hint = self.warm.hint(&ids, num_resources);
                    if hint.is_some() {
                        self.metrics.warm_start_hits += 1;
                    } else {
                        self.metrics.warm_start_misses += 1;
                    }
                    hint
                } else {
                    None
                };
                let (alloc, next_hint) =
                    kind.allocate_warm(&reported, &self.config.capacity, hint.as_ref(), &weights)?;
                match next_hint {
                    Some(w) => self.warm.store(&ids, num_resources, &w),
                    None => self.warm.clear(),
                }
                self.cache = Some((fingerprint, alloc.clone()));
                self.metrics.reallocations += 1;
                (alloc, ReallocationOutcome::Reallocated)
            }
        };

        let fairness = FairnessReport::check_with_tolerance(
            &reported,
            &allocation,
            &self.config.capacity,
            self.config.audit_tolerance,
        );
        self.auditor.record(&fairness, warm);

        // Credit accrual and the temporal SI audit. Delivered and entitled
        // utilities are measured under each agent's ground truth when the
        // market holds one (reported utilities can lag a demand change —
        // exactly the episodes temporal SI exists to catch) and under the
        // reported fit otherwise. The equal-share entitlement is `C/N`.
        let equal_share: Vec<f64> = self
            .config
            .capacity
            .as_slice()
            .iter()
            .map(|c| c / ids.len() as f64)
            .collect();
        let measured: Vec<(AgentId, f64, f64)> = self
            .population
            .values()
            .enumerate()
            .map(|(i, agent)| {
                let u = match &agent.source {
                    ObservationSource::GroundTruth(truth) => truth.clone(),
                    _ => agent.reported_utility(),
                };
                let delivered = u.value_slice(allocation.bundle(i).as_slice());
                let entitled = u.value_slice(&equal_share);
                (agent.id, delivered, entitled)
            })
            .collect();
        let accrual = self
            .ledger
            .accrue(&measured, self.config.temporal_window as usize);
        self.metrics.credits_accrued += accrual.accrued;
        self.metrics.credits_spent += accrual.spent;
        let (temporal_violations, worst_temporal_ratio) = self.ledger.temporal_check(
            self.config.temporal_window as usize,
            self.config.temporal_slack,
        );
        self.auditor.record_temporal(temporal_violations > 0, warm);
        if !warm {
            self.metrics.temporal_si_violations += temporal_violations as u64;
        }

        let enforcement = self.enforce(&allocation)?;
        let (observations, refits, incremental, degenerate, quarantines) =
            self.collect_observations(epoch, &allocation)?;
        self.metrics.refits += refits as u64;
        self.metrics.incremental_refits += incremental;
        self.metrics.degenerate_refits += degenerate;
        self.metrics.quarantines += quarantines;

        Ok(EpochReport {
            epoch,
            agents: ids,
            realloc,
            allocation: Some(allocation),
            fairness: Some(fairness),
            enforcement,
            warm,
            observations,
            refits,
            temporal_violations,
            worst_temporal_ratio,
        })
    }

    /// Drives a stride scheduler per resource against the granted shares.
    /// Resources are independent schedulers, so they fan out across the
    /// worker pool; summaries are returned in resource order regardless of
    /// the thread count.
    fn enforce(&self, allocation: &Allocation) -> Result<Vec<EnforcementSummary>> {
        if self.config.enforcement_quanta == 0 {
            return Ok(Vec::new());
        }
        let capacity = &self.config.capacity;
        let quanta = self.config.enforcement_quanta;
        ref_pool::par_map(capacity.num_resources(), |resource| {
            let target: Vec<f64> = allocation
                .bundles()
                .iter()
                .map(|b| b.get(resource) / capacity.get(resource))
                .collect();
            let weights: Vec<f64> = target.iter().map(|w| w.max(MIN_STRIDE_WEIGHT)).collect();
            let mut stride = StrideScheduler::new(weights).map_err(MarketError::InvalidArgument)?;
            for _ in 0..quanta {
                stride.next_quantum();
            }
            let achieved = stride.service_shares();
            let max_deviation = achieved
                .iter()
                .zip(&target)
                .map(|(a, t)| (a - t).abs())
                .fold(0.0, f64::max);
            Ok(EnforcementSummary {
                resource,
                target,
                achieved,
                max_deviation,
            })
        })
        .into_iter()
        .collect()
    }

    /// Produces one observation per engine-driven agent at a jittered
    /// allocation and feeds the online estimators. Returns
    /// `(observations, refits, incremental refit delta, degenerate refit
    /// delta, quarantine transitions)` for this epoch.
    fn collect_observations(
        &mut self,
        epoch: u64,
        allocation: &Allocation,
    ) -> Result<(usize, usize, u64, u64, u64)> {
        let config = self.config.clone();

        // Simulated agents run jointly in one partitioned multicore system.
        let mut simulated: Vec<(usize, AgentId, String)> = Vec::new();
        for (i, agent) in self.population.values().enumerate() {
            if let ObservationSource::Simulated { benchmark } = &agent.source {
                simulated.push((i, agent.id, benchmark.clone()));
            }
        }
        let sim_results = if simulated.is_empty() {
            BTreeMap::new()
        } else {
            run_simulated(&config, epoch, &simulated, allocation)?
        };

        // Each agent's observation and refit touches only that agent's
        // estimator, so the per-agent work fans out across the worker
        // pool: `work` hands every slot's `&mut AgentState` to exactly
        // one pool task. Outcomes are folded in agent-id order, so the
        // counters — and the first error, if any — are identical at every
        // thread count.
        struct ObservationSlot<'a> {
            bundle: Vec<f64>,
            was_quarantined: bool,
            degen_before: usize,
            inc_before: usize,
            agent: &'a mut AgentState,
            outcome: Result<(usize, usize)>,
        }
        let mut work: Vec<ObservationSlot<'_>> = self
            .population
            .values_mut()
            .enumerate()
            .map(|(i, agent)| ObservationSlot {
                bundle: allocation.bundle(i).as_slice().to_vec(),
                was_quarantined: agent.quarantined(),
                degen_before: agent.estimator.degenerate_refits(),
                inc_before: agent.estimator.incremental_refits(),
                agent,
                outcome: Ok((0, 0)),
            })
            .collect();
        ref_pool::par_for_each_mut(&mut work, |_, slot| {
            slot.outcome = observe_agent(&config, epoch, &slot.bundle, slot.agent, &sim_results);
        });
        let mut observations = 0;
        let mut refits = 0;
        let mut incremental = 0u64;
        let mut degenerate = 0u64;
        let mut quarantines = 0u64;
        for slot in work {
            let (obs, refit) = slot.outcome?;
            observations += obs;
            refits += refit;
            incremental += (slot.agent.estimator.incremental_refits() - slot.inc_before) as u64;
            degenerate += (slot.agent.estimator.degenerate_refits() - slot.degen_before) as u64;
            if !slot.was_quarantined && slot.agent.quarantined() {
                quarantines += 1;
                self.warm.invalidate(slot.agent.id);
                self.ledger.rebaseline(slot.agent.id);
            }
        }
        Ok((observations, refits, incremental, degenerate, quarantines))
    }

    /// The static configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// The next epoch number to execute.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-resource sum of the live agents' *reported* elasticities — the
    /// demand summary a cross-shard coordinator exchanges to rebalance
    /// capacity allotments between shards. Cheap (one pass over the
    /// population) and derived purely from reported utilities, so it leaks
    /// nothing beyond what the allocation mechanism already uses.
    pub fn aggregate_demand(&self) -> Vec<f64> {
        let mut demand = vec![0.0; self.config.capacity.num_resources()];
        for agent in self.population.values() {
            let reported = agent.reported_utility();
            for (d, e) in demand.iter_mut().zip(reported.elasticities()) {
                *d += e;
            }
        }
        demand
    }

    /// Number of live agents.
    pub fn num_live_agents(&self) -> usize {
        self.population.len()
    }

    /// Live agent ids in ascending order (allocation bundle order).
    pub fn live_agents(&self) -> Vec<AgentId> {
        self.population.keys().copied().collect()
    }

    /// A live agent's state, if present.
    pub fn agent(&self, id: AgentId) -> Option<&AgentState> {
        self.population.get(&id)
    }

    /// Events submitted but not yet pumped.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The fairness auditor.
    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// The warm-start cache seeding optimization-backed mechanisms.
    pub fn warm_cache(&self) -> &WarmStartCache {
        &self.warm
    }

    /// The credit ledger (updated every epoch regardless of mechanism, so
    /// switching a recovered market to credit fairness starts from real
    /// history).
    pub fn ledger(&self) -> &CreditLedger {
        &self.ledger
    }

    /// Lifetime service counters.
    pub fn metrics(&self) -> &MarketMetrics {
        &self.metrics
    }

    /// Captures the full market state (population, observation logs,
    /// allocation cache, counters) as a versioned snapshot.
    ///
    /// Pending events are *not* captured — pump before snapshotting to
    /// checkpoint between batches.
    pub fn snapshot(&self) -> MarketSnapshot {
        MarketSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            epoch: self.epoch,
            stable_since: self.stable_since,
            auditor: self.auditor.clone(),
            metrics: self.metrics.clone(),
            cache: self.cache.clone(),
            warm: self.warm.clone(),
            ledger: self.ledger.clone(),
            agents: self
                .population
                .values()
                .map(|a| AgentSnapshot {
                    id: a.id,
                    joined_epoch: a.joined_epoch,
                    source: a.source.clone(),
                    observations: a.estimator.observations().to_vec(),
                })
                .collect(),
        }
    }

    /// The [`MarketSnapshot::fingerprint`] of the current state — a
    /// cheap-to-compare 64-bit digest of the full serialized market.
    /// Bit-identical replicas agree; any divergence (one event skipped,
    /// one float perturbed) disagrees with overwhelming probability.
    pub fn state_fingerprint(&self) -> u64 {
        self.snapshot().fingerprint()
    }

    /// Rebuilds a market from a snapshot.
    ///
    /// Estimators are reconstructed by deterministically replaying each
    /// agent's observation log, and the allocation cache is restored
    /// bit-exactly, so the restored market's next epoch produces the same
    /// allocation — bit for bit — as the original would have.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Snapshot`] for an unsupported version and
    /// propagates validation failures from the snapshotted state.
    pub fn restore(snapshot: &MarketSnapshot) -> Result<MarketEngine> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(MarketError::Snapshot(format!(
                "unsupported snapshot version {} (supported: {SNAPSHOT_VERSION})",
                snapshot.version
            )));
        }
        snapshot.config.validate()?;
        let num_resources = snapshot.config.capacity.num_resources();
        let mut population = BTreeMap::new();
        for a in &snapshot.agents {
            a.source.validate(num_resources)?;
            let estimator = OnlineEstimator::from_observations(num_resources, &a.observations)?;
            let state = AgentState {
                id: a.id,
                joined_epoch: a.joined_epoch,
                source: a.source.clone(),
                estimator,
            };
            if population.insert(a.id, state).is_some() {
                return Err(MarketError::DuplicateAgent(a.id));
            }
        }
        // A v2 snapshot carries no ledger; open a zeroed entry for every
        // live agent so weights and settlement behave as after a fresh
        // admission (admit is idempotent for v3 ledgers).
        let mut ledger = snapshot.ledger.clone();
        for id in population.keys() {
            ledger.admit(*id);
        }
        Ok(MarketEngine {
            config: snapshot.config.clone(),
            population,
            queue: EventQueue::new(),
            epoch: snapshot.epoch,
            stable_since: snapshot.stable_since,
            cache: snapshot.cache.clone(),
            warm: snapshot.warm.clone(),
            auditor: snapshot.auditor.clone(),
            metrics: snapshot.metrics.clone(),
            ledger,
        })
    }
}

/// One agent's per-epoch observation: derives the jittered measurement
/// point from `(seed, epoch, agent id)` alone and feeds the agent's own
/// estimator. Returns `(observations, refits)` contributed by this agent.
fn observe_agent(
    config: &MarketConfig,
    epoch: u64,
    bundle: &[f64],
    agent: &mut AgentState,
    sim_results: &BTreeMap<AgentId, (Vec<f64>, f64)>,
) -> Result<(usize, usize)> {
    // A quarantined agent is held on its last good fit: feeding the
    // estimator more points would only grow a log whose aggregate fit is
    // already degenerate. The skip is a pure function of the observation
    // log, so snapshot replay makes the same choice.
    if agent.quarantined() {
        return Ok((0, 0));
    }
    match &agent.source {
        ObservationSource::GroundTruth(truth) => {
            let truth = truth.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(mix(config.seed, epoch, agent.id));
            let jittered: Vec<f64> = bundle
                .iter()
                .map(|q| {
                    let f = 1.0 - config.excitation + 2.0 * config.excitation * rng.gen::<f64>();
                    (q * f).max(1e-9)
                })
                .collect();
            let perf = truth.value_slice(&jittered);
            if perf.is_finite() && perf > 0.0 {
                let refit = agent.estimator.observe(jittered, perf)?;
                return Ok((1, usize::from(refit)));
            }
            Ok((0, 0))
        }
        ObservationSource::Simulated { .. } => {
            if let Some((inputs, ipc)) = sim_results.get(&agent.id) {
                if *ipc > 0.0 {
                    let refit = agent.estimator.observe(inputs.clone(), *ipc)?;
                    return Ok((1, usize::from(refit)));
                }
            }
            Ok((0, 0))
        }
        ObservationSource::External => Ok((0, 0)),
    }
}

/// Runs all simulated agents jointly through the cycle-level simulator at
/// their (jittered) granted shares; returns each agent's observation as
/// `(resource quantities, achieved IPC)`.
fn run_simulated(
    config: &MarketConfig,
    epoch: u64,
    simulated: &[(usize, AgentId, String)],
    allocation: &Allocation,
) -> Result<BTreeMap<AgentId, (Vec<f64>, f64)>> {
    let capacity = &config.capacity;
    let platform = PlatformConfig::asplos14()
        .with_bandwidth(Bandwidth::from_gb_per_sec(capacity.get(0)))
        .with_l2_size(CacheSize::from_bytes(
            (capacity.get(1) * 1024.0 * 1024.0) as u64,
        ));

    let mut bw_shares = Vec::with_capacity(simulated.len());
    let mut cache_shares = Vec::with_capacity(simulated.len());
    let mut dependent = Vec::with_capacity(simulated.len());
    let mut streams = Vec::with_capacity(simulated.len());
    let mut inputs = Vec::with_capacity(simulated.len());
    for (i, id, name) in simulated {
        let bench = by_name(name)
            .ok_or_else(|| MarketError::InvalidArgument(format!("unknown benchmark {name:?}")))?;
        // Jitter only downward so the shares stay jointly feasible.
        let mut rng = ChaCha8Rng::seed_from_u64(mix(config.seed, epoch, *id));
        let f_bw = 1.0 - 2.0 * config.excitation * rng.gen::<f64>();
        let f_cache = 1.0 - 2.0 * config.excitation * rng.gen::<f64>();
        let bw = (allocation.bundle(*i).get(0) / capacity.get(0) * f_bw).max(MIN_SIM_SHARE);
        let cache = (allocation.bundle(*i).get(1) / capacity.get(1) * f_cache).max(MIN_SIM_SHARE);
        bw_shares.push(bw);
        cache_shares.push(cache);
        dependent.push(bench.params.dependent_fraction);
        streams.push(bench.stream(mix(config.seed, epoch, *id)));
        inputs.push(vec![bw * capacity.get(0), cache * capacity.get(1)]);
    }

    let mut system = MulticoreSystem::new(&platform, &cache_shares, &bw_shares)
        .with_dependent_load_fractions(dependent);
    let reports = system.run(streams, config.sim_instructions);

    Ok(simulated
        .iter()
        .zip(inputs)
        .zip(reports)
        .map(|(((_, id, _), input), report)| (*id, (input, report.ipc())))
        .collect())
}

/// Deterministic per-(seed, epoch, agent) stream seed.
fn mix(seed: u64, epoch: u64, id: AgentId) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [epoch, id] {
        h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(23).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth(e0: f64, e1: f64) -> ObservationSource {
        ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![e0, e1]).unwrap())
    }

    fn two_agent_market() -> MarketEngine {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: truth(0.6, 0.4),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: truth(0.2, 0.8),
        });
        market
    }

    #[test]
    fn config_validation_rejects_bad_tuning() {
        let cap = Capacity::new(vec![10.0]).unwrap();
        assert!(MarketEngine::new(MarketConfig::new(cap.clone()).with_excitation(0.7)).is_err());
        assert!(MarketEngine::new(MarketConfig::new(cap).with_realloc_tolerance(0.0)).is_err());
    }

    #[test]
    fn empty_market_ticks_without_allocating() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::EpochTick);
        let reports = market.pump().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].realloc, ReallocationOutcome::EmptyMarket);
        assert!(reports[0].allocation.is_none());
        assert_eq!(market.metrics().epochs, 1);
    }

    #[test]
    fn converges_to_true_ref_point_with_churn_free_population() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 25));
        let reports = market.pump().unwrap();
        let last = reports.last().unwrap();
        let alloc = last.allocation.as_ref().unwrap();
        // True REF point of the hidden utilities: (18, 4) / (6, 8).
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.5, "{alloc:?}");
        assert!((alloc.bundle(1).get(1) - 8.0).abs() < 0.5, "{alloc:?}");
        // Fitted elasticities approach ground truth.
        let fitted = market.agent(1).unwrap().reported_utility();
        assert!((fitted.elasticity(0) - 0.6).abs() < 0.02, "{fitted:?}");
        assert!(market.auditor().clean_after_warmup());
    }

    #[test]
    fn converged_market_serves_epochs_from_the_cache() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 40));
        market.pump().unwrap();
        let m = market.metrics();
        assert!(m.cache_hits > 20, "{m}");
        assert!(m.reallocations < 15, "{m}");
        // Churn invalidates the fingerprint.
        market.submit(MarketEvent::AgentJoined {
            id: 3,
            source: truth(0.5, 0.5),
        });
        market.submit(MarketEvent::EpochTick);
        let reports = market.pump().unwrap();
        assert_eq!(reports[0].realloc, ReallocationOutcome::Reallocated);
        assert_eq!(reports[0].agents, vec![1, 2, 3]);
    }

    #[test]
    fn membership_errors_are_fail_fast_and_leave_queue_intact() {
        let mut market = two_agent_market();
        market.pump().unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: truth(0.5, 0.5),
        });
        market.submit(MarketEvent::EpochTick);
        assert!(matches!(market.pump(), Err(MarketError::DuplicateAgent(1))));
        assert_eq!(market.pending_events(), 1);
        assert_eq!(market.metrics().rejected_events, 1);
        market.submit(MarketEvent::AgentLeft { id: 99 });
        assert!(matches!(
            market.pump().unwrap_err(),
            MarketError::UnknownAgent(99)
        ));
    }

    #[test]
    fn demand_change_resets_the_estimator_and_swaps_truth() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 12));
        market.pump().unwrap();
        assert!(market.agent(1).unwrap().estimator.num_observations() > 0);
        market.submit(MarketEvent::DemandChanged {
            id: 1,
            new_truth: Some(CobbDouglas::new(1.0, vec![0.3, 0.7]).unwrap()),
        });
        market.pump().unwrap();
        let agent = market.agent(1).unwrap();
        assert_eq!(agent.estimator.num_observations(), 0);
        assert_eq!(agent.reported_utility().elasticities(), &[0.5, 0.5]);
        // The market re-converges to the new truth's REF point.
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 20));
        let reports = market.pump().unwrap();
        let alloc = reports.last().unwrap().allocation.as_ref().unwrap();
        // Rescaled elasticities (0.3, 0.7) and (0.2, 0.8): x_00 = 0.3/0.5*24.
        assert!((alloc.bundle(0).get(0) - 14.4).abs() < 0.5, "{alloc:?}");
        assert!(market.auditor().clean_after_warmup());
        // Swapping truth on a non-ground-truth agent is rejected.
        market.submit(MarketEvent::AgentJoined {
            id: 7,
            source: ObservationSource::External,
        });
        market.submit(MarketEvent::DemandChanged {
            id: 7,
            new_truth: Some(CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap()),
        });
        assert!(market.pump().is_err());
    }

    #[test]
    fn external_agents_learn_only_from_reported_observations() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::External,
        });
        market.submit(MarketEvent::EpochTick);
        market.pump().unwrap();
        assert_eq!(market.agent(1).unwrap().estimator.num_observations(), 0);
        let hidden = CobbDouglas::new(1.0, vec![0.7, 0.3]).unwrap();
        for k in 0..8_u32 {
            let x = 1.0 + f64::from(k % 4);
            let y = 0.5 + f64::from(k % 3);
            market.submit(MarketEvent::ObservationReported {
                id: 1,
                allocation: vec![x, y],
                performance: hidden.value_slice(&[x, y]),
            });
        }
        market.pump().unwrap();
        let fitted = market.agent(1).unwrap().reported_utility();
        assert!((fitted.elasticity(0) - 0.7).abs() < 1e-6, "{fitted:?}");
        assert_eq!(market.metrics().external_observations, 8);
        // Non-finite measurements are rejected before touching the log.
        market.submit(MarketEvent::ObservationReported {
            id: 1,
            allocation: vec![1.0, 1.0],
            performance: f64::NAN,
        });
        assert!(market.pump().is_err());
        assert_eq!(market.agent(1).unwrap().estimator.num_observations(), 8);
        // Ground-truth agents refuse external reports.
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: truth(0.5, 0.5),
        });
        market.submit(MarketEvent::ObservationReported {
            id: 2,
            allocation: vec![1.0, 1.0],
            performance: 1.0,
        });
        assert!(market.pump().is_err());
    }

    #[test]
    fn repeated_degenerate_fits_quarantine_an_external_agent() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::External,
        });
        market.pump().unwrap();
        // Individually valid points whose exact log-linear fit has
        // intercept 800: the fitted scale overflows, every refit attempt
        // is degenerate, and after three in a row the agent quarantines.
        let huge = |x: f64, y: f64| (800.0 + 20.0 * x.ln() + 20.0 * y.ln()).exp();
        let pts = [
            (0.01, 0.01),
            (0.02, 0.01),
            (0.01, 0.03),
            (0.05, 0.02),
            (0.03, 0.04),
            (0.02, 0.05),
        ];
        for &(x, y) in &pts {
            market.submit(MarketEvent::ObservationReported {
                id: 1,
                allocation: vec![x, y],
                performance: huge(x, y),
            });
        }
        market.pump().unwrap();
        let agent = market.agent(1).unwrap();
        assert!(agent.quarantined());
        // The last good estimate (here: the prior) still drives allocation.
        assert_eq!(agent.reported_utility().elasticities(), &[0.5, 0.5]);
        assert_eq!(market.metrics().degenerate_refits, 3);
        assert_eq!(market.metrics().quarantines, 1);
        // Further observations for the quarantined agent are refused.
        market.submit(MarketEvent::ObservationReported {
            id: 1,
            allocation: vec![1.0, 1.0],
            performance: 1.0,
        });
        assert!(matches!(
            market.pump(),
            Err(MarketError::QuarantinedAgent(1))
        ));
        assert_eq!(market.metrics().rejected_events, 1);
        // An epoch tick neither feeds the agent nor recounts transitions.
        market.submit(MarketEvent::EpochTick);
        market.pump().unwrap();
        assert_eq!(market.metrics().quarantines, 1);
        // Quarantine is derived from the observation log, so it survives
        // snapshot/restore without extra persisted state.
        let restored = MarketEngine::restore(&market.snapshot()).unwrap();
        assert!(restored.agent(1).unwrap().quarantined());
        assert_eq!(restored.metrics().quarantines, 1);
        // A demand change resets the estimator and lifts the quarantine.
        market.submit(MarketEvent::DemandChanged {
            id: 1,
            new_truth: None,
        });
        market.pump().unwrap();
        let agent = market.agent(1).unwrap();
        assert!(!agent.quarantined());
        assert_eq!(agent.estimator.num_observations(), 0);
        market.submit(MarketEvent::ObservationReported {
            id: 1,
            allocation: vec![2.0, 1.0],
            performance: 1.5,
        });
        market.pump().unwrap();
        assert_eq!(market.agent(1).unwrap().estimator.num_observations(), 1);
    }

    #[test]
    fn simulated_agents_learn_from_the_cycle_level_simulator() {
        // Unlike the offline pipeline's full capacity sweep, the online
        // fit only sees jittered points near the granted shares, so it
        // measures *local* sensitivity at the operating point. The market
        // guarantees the learning loop itself: every epoch yields one
        // observation per simulated agent, the estimators refit off the
        // achieved IPC, and the allocation stays fair for the fits.
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap())
            .with_sim_instructions(12_000)
            .with_warmup_epochs(4);
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::Simulated {
                benchmark: "histogram".to_string(),
            },
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: ObservationSource::Simulated {
                benchmark: "dedup".to_string(),
            },
        });
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 10));
        let reports = market.pump().unwrap();
        assert!(reports.iter().all(|r| r.observations == 2));
        for id in [1, 2] {
            let agent = market.agent(id).unwrap();
            assert!(agent.estimator.refits() > 0, "agent {id} never refit");
            let u = agent.reported_utility();
            assert!((u.elasticity_sum() - 1.0).abs() < 1e-9, "{u:?}");
        }
        assert!(market.auditor().clean_after_warmup());
    }

    #[test]
    fn gp_mechanism_market_warm_starts_between_epochs() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap())
            .with_mechanism(MechanismKind::MaxWelfare { fairness: true });
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: truth(0.6, 0.4),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: truth(0.2, 0.8),
        });
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 20));
        let reports = market.pump().unwrap();
        let m = market.metrics().clone();
        // The first solve is necessarily cold; every later solve over the
        // unchanged population is seeded from the previous optimum.
        assert_eq!(m.warm_start_misses, 1, "{m}");
        assert!(m.warm_start_hits > 0, "{m}");
        assert_eq!(m.warm_start_hits + m.warm_start_misses, m.reallocations);
        assert!(!market.warm_cache().is_empty());
        assert!(market.auditor().clean_after_warmup());
        // Warm-started solves still land on the REF point the fitted
        // utilities imply (the paper example's (18, 4) / (6, 8)).
        let alloc = reports.last().unwrap().allocation.as_ref().unwrap();
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.8, "{alloc:?}");
        assert!((alloc.bundle(1).get(1) - 8.0).abs() < 0.8, "{alloc:?}");
        // A departure only drops the leaver's block: the survivor's cached
        // optimum still covers the shrunken id set, so the next solve stays
        // warm. An arrival, by contrast, changes the problem shape and
        // forces a cold start.
        market.submit(MarketEvent::AgentLeft { id: 2 });
        market.submit(MarketEvent::EpochTick);
        market.pump().unwrap();
        assert_eq!(market.metrics().warm_start_misses, 1);
        market.submit(MarketEvent::AgentJoined {
            id: 3,
            source: truth(0.5, 0.5),
        });
        market.submit(MarketEvent::EpochTick);
        market.pump().unwrap();
        assert_eq!(market.metrics().warm_start_misses, 2);
    }

    #[test]
    fn closed_form_mechanism_never_touches_warm_counters() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 10));
        market.pump().unwrap();
        let m = market.metrics();
        assert!(m.reallocations > 0);
        assert_eq!(m.warm_start_hits, 0);
        assert_eq!(m.warm_start_misses, 0);
        assert!(market.warm_cache().is_empty());
    }

    #[test]
    fn every_market_refit_is_served_incrementally() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 15));
        market.pump().unwrap();
        let m = market.metrics();
        assert!(m.refits > 0);
        assert_eq!(m.incremental_refits, m.refits, "{m}");
    }

    #[test]
    fn rank_classification_follows_the_unified_solver_tolerance() {
        // The estimator's collinear-vs-informative decision is governed by
        // the documented `ref_solver::tol` thresholds. A design whose
        // log-columns vary far below the rank tolerance is classified
        // collinear — the prior survives, nothing is counted degenerate
        // and the agent is never quarantined; variation well above it
        // refits normally.
        let run = |spread: f64| {
            let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
            let mut market = MarketEngine::new(config).unwrap();
            market.submit(MarketEvent::AgentJoined {
                id: 1,
                source: ObservationSource::External,
            });
            for i in 0..8_u32 {
                let x = 2.0 * (1.0 + spread * f64::from(i));
                let y = 3.0 * (1.0 + 0.7 * spread * f64::from((i * 3) % 5));
                market.submit(MarketEvent::ObservationReported {
                    id: 1,
                    allocation: vec![x, y],
                    performance: x.powf(0.6) * y.powf(0.4),
                });
            }
            market.pump().unwrap();
            market
        };
        // Spread orders of magnitude below RANK_TOL: collinear, keep prior.
        let degenerate_spread = ref_solver::tol::RANK_TOL * 1e-3;
        let market = run(degenerate_spread);
        let agent = market.agent(1).unwrap();
        assert_eq!(agent.estimator.refits(), 0);
        assert_eq!(agent.estimator.degenerate_refits(), 0);
        assert!(!agent.quarantined());
        assert_eq!(agent.reported_utility().elasticities(), &[0.5, 0.5]);
        // The same shape of design with real variation refits fine.
        let market = run(0.1);
        let agent = market.agent(1).unwrap();
        assert!(agent.estimator.refits() > 0);
        assert!((agent.reported_utility().elasticity(0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn enforcement_tracks_granted_shares() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 15));
        let reports = market.pump().unwrap();
        let last = reports.last().unwrap();
        assert_eq!(last.enforcement.len(), 2);
        assert!(
            last.worst_enforcement_deviation() < 0.01,
            "{:?}",
            last.enforcement
        );
    }

    // --- Same-batch event-ordering semantics -------------------------
    //
    // Events between two ticks apply strictly in submission order, one at
    // a time, with no coalescing. These tests pin the edge cases a
    // network transport can produce by interleaving clients.

    #[test]
    fn same_batch_join_then_leave_is_a_clean_noop() {
        let mut market = two_agent_market();
        market.submit(MarketEvent::AgentJoined {
            id: 9,
            source: truth(0.5, 0.5),
        });
        market.submit(MarketEvent::AgentLeft { id: 9 });
        market.submit(MarketEvent::EpochTick);
        let reports = market.pump().unwrap();
        // The transient never reaches an allocation, but both counters
        // record it and the warm-up window restarts.
        assert_eq!(reports[0].agents, vec![1, 2]);
        assert_eq!(market.metrics().joins, 3);
        assert_eq!(market.metrics().leaves, 1);
        assert!(reports[0].warm);
    }

    #[test]
    fn same_batch_leave_then_rejoin_resets_the_estimator() {
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 12));
        market.pump().unwrap();
        let converged = market.agent(1).unwrap().estimator.num_observations();
        assert!(converged > 0);
        // Leave + join with the same id in one batch is a legal rejoin:
        // the new incarnation starts from the uniform prior.
        market.submit(MarketEvent::AgentLeft { id: 1 });
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: truth(0.8, 0.2),
        });
        market.pump().unwrap();
        let agent = market.agent(1).unwrap();
        assert_eq!(agent.estimator.num_observations(), 0);
        assert_eq!(agent.reported_utility().elasticities(), &[0.5, 0.5]);
        assert_eq!(agent.joined_epoch, 12);
    }

    #[test]
    fn same_batch_join_then_rejoin_is_a_duplicate() {
        // Join + join (without an intervening leave) is rejected even
        // inside one batch: the first join wins, the second is dropped.
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 5,
            source: truth(0.6, 0.4),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 5,
            source: truth(0.3, 0.7),
        });
        assert!(matches!(market.pump(), Err(MarketError::DuplicateAgent(5))));
        // The first incarnation survives untouched.
        assert_eq!(market.num_live_agents(), 1);
        assert_eq!(market.metrics().joins, 1);
        assert_eq!(market.metrics().rejected_events, 1);
    }

    #[test]
    fn same_batch_leave_then_observe_rejects_only_the_observation() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::External,
        });
        market.pump().unwrap();
        // Leave followed by a late observation for the same agent: the
        // leave applies, the observation is unknown-agent, and the events
        // after it stay queued (fail-fast).
        market.submit(MarketEvent::AgentLeft { id: 1 });
        market.submit(MarketEvent::ObservationReported {
            id: 1,
            allocation: vec![1.0, 1.0],
            performance: 1.0,
        });
        market.submit(MarketEvent::EpochTick);
        assert!(matches!(market.pump(), Err(MarketError::UnknownAgent(1))));
        assert_eq!(market.num_live_agents(), 0);
        assert_eq!(market.pending_events(), 1);
        // The retried pump drains the tick; the market is now empty.
        let reports = market.pump().unwrap();
        assert_eq!(reports[0].realloc, ReallocationOutcome::EmptyMarket);
    }

    #[test]
    fn same_batch_observe_then_leave_keeps_the_observation_effect() {
        // The mirrored order is legal: the observation lands first, then
        // the agent departs. Counters must reflect both.
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::External,
        });
        market.submit(MarketEvent::ObservationReported {
            id: 1,
            allocation: vec![2.0, 1.0],
            performance: 1.5,
        });
        market.submit(MarketEvent::AgentLeft { id: 1 });
        market.pump().unwrap();
        assert_eq!(market.metrics().external_observations, 1);
        assert_eq!(market.num_live_agents(), 0);
    }

    #[test]
    fn apply_now_matches_submit_all_pump_to_completion() {
        let events = || {
            vec![
                MarketEvent::AgentJoined {
                    id: 1,
                    source: truth(0.6, 0.4),
                },
                MarketEvent::AgentJoined {
                    id: 1, // duplicate: rejected on both paths
                    source: truth(0.5, 0.5),
                },
                MarketEvent::AgentJoined {
                    id: 2,
                    source: truth(0.2, 0.8),
                },
                MarketEvent::EpochTick,
                MarketEvent::AgentLeft { id: 7 }, // unknown: rejected
                MarketEvent::EpochTick,
            ]
        };
        let config = || MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());

        let mut direct = MarketEngine::new(config()).unwrap();
        for event in events() {
            let _ = direct.apply_now(event);
        }

        let mut queued = MarketEngine::new(config()).unwrap();
        queued.submit_all(events());
        // A clean pump drains everything; keep retrying past errors.
        while queued.pump().is_err() {}

        assert_eq!(direct.metrics(), queued.metrics());
        assert_eq!(direct.epoch(), queued.epoch());
        assert_eq!(
            direct.snapshot().encode(),
            queued.snapshot().encode(),
            "apply_now and pump-to-completion diverged"
        );
    }

    #[test]
    fn mechanism_labels_round_trip_and_accept_bare_credit() {
        for kind in [
            MechanismKind::ProportionalElasticity,
            MechanismKind::MaxWelfare { fairness: false },
            MechanismKind::MaxWelfare { fairness: true },
            MechanismKind::EqualSlowdown { fairness: false },
            MechanismKind::EqualSlowdown { fairness: true },
            MechanismKind::Credit {
                inner: CreditInner::MaxWelfare,
            },
            MechanismKind::Credit {
                inner: CreditInner::EqualSlowdown,
            },
        ] {
            assert_eq!(MechanismKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(
            MechanismKind::from_label("credit"),
            Some(MechanismKind::Credit {
                inner: CreditInner::MaxWelfare
            })
        );
        assert!(MechanismKind::Credit {
            inner: CreditInner::MaxWelfare
        }
        .warm_startable());
    }

    #[test]
    fn config_validation_rejects_bad_temporal_tuning() {
        let cap = Capacity::new(vec![10.0]).unwrap();
        assert!(MarketEngine::new(MarketConfig::new(cap.clone()).with_temporal_window(0)).is_err());
        assert!(
            MarketEngine::new(MarketConfig::new(cap.clone()).with_temporal_slack(1.0)).is_err()
        );
        assert!(MarketEngine::new(MarketConfig::new(cap).with_temporal_slack(-0.1)).is_err());
    }

    #[test]
    fn every_market_accrues_ledger_history() {
        // The ledger runs for every mechanism, so switching a recovered
        // market to credit fairness starts from real history.
        let mut market = two_agent_market();
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 10));
        market.pump().unwrap();
        let ledger = market.ledger();
        assert_eq!(ledger.len(), 2);
        assert!(!ledger.entry(1).unwrap().window.is_empty());
        // Mean-centered accrual keeps the ledger conserved.
        assert!(ledger.total().abs() < 1e-9, "{}", ledger.total());
        // A leave settles the departing entry into the survivor.
        market.submit(MarketEvent::AgentLeft { id: 2 });
        market.pump().unwrap();
        assert_eq!(market.ledger().len(), 1);
    }

    #[test]
    fn credit_market_converges_and_stays_temporally_fair() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap()).with_mechanism(
            MechanismKind::Credit {
                inner: CreditInner::MaxWelfare,
            },
        );
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: truth(0.6, 0.4),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: truth(0.2, 0.8),
        });
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 30));
        let reports = market.pump().unwrap();
        // Converged balances are small, so the tilt fades and the market
        // lands near the untilted REF point (18, 4) / (6, 8).
        let alloc = reports.last().unwrap().allocation.as_ref().unwrap();
        assert!((alloc.bundle(0).get(0) - 18.0).abs() < 1.5, "{alloc:?}");
        assert!((alloc.bundle(1).get(1) - 8.0).abs() < 1.5, "{alloc:?}");
        // The tilted GP warm-starts across epochs like any other GP.
        let m = market.metrics();
        assert!(m.warm_start_hits > 0, "{m}");
        // No post-warm-up temporal violations on a steady population.
        assert_eq!(m.temporal_si_violations, 0, "{m}");
        assert_eq!(market.auditor().temporal_si_violations_after_warmup(), 0);
        assert!(reports.last().unwrap().worst_temporal_ratio > 0.9);
    }

    #[test]
    fn lifting_quarantine_rebaselines_the_ledger_entry() {
        // Regression: stale accrual from quarantined epochs must not buy
        // future weight once DemandChanged lifts the quarantine.
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::External,
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: truth(0.2, 0.8),
        });
        market.pump().unwrap();
        // Drive agent 1 into quarantine with degenerate fits.
        let huge = |x: f64, y: f64| (800.0 + 20.0 * x.ln() + 20.0 * y.ln()).exp();
        for (x, y) in [
            (0.01, 0.01),
            (0.02, 0.01),
            (0.01, 0.03),
            (0.05, 0.02),
            (0.03, 0.04),
            (0.02, 0.05),
        ] {
            market.submit(MarketEvent::ObservationReported {
                id: 1,
                allocation: vec![x, y],
                performance: huge(x, y),
            });
        }
        market.pump().unwrap();
        assert!(market.agent(1).unwrap().quarantined());
        // Quarantined epochs still accrue (the agent is still served).
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 6));
        market.pump().unwrap();
        assert!(!market.ledger().entry(1).unwrap().window.is_empty());
        let total_before = market.ledger().total();
        // Lifting the quarantine re-baselines the entry: zero balance,
        // empty window, ledger sum conserved.
        market.submit(MarketEvent::DemandChanged {
            id: 1,
            new_truth: None,
        });
        market.pump().unwrap();
        assert!(!market.agent(1).unwrap().quarantined());
        let entry = market.ledger().entry(1).unwrap();
        assert_eq!(entry.balance, 0.0);
        assert!(entry.window.is_empty());
        assert!((market.ledger().total() - total_before).abs() < 1e-12);
    }

    #[test]
    fn identical_seeds_reproduce_identical_markets() {
        let run = || {
            let mut market = two_agent_market();
            market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 20));
            let reports = market.pump().unwrap();
            reports.last().unwrap().allocation.as_ref().unwrap().clone()
        };
        let (a, b) = (run(), run());
        for (x, y) in a.bundles().iter().zip(b.bundles()) {
            for r in 0..x.num_resources() {
                assert_eq!(x.get(r).to_bits(), y.get(r).to_bits());
            }
        }
    }
}
