//! The per-epoch report: everything one `EpochTick` did.

use ref_core::properties::FairnessReport;
use ref_core::resource::Allocation;

use crate::agent::AgentId;

/// How the epoch obtained its allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReallocationOutcome {
    /// The fair shares were recomputed because the population fingerprint
    /// (agent set + quantized fitted elasticities) changed.
    Reallocated,
    /// The population fingerprint was unchanged; the cached allocation was
    /// reused without re-running the mechanism.
    CacheHit,
    /// No live agents: nothing to allocate.
    EmptyMarket,
}

/// Achieved scheduler service for one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct EnforcementSummary {
    /// Resource index the scheduler ran for.
    pub resource: usize,
    /// Target shares (each agent's fraction of the resource).
    pub target: Vec<f64>,
    /// Shares the stride scheduler actually delivered.
    pub achieved: Vec<f64>,
    /// Worst absolute deviation between achieved and target.
    pub max_deviation: f64,
}

/// What one epoch of the market did.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The epoch number (starting from 0 at market creation).
    pub epoch: u64,
    /// Live agents this epoch, in ascending id order — the same order as
    /// the bundles of [`EpochReport::allocation`].
    pub agents: Vec<AgentId>,
    /// Whether the allocation was recomputed, cached, or absent.
    pub realloc: ReallocationOutcome,
    /// The granted allocation (`None` only for an empty market).
    pub allocation: Option<Allocation>,
    /// SI/EF/PE verdicts against the reported (fitted) utilities.
    pub fairness: Option<FairnessReport>,
    /// Stride-scheduler enforcement, one entry per resource.
    pub enforcement: Vec<EnforcementSummary>,
    /// Whether the epoch was inside the warm-up window (recent membership
    /// or demand change), exempting it from the audit SLO.
    pub warm: bool,
    /// Observations ingested this epoch (ground-truth and simulated).
    pub observations: usize,
    /// Estimator refits triggered by those observations.
    pub refits: usize,
    /// Agents violating the temporal sharing-incentive inequality this
    /// epoch: cumulative delivered utility over the last full
    /// `temporal_window` epochs below `(1 - temporal_slack)` of cumulative
    /// equal-share utility. Agents without a full window are not judged.
    pub temporal_violations: usize,
    /// Smallest delivered/entitled window ratio among judged agents (1.0
    /// when no agent had a full window).
    pub worst_temporal_ratio: f64,
}

impl EpochReport {
    /// Worst enforcement deviation across all resources.
    pub fn worst_enforcement_deviation(&self) -> f64 {
        self.enforcement
            .iter()
            .map(|e| e.max_deviation)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_deviation_spans_resources() {
        let report = EpochReport {
            epoch: 3,
            agents: vec![1, 2],
            realloc: ReallocationOutcome::CacheHit,
            allocation: None,
            fairness: None,
            enforcement: vec![
                EnforcementSummary {
                    resource: 0,
                    target: vec![0.75, 0.25],
                    achieved: vec![0.74, 0.26],
                    max_deviation: 0.01,
                },
                EnforcementSummary {
                    resource: 1,
                    target: vec![0.3, 0.7],
                    achieved: vec![0.33, 0.67],
                    max_deviation: 0.03,
                },
            ],
            warm: false,
            observations: 2,
            refits: 2,
            temporal_violations: 0,
            worst_temporal_ratio: 1.0,
        };
        assert_eq!(report.worst_enforcement_deviation(), 0.03);
    }
}
