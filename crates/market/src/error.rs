//! Error type for the market service.

use std::error::Error;
use std::fmt;

use ref_core::CoreError;

use crate::agent::AgentId;

/// Errors produced by the market engine and its snapshot codec.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarketError {
    /// An event referenced an agent the market does not know.
    UnknownAgent(AgentId),
    /// An `AgentJoined` event reused a live agent's id.
    DuplicateAgent(AgentId),
    /// An observation was reported for an agent whose estimator is
    /// quarantined after repeated degenerate refits; a `DemandChanged`
    /// reset lifts the quarantine.
    QuarantinedAgent(AgentId),
    /// An argument violated a documented invariant.
    InvalidArgument(String),
    /// A snapshot could not be encoded or decoded.
    Snapshot(String),
    /// An underlying core-library operation failed.
    Core(CoreError),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::UnknownAgent(id) => write!(f, "unknown agent {id}"),
            MarketError::DuplicateAgent(id) => write!(f, "agent {id} is already live"),
            MarketError::QuarantinedAgent(id) => write!(
                f,
                "agent {id} is quarantined after repeated degenerate refits; \
                 reset it with a demand change"
            ),
            MarketError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MarketError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            MarketError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl Error for MarketError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MarketError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for MarketError {
    fn from(e: CoreError) -> MarketError {
        MarketError::Core(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MarketError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_identify_the_failure() {
        assert!(MarketError::UnknownAgent(7).to_string().contains('7'));
        assert!(MarketError::DuplicateAgent(3)
            .to_string()
            .contains("already"));
        assert!(MarketError::Snapshot("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn core_errors_convert_and_chain() {
        let e: MarketError = CoreError::InvalidArgument("x".into()).into();
        assert!(e.source().is_some());
    }
}
