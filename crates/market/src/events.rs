//! The market's event API.
//!
//! Clients do not call into the engine synchronously; they submit events
//! which the engine processes in submission order when pumped. Membership
//! events between two `EpochTick`s take effect at the next tick, so a batch
//! of joins/leaves triggers at most one reallocation.
//!
//! ## Same-batch ordering semantics
//!
//! Events are applied strictly one at a time in submission order — there
//! is no coalescing, and every edge case a concurrent transport can
//! produce reduces to sequential application:
//!
//! - **join then leave** (same agent, same batch): a clean no-op for the
//!   next allocation, but both counters advance and the warm-up window
//!   restarts (the population *did* churn).
//! - **leave then join** (same id): a legal rejoin; the new incarnation
//!   starts from the uniform prior with a fresh `joined_epoch`.
//! - **join then join** (same id, no leave between): the second join is a
//!   [`DuplicateAgent`](crate::error::MarketError::DuplicateAgent) error;
//!   the first incarnation is untouched.
//! - **leave then observe** (same agent): the observation is an
//!   [`UnknownAgent`](crate::error::MarketError::UnknownAgent) error —
//!   departure is immediate, not end-of-epoch. The mirrored
//!   **observe then leave** order applies the observation first and is
//!   fully effective.
//!
//! Error handling differs by entry point: [`pump`](crate::MarketEngine::pump)
//! is fail-fast (the failed event is dropped, the rest stay queued), while
//! [`apply_now`](crate::MarketEngine::apply_now) surfaces each event's
//! outcome individually. Applying the same sequence through either path —
//! retrying `pump` past errors — yields bit-identical engine state.

use std::collections::VecDeque;

use ref_core::utility::CobbDouglas;

use crate::agent::{AgentId, ObservationSource};

/// An event submitted to the market.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarketEvent {
    /// A new agent requests admission.
    AgentJoined {
        /// Stable id chosen by the client; must not collide with a live agent.
        id: AgentId,
        /// How the agent's performance observations are produced.
        source: ObservationSource,
    },
    /// A live agent departs; its share is redistributed at the next tick.
    AgentLeft {
        /// The departing agent.
        id: AgentId,
    },
    /// An agent's demand changed: its observation history is stale. The
    /// engine flushes the estimator back to the naive prior and, for
    /// ground-truth agents, swaps the hidden utility.
    DemandChanged {
        /// The agent whose demand changed.
        id: AgentId,
        /// Replacement ground truth for
        /// [`ObservationSource::GroundTruth`] agents; `None` keeps the
        /// current source (external/simulated agents just reset).
        new_truth: Option<CobbDouglas>,
    },
    /// An externally measured `(allocation, performance)` sample for an
    /// [`ObservationSource::External`] agent.
    ObservationReported {
        /// The measured agent.
        id: AgentId,
        /// Resource quantities the measurement was taken at.
        allocation: Vec<f64>,
        /// Measured performance (e.g. IPC); must be finite and positive.
        performance: f64,
    },
    /// Replace the market's per-resource capacity allotment. Used by the
    /// sharded serving tier's cross-shard coordinator to rebalance capacity
    /// between shards between epochs; flowing the change through the event
    /// stream (rather than mutating config out of band) keeps the WAL,
    /// journal, and replication stream a complete record — a shard's journal
    /// replays byte-for-byte regardless of what the coordinator did.
    CapacityRealloted {
        /// New per-resource capacities; must have the same arity as the
        /// current capacity, and every entry must be finite and positive.
        capacity: Vec<f64>,
    },
    /// Advance the market by one epoch: refit, reallocate, enforce, audit,
    /// observe.
    EpochTick,
}

/// FIFO queue of pending events.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    pending: VecDeque<MarketEvent>,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: MarketEvent) {
        self.pending.push_back(event);
    }

    /// Removes and returns the oldest pending event.
    pub fn pop(&mut self) -> Option<MarketEvent> {
        self.pending.pop_front()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_preserves_submission_order() {
        let mut q = EventQueue::new();
        q.push(MarketEvent::AgentLeft { id: 2 });
        q.push(MarketEvent::EpochTick);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(MarketEvent::AgentLeft { id: 2 }));
        assert_eq!(q.pop(), Some(MarketEvent::EpochTick));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
