//! The credit ledger: cross-epoch delivered-vs-entitled accounting.
//!
//! Every epoch the engine measures, per agent, the utility *delivered*
//! by the granted bundle and the utility the agent was *entitled* to at
//! the equal split `C/N` — under the agent's ground truth when the
//! market knows it, otherwise under the reported fit. The normalized gap
//! `(entitled - delivered) / entitled` is mean-centered across the live
//! population (one agent's under-service is another's over-service, so
//! accruals are zero-sum by construction) and folded into each agent's
//! *credit balance* with a small decay and a hard cap:
//!
//! ```text
//! balance <- clamp((balance + centered_gap) * (1 - CREDIT_DECAY),
//!                  -CREDIT_CAP, CREDIT_CAP)
//! ```
//!
//! Positive balances mark agents below their cumulative fair share;
//! under [`MechanismKind::Credit`](crate::engine::MechanismKind) they buy
//! extra allocation weight (`1 + CREDIT_TILT * balance / CREDIT_CAP`)
//! until the debt is repaid. Decay forgets ancient history, the cap
//! bounds how much weight any balance can ever buy, and mean-centering
//! keeps the ledger conserved: the sum of balances stays at (numerical)
//! zero, drifting only through cap clamping — the "decay tolerance" the
//! conservation property test allows.
//!
//! The ledger also keeps, per agent, a sliding window of the last
//! [`temporal window`](crate::engine::MarketConfig::temporal_window)
//! epochs' `(delivered, entitled)` pairs — the evidence for the
//! *temporal sharing-incentive* audit: over any full window of `W`
//! epochs, cumulative delivered utility must reach cumulative
//! equal-share utility minus a credit-bounded slack,
//! `sum(delivered) >= (1 - slack) * sum(entitled)`.
//!
//! Lifecycle: entries are created on join, *settled* on leave (the
//! departing balance is redistributed equally across the survivors, so
//! conservation survives churn) and *re-baselined* on demand changes and
//! quarantine transitions — the estimator restarts, so stale accrual
//! from the old regime must not buy weight in the new one.
//!
//! The ledger is deliberately a pure function of the event stream plus
//! the per-epoch allocations: it needs no WAL or replication machinery
//! of its own. Snapshots carry it only so a restored market resumes
//! bit-identically without replaying history.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::agent::AgentId;

/// Per-epoch multiplicative decay applied to every balance after the
/// epoch's accrual; old debts fade instead of compounding forever.
pub const CREDIT_DECAY: f64 = 0.02;

/// Hard bound on any single balance. Together with [`CREDIT_TILT`] this
/// caps the allocation weight an agent can ever carry.
pub const CREDIT_CAP: f64 = 2.0;

/// Maximum relative weight tilt a saturated balance buys: weights lie in
/// `[1 - CREDIT_TILT, 1 + CREDIT_TILT]`.
pub const CREDIT_TILT: f64 = 0.6;

/// Floor on entitled utility below which an epoch's gap is treated as
/// zero (an agent entitled to nothing cannot be under-served).
const ENTITLED_FLOOR: f64 = 1e-300;

/// One agent's ledger state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerEntry {
    /// The credit balance: positive when cumulatively under-served.
    pub balance: f64,
    /// Sliding `(delivered, entitled)` window, oldest first, at most
    /// `temporal_window` entries.
    pub window: VecDeque<(f64, f64)>,
}

impl LedgerEntry {
    /// Cumulative `(delivered, entitled)` over the current window.
    pub fn window_sums(&self) -> (f64, f64) {
        self.window
            .iter()
            .fold((0.0, 0.0), |(d, e), (dd, ee)| (d + dd, e + ee))
    }
}

/// What one epoch's accrual did, for the metrics counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccrualSummary {
    /// Agent-epochs whose centered gap was positive (credit accrued).
    pub accrued: u64,
    /// Agent-epochs where a positive balance absorbed a negative gap
    /// (credit being spent — the mechanism repaying the debt).
    pub spent: u64,
}

/// The market's credit ledger: one entry per live agent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CreditLedger {
    entries: BTreeMap<AgentId, LedgerEntry>,
}

impl CreditLedger {
    /// Creates an empty ledger.
    pub fn new() -> CreditLedger {
        CreditLedger::default()
    }

    /// Number of entries (one per live agent).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One agent's entry, if present.
    pub fn entry(&self, id: AgentId) -> Option<&LedgerEntry> {
        self.entries.get(&id)
    }

    /// An agent's balance (0 for unknown agents).
    pub fn balance(&self, id: AgentId) -> f64 {
        self.entries.get(&id).map_or(0.0, |e| e.balance)
    }

    /// Opens a zeroed entry for a newly admitted agent (idempotent — a
    /// v2-snapshot restore may re-admit agents the ledger already holds).
    pub fn admit(&mut self, id: AgentId) {
        self.entries.entry(id).or_default();
    }

    /// Settles a departing agent: the entry is removed and its balance is
    /// redistributed equally across the remaining entries, so the ledger
    /// sum is unchanged by churn. A missing id is a no-op.
    pub fn settle(&mut self, id: AgentId) {
        let Some(entry) = self.entries.remove(&id) else {
            return;
        };
        let n = self.entries.len();
        if n == 0 || entry.balance == 0.0 {
            return;
        }
        let share = entry.balance / n as f64;
        for e in self.entries.values_mut() {
            e.balance += share;
        }
    }

    /// Re-baselines an agent in place: its balance is redistributed to
    /// the *other* entries and its window is cleared, exactly as if it
    /// had left and immediately rejoined. Applied on demand changes
    /// (including the quarantine lift they perform) and on quarantine
    /// transitions, so accrual from a stale estimation regime never buys
    /// future weight.
    pub fn rebaseline(&mut self, id: AgentId) {
        if !self.entries.contains_key(&id) {
            return;
        }
        self.settle(id);
        self.admit(id);
    }

    /// Drops every window (capacity reallotments change the entitlement
    /// scale mid-window, so the evidence is discarded; balances — which
    /// are normalized ratios — survive).
    pub fn clear_windows(&mut self) {
        for e in self.entries.values_mut() {
            e.window.clear();
        }
    }

    /// Folds one epoch's `(agent, delivered, entitled)` measurements into
    /// the ledger: gaps are normalized, mean-centered, decayed and
    /// capped, and each agent's sliding window advances (bounded by
    /// `window`). Agents missing an entry are admitted on the fly.
    pub fn accrue(&mut self, measured: &[(AgentId, f64, f64)], window: usize) -> AccrualSummary {
        if measured.is_empty() {
            return AccrualSummary::default();
        }
        let gaps: Vec<f64> = measured
            .iter()
            .map(|&(_, delivered, entitled)| {
                if entitled <= ENTITLED_FLOOR || !entitled.is_finite() || !delivered.is_finite() {
                    0.0
                } else {
                    ((entitled - delivered) / entitled).clamp(-1.0, 1.0)
                }
            })
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let mut summary = AccrualSummary::default();
        // Clamping an outlier balance would silently destroy the zero-sum
        // invariant, so the clamp residual is collected and redistributed
        // equally: the cap is a *soft* bound that settlement spikes can
        // briefly overshoot (by residual / n), with decay pulling every
        // balance back inside. The weight tilt clamps independently, so an
        // overshoot never buys extra weight.
        let mut residual = 0.0;
        for (&(id, delivered, entitled), gap) in measured.iter().zip(&gaps) {
            let centered = gap - mean;
            let entry = self.entries.entry(id).or_default();
            if centered > 0.0 {
                summary.accrued += 1;
            } else if centered < 0.0 && entry.balance > 0.0 {
                summary.spent += 1;
            }
            let tentative = (entry.balance + centered) * (1.0 - CREDIT_DECAY);
            entry.balance = tentative.clamp(-CREDIT_CAP, CREDIT_CAP);
            residual += tentative - entry.balance;
            entry.window.push_back((delivered, entitled));
            while entry.window.len() > window {
                entry.window.pop_front();
            }
        }
        if residual != 0.0 {
            let share = residual / measured.len() as f64;
            for &(id, _, _) in measured {
                if let Some(entry) = self.entries.get_mut(&id) {
                    entry.balance += share;
                }
            }
        }
        summary
    }

    /// The allocation weight an agent's balance buys:
    /// `1 + CREDIT_TILT * clamp(balance / CREDIT_CAP, -1, 1)`. Unknown
    /// agents weigh 1.
    pub fn weight(&self, id: AgentId) -> f64 {
        1.0 + CREDIT_TILT * (self.balance(id) / CREDIT_CAP).clamp(-1.0, 1.0)
    }

    /// The weights for `ids`, in order.
    pub fn weights(&self, ids: &[AgentId]) -> Vec<f64> {
        ids.iter().map(|&id| self.weight(id)).collect()
    }

    /// Evaluates the temporal sharing-incentive inequality for every
    /// agent with a *full* `window`-epoch window: a violation is
    /// `sum(delivered) < (1 - slack) * sum(entitled)`. Returns the
    /// violation count and the worst (smallest) delivered/entitled ratio
    /// seen (1.0 when no agent has a full window yet).
    pub fn temporal_check(&self, window: usize, slack: f64) -> (usize, f64) {
        let mut violations = 0;
        let mut worst: f64 = 1.0;
        for entry in self.entries.values() {
            if window == 0 || entry.window.len() < window {
                continue;
            }
            let (delivered, entitled) = entry.window_sums();
            if entitled <= ENTITLED_FLOOR {
                continue;
            }
            let ratio = delivered / entitled;
            worst = worst.min(ratio);
            if delivered < (1.0 - slack) * entitled {
                violations += 1;
            }
        }
        (violations, worst)
    }

    /// Sum of all balances (≈ 0 up to floating-point error: mean-centering
    /// is exactly zero-sum, settlement and clamp-residual redistribution
    /// preserve the sum, and decay only shrinks whatever residue remains).
    pub fn total(&self) -> f64 {
        self.entries.values().map(|e| e.balance).sum()
    }

    /// Sum of absolute balances — how much credit is outstanding.
    pub fn total_abs(&self) -> f64 {
        self.entries.values().map(|e| e.balance.abs()).sum()
    }

    /// Largest absolute balance.
    pub fn max_abs(&self) -> f64 {
        self.entries
            .values()
            .map(|e| e.balance.abs())
            .fold(0.0, f64::max)
    }

    /// The entries in ascending id order, for serialization.
    pub(crate) fn parts(&self) -> Vec<(AgentId, &LedgerEntry)> {
        self.entries.iter().map(|(id, e)| (*id, e)).collect()
    }

    /// Rebuilds a ledger from serialized parts.
    pub(crate) fn from_parts(entries: Vec<(AgentId, LedgerEntry)>) -> CreditLedger {
        CreditLedger {
            entries: entries.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(rows: &[(AgentId, f64, f64)]) -> Vec<(AgentId, f64, f64)> {
        rows.to_vec()
    }

    #[test]
    fn accrual_is_zero_sum_and_under_service_credits() {
        let mut ledger = CreditLedger::new();
        ledger.admit(1);
        ledger.admit(2);
        // Agent 1 delivered half its entitlement; agent 2 is over-served.
        let s = ledger.accrue(&measured(&[(1, 0.5, 1.0), (2, 1.4, 1.0)]), 8);
        assert!(ledger.balance(1) > 0.0);
        assert!(ledger.balance(2) < 0.0);
        assert!(ledger.total().abs() < 1e-12, "{}", ledger.total());
        assert_eq!(s.accrued, 1);
        assert_eq!(s.spent, 0);
        // The flipped epoch spends agent 1's credit.
        let s = ledger.accrue(&measured(&[(1, 1.4, 1.0), (2, 0.5, 1.0)]), 8);
        assert_eq!(s.spent, 1);
    }

    #[test]
    fn weights_respond_to_balances_and_stay_bounded() {
        let mut ledger = CreditLedger::new();
        ledger.admit(1);
        ledger.admit(2);
        assert_eq!(ledger.weight(1), 1.0);
        for _ in 0..200 {
            ledger.accrue(&measured(&[(1, 0.1, 1.0), (2, 1.9, 1.0)]), 8);
        }
        // Saturated balances pin the weights at the tilt bound.
        assert!(ledger.weight(1) > 1.0 + CREDIT_TILT * 0.9);
        assert!(ledger.weight(2) < 1.0 - CREDIT_TILT * 0.9);
        assert!(ledger.weight(1) <= 1.0 + CREDIT_TILT);
        assert!(ledger.weight(2) >= 1.0 - CREDIT_TILT);
        assert_eq!(
            ledger.weights(&[1, 2, 99]),
            vec![ledger.weight(1), ledger.weight(2), 1.0]
        );
    }

    #[test]
    fn settlement_redistributes_and_preserves_the_sum() {
        let mut ledger = CreditLedger::new();
        for id in 1..=3 {
            ledger.admit(id);
        }
        ledger.accrue(&measured(&[(1, 0.2, 1.0), (2, 1.0, 1.0), (3, 1.8, 1.0)]), 8);
        let before = ledger.total();
        let b1 = ledger.balance(1);
        ledger.settle(1);
        assert_eq!(ledger.len(), 2);
        assert!((ledger.total() - before).abs() < 1e-12);
        // The survivors split the departing balance equally.
        assert!((ledger.balance(2) - b1 / 2.0).abs() < 1e-12);
        // Settling an unknown id is a no-op.
        ledger.settle(42);
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn rebaseline_zeroes_the_agent_but_conserves_the_ledger() {
        let mut ledger = CreditLedger::new();
        ledger.admit(1);
        ledger.admit(2);
        ledger.accrue(&measured(&[(1, 0.2, 1.0), (2, 1.8, 1.0)]), 8);
        let total = ledger.total();
        assert!(ledger.balance(1) > 0.0);
        assert!(!ledger.entry(1).unwrap().window.is_empty());
        ledger.rebaseline(1);
        assert_eq!(ledger.balance(1), 0.0);
        assert!(ledger.entry(1).unwrap().window.is_empty());
        assert!((ledger.total() - total).abs() < 1e-12);
        // The whole stale balance moved to agent 2.
        assert!(ledger.balance(2) < 0.0 || ledger.balance(2) > 0.0 || total == 0.0);
    }

    #[test]
    fn temporal_check_needs_a_full_window() {
        let mut ledger = CreditLedger::new();
        ledger.admit(1);
        // Three under-served epochs, window of 4: no verdict yet.
        for _ in 0..3 {
            ledger.accrue(&measured(&[(1, 0.5, 1.0)]), 4);
        }
        assert_eq!(ledger.temporal_check(4, 0.05), (0, 1.0));
        // The fourth epoch fills the window: cumulative 2.0 < 0.95 * 4.0.
        ledger.accrue(&measured(&[(1, 0.5, 1.0)]), 4);
        let (violations, worst) = ledger.temporal_check(4, 0.05);
        assert_eq!(violations, 1);
        assert!((worst - 0.5).abs() < 1e-12);
        // Recovery epochs roll the bad history out of the window.
        for _ in 0..4 {
            ledger.accrue(&measured(&[(1, 1.1, 1.0)]), 4);
        }
        assert_eq!(ledger.temporal_check(4, 0.05).0, 0);
    }

    #[test]
    fn windows_are_bounded_and_clearable() {
        let mut ledger = CreditLedger::new();
        ledger.admit(1);
        for _ in 0..20 {
            ledger.accrue(&measured(&[(1, 1.0, 1.0)]), 6);
        }
        assert_eq!(ledger.entry(1).unwrap().window.len(), 6);
        ledger.clear_windows();
        assert!(ledger.entry(1).unwrap().window.is_empty());
    }

    #[test]
    fn parts_round_trip() {
        let mut ledger = CreditLedger::new();
        ledger.admit(3);
        ledger.admit(9);
        ledger.accrue(&measured(&[(3, 0.4, 1.0), (9, 1.6, 1.0)]), 4);
        let parts = ledger
            .parts()
            .into_iter()
            .map(|(id, e)| (id, e.clone()))
            .collect();
        assert_eq!(CreditLedger::from_parts(parts), ledger);
    }

    #[test]
    fn degenerate_measurements_accrue_nothing() {
        let mut ledger = CreditLedger::new();
        ledger.admit(1);
        ledger.admit(2);
        ledger.accrue(&measured(&[(1, 1.0, 0.0), (2, f64::NAN, f64::INFINITY)]), 4);
        assert_eq!(ledger.balance(1), 0.0);
        assert_eq!(ledger.balance(2), 0.0);
        assert_eq!(ledger.accrue(&[], 4), AccrualSummary::default());
    }
}
