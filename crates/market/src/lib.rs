//! # ref-market
//!
//! An online, epoch-driven allocation service that turns the batch REF
//! pipeline (profile → fit → allocate → enforce) into a long-running
//! market.
//!
//! The paper's §4.4 describes the loop this crate industrializes: naive
//! agents start from the uniform prior `u = x^0.5 y^0.5`, the system
//! allocates by current estimates, agents observe performance at their
//! (slightly varied) allocations, and the estimates — and with them the
//! allocation — converge to the REF point of the true utilities. Here that
//! loop runs forever, with agents joining and leaving:
//!
//! ```text
//!          ┌────────────────────────────────────────────────────────┐
//!          │                      MarketEngine                      │
//!  events  │  ┌────────┐   ┌─────────┐   ┌──────────┐   ┌───────┐  │
//!  ───────▶│  │ admit/ │──▶│  refit  │──▶│ allocate │──▶│ audit │  │
//!  join /  │  │ evict  │   │ (online │   │ (REF w/  │   │ SI/EF │  │
//!  leave / │  └────────┘   │  estim.)│   │  cache)  │   │ /PE   │  │
//!  demand  │               └─────────┘   └──────────┘   └───────┘  │
//!  / tick  │                    ▲              │                   │
//!          │                    │              ▼                   │
//!          │               ┌─────────┐   ┌──────────┐              │
//!          │               │ observe │◀──│ enforce  │              │
//!          │               │ (sim or │   │ (stride  │              │
//!          │               │  truth) │   │  sched.) │              │
//!          │               └─────────┘   └──────────┘              │
//!          └────────────────────────────────────────────────────────┘
//! ```
//!
//! - [`events`] — the event API ([`MarketEvent`](events::MarketEvent)):
//!   `AgentJoined`, `AgentLeft`, `DemandChanged`, `ObservationReported`,
//!   `EpochTick`, processed in submission-order batches.
//! - [`agent`] — per-agent state: an
//!   [`OnlineEstimator`](ref_core::online::OnlineEstimator) plus the
//!   agent's observation source (hidden ground truth, the cycle-level
//!   simulator, or externally reported measurements).
//! - [`engine`] — the [`MarketEngine`](engine::MarketEngine) epoch loop
//!   with incremental reallocation (a population fingerprint keyed on
//!   fitted elasticities skips recomputation when nothing moved beyond a
//!   tolerance).
//! - [`epoch`] — the per-epoch report: allocation, fairness verdicts,
//!   enforcement deviations, refits, observations.
//! - [`audit`] — SI/EF/PE property auditing with violation counters and a
//!   warm-up grace window.
//! - [`ledger`] — the [`CreditLedger`](ledger::CreditLedger): cross-epoch
//!   delivered-vs-entitled accounting that powers the credit mechanism's
//!   weight tilt and the temporal (W-window) sharing-incentive audit.
//! - [`snapshot`] — versioned, text-serialized full market state; a
//!   restarted service resumes mid-market with bit-identical allocations.
//! - [`metrics`] — service counters (events, reallocations vs cache hits,
//!   refits, violations).
//!
//! ## Quickstart
//!
//! ```
//! use ref_market::agent::ObservationSource;
//! use ref_market::engine::{MarketConfig, MarketEngine};
//! use ref_market::events::MarketEvent;
//! use ref_core::resource::Capacity;
//! use ref_core::utility::CobbDouglas;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0])?);
//! let mut market = MarketEngine::new(config)?;
//! market.submit(MarketEvent::AgentJoined {
//!     id: 1,
//!     source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.6, 0.4])?),
//! });
//! market.submit(MarketEvent::AgentJoined {
//!     id: 2,
//!     source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.2, 0.8])?),
//! });
//! for _ in 0..20 {
//!     market.submit(MarketEvent::EpochTick);
//! }
//! let reports = market.pump()?;
//! let last = reports.last().expect("ticked 20 epochs");
//! // The fitted market converges to the paper's REF point (18, 4)/(6, 8).
//! let alloc = last.allocation.as_ref().expect("two live agents");
//! assert!((alloc.bundle(0).get(0) - 18.0).abs() < 0.6);
//! assert_eq!(market.auditor().si_violations_after_warmup(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agent;
pub mod audit;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod events;
pub mod ledger;
pub mod metrics;
pub mod snapshot;
pub mod warm;

pub use agent::{AgentId, AgentState, ObservationSource};
pub use audit::Auditor;
pub use engine::{MarketConfig, MarketEngine, MechanismKind};
pub use epoch::{EpochReport, ReallocationOutcome};
pub use error::{MarketError, Result};
pub use events::MarketEvent;
pub use ledger::CreditLedger;
pub use metrics::MarketMetrics;
pub use snapshot::MarketSnapshot;
pub use warm::WarmStartCache;
