//! Service counters: what the market did, at a glance.

use std::fmt;

/// Cumulative counters over the market's lifetime.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MarketMetrics {
    /// Epochs executed.
    pub epochs: u64,
    /// Events processed (all kinds).
    pub events: u64,
    /// Agents admitted.
    pub joins: u64,
    /// Agents departed.
    pub leaves: u64,
    /// Demand-change flushes applied.
    pub demand_changes: u64,
    /// External observations ingested.
    pub external_observations: u64,
    /// Epochs that recomputed the allocation.
    pub reallocations: u64,
    /// Epochs that reused the cached allocation (fingerprint unchanged).
    pub cache_hits: u64,
    /// Successful estimator refits across all agents.
    pub refits: u64,
    /// Events rejected with an error.
    pub rejected_events: u64,
}

impl MarketMetrics {
    /// Creates zeroed counters.
    pub fn new() -> MarketMetrics {
        MarketMetrics::default()
    }

    /// Fraction of epochs served from the allocation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let decisions = self.reallocations + self.cache_hits;
        if decisions == 0 {
            0.0
        } else {
            self.cache_hits as f64 / decisions as f64
        }
    }
}

impl fmt::Display for MarketMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs {} | events {} (join {} / leave {} / demand {} / obs {} / rejected {}) | \
             realloc {} + cached {} ({:.0}% hit) | refits {}",
            self.epochs,
            self.events,
            self.joins,
            self.leaves,
            self.demand_changes,
            self.external_observations,
            self.rejected_events,
            self.reallocations,
            self.cache_hits,
            100.0 * self.cache_hit_rate(),
            self.refits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_rate_handles_empty_history() {
        assert_eq!(MarketMetrics::new().cache_hit_rate(), 0.0);
    }

    #[test]
    fn display_summarizes_counters() {
        let m = MarketMetrics {
            epochs: 10,
            reallocations: 4,
            cache_hits: 6,
            ..MarketMetrics::new()
        };
        let s = m.to_string();
        assert!(s.contains("epochs 10"), "{s}");
        assert!(s.contains("60% hit"), "{s}");
    }
}
