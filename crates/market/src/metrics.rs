//! Service counters: what the market did, at a glance — plus the stable
//! JSON/text forms consumed by the ref-serve metrics endpoint.
//!
//! The JSON encoders here are *goldened*: field names, field order and
//! number formatting are part of the wire contract and must not drift
//! between releases. Every `f64` is printed with Rust's shortest
//! round-trip formatting, so a value parsed back from the JSON is
//! bit-identical to the value that produced it.

use std::fmt;
use std::fmt::Write as _;

use crate::epoch::{EpochReport, ReallocationOutcome};

/// Formats an `f64` as a JSON number token using the shortest decimal
/// representation that round-trips to the same bits (`null` for
/// non-finite values, which JSON cannot carry).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Writes a JSON array of `f64`s using [`json_f64`] for each element.
fn json_f64_array(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*v));
    }
    out.push(']');
    out
}

/// Cumulative counters over the market's lifetime.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MarketMetrics {
    /// Epochs executed.
    pub epochs: u64,
    /// Events processed (all kinds).
    pub events: u64,
    /// Agents admitted.
    pub joins: u64,
    /// Agents departed.
    pub leaves: u64,
    /// Demand-change flushes applied.
    pub demand_changes: u64,
    /// External observations ingested.
    pub external_observations: u64,
    /// Epochs that recomputed the allocation.
    pub reallocations: u64,
    /// Epochs that reused the cached allocation (fingerprint unchanged).
    pub cache_hits: u64,
    /// Successful estimator refits across all agents.
    pub refits: u64,
    /// Events rejected with an error.
    pub rejected_events: u64,
    /// Refit attempts that produced a degenerate (non-finite or invalid)
    /// fit and were discarded in favor of the agent's last good estimate.
    pub degenerate_refits: u64,
    /// Agents that crossed the consecutive-degenerate threshold and were
    /// quarantined (counted per transition into quarantine, not per
    /// quarantined epoch).
    pub quarantines: u64,
    /// Capacity reallotments applied (cross-shard coordination updates
    /// delivered as [`crate::MarketEvent::CapacityRealloted`]).
    pub reallotments: u64,
    /// Optimization-backed reallocations seeded from the warm-start cache
    /// (the previous epoch's optimum). Closed-form mechanisms never touch
    /// this counter.
    pub warm_start_hits: u64,
    /// Optimization-backed reallocations that ran from a cold start (no
    /// usable cached optimum: first solve, membership churn, demand
    /// change, reallotment or quarantine invalidation).
    pub warm_start_misses: u64,
    /// Successful estimator refits served by the incremental `O(R^2)`
    /// triangle-append path rather than a from-scratch refactorization.
    pub incremental_refits: u64,
    /// Agent-epochs whose ledger accrual was positive (the agent fell
    /// further below its cumulative fair share).
    pub credits_accrued: u64,
    /// Agent-epochs where a positive balance absorbed over-service (the
    /// mechanism repaying accumulated credit).
    pub credits_spent: u64,
    /// Post-warm-up agent-epochs violating the temporal (windowed)
    /// sharing-incentive inequality.
    pub temporal_si_violations: u64,
}

impl MarketMetrics {
    /// Creates zeroed counters.
    pub fn new() -> MarketMetrics {
        MarketMetrics::default()
    }

    /// Fraction of epochs served from the allocation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let decisions = self.reallocations + self.cache_hits;
        if decisions == 0 {
            0.0
        } else {
            self.cache_hits as f64 / decisions as f64
        }
    }

    /// Stable single-line JSON form. Field names and order are fixed
    /// (declaration order plus a derived `cache_hit_rate`); goldens in the
    /// test module pin the exact bytes.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"epochs\":{},\"events\":{},\"joins\":{},\"leaves\":{},\
             \"demand_changes\":{},\"external_observations\":{},\
             \"reallocations\":{},\"cache_hits\":{},\"refits\":{},\
             \"rejected_events\":{},\"degenerate_refits\":{},\
             \"quarantines\":{},\"reallotments\":{},\"warm_start_hits\":{},\
             \"warm_start_misses\":{},\"incremental_refits\":{},\
             \"credits_accrued\":{},\"credits_spent\":{},\
             \"temporal_si_violations\":{},\"cache_hit_rate\":{}}}",
            self.epochs,
            self.events,
            self.joins,
            self.leaves,
            self.demand_changes,
            self.external_observations,
            self.reallocations,
            self.cache_hits,
            self.refits,
            self.rejected_events,
            self.degenerate_refits,
            self.quarantines,
            self.reallotments,
            self.warm_start_hits,
            self.warm_start_misses,
            self.incremental_refits,
            self.credits_accrued,
            self.credits_spent,
            self.temporal_si_violations,
            json_f64(self.cache_hit_rate())
        )
    }

    /// Stable `name value` text form (one counter per line, fixed order),
    /// for Prometheus-style scrape endpoints.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in [
            ("refmarket_epochs", self.epochs),
            ("refmarket_events", self.events),
            ("refmarket_joins", self.joins),
            ("refmarket_leaves", self.leaves),
            ("refmarket_demand_changes", self.demand_changes),
            (
                "refmarket_external_observations",
                self.external_observations,
            ),
            ("refmarket_reallocations", self.reallocations),
            ("refmarket_cache_hits", self.cache_hits),
            ("refmarket_refits", self.refits),
            ("refmarket_rejected_events", self.rejected_events),
            ("refmarket_degenerate_refits", self.degenerate_refits),
            ("refmarket_quarantines", self.quarantines),
            ("refmarket_reallotments", self.reallotments),
            ("refmarket_warm_start_hits", self.warm_start_hits),
            ("refmarket_warm_start_misses", self.warm_start_misses),
            ("refmarket_incremental_refits", self.incremental_refits),
            ("refmarket_credits_accrued", self.credits_accrued),
            ("refmarket_credits_spent", self.credits_spent),
            (
                "refmarket_temporal_si_violations",
                self.temporal_si_violations,
            ),
        ] {
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

impl ReallocationOutcome {
    /// Stable lower-snake-case wire label.
    pub fn label(&self) -> &'static str {
        match self {
            ReallocationOutcome::Reallocated => "reallocated",
            ReallocationOutcome::CacheHit => "cache_hit",
            ReallocationOutcome::EmptyMarket => "empty_market",
        }
    }
}

impl EpochReport {
    /// Stable single-line JSON form of the report.
    ///
    /// Field order is fixed; allocations serialize as one `f64` array per
    /// agent (in [`EpochReport::agents`] order), the fairness report
    /// collapses to verdicts plus violation counts, and enforcement keeps
    /// only each resource's worst deviation. All `f64`s use shortest
    /// round-trip formatting, so the JSON is bit-stable for goldens.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"epoch\":{}", self.epoch);
        let _ = write!(out, ",\"agents\":[");
        for (i, id) in self.agents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{id}");
        }
        out.push(']');
        let _ = write!(out, ",\"realloc\":\"{}\"", self.realloc.label());
        let _ = write!(out, ",\"warm\":{}", self.warm);
        let _ = write!(out, ",\"observations\":{}", self.observations);
        let _ = write!(out, ",\"refits\":{}", self.refits);
        let _ = write!(out, ",\"temporal_violations\":{}", self.temporal_violations);
        let _ = write!(
            out,
            ",\"worst_temporal_ratio\":{}",
            json_f64(self.worst_temporal_ratio)
        );
        match &self.allocation {
            None => out.push_str(",\"allocation\":null"),
            Some(alloc) => {
                out.push_str(",\"allocation\":[");
                for (i, b) in alloc.bundles().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_f64_array(b.as_slice()));
                }
                out.push(']');
            }
        }
        match &self.fairness {
            None => out.push_str(",\"fairness\":null"),
            Some(fair) => {
                let _ = write!(
                    out,
                    ",\"fairness\":{{\"sharing_incentives\":{},\"envy_free\":{},\
                     \"pareto_efficient\":{},\"si_violations\":{},\"envy_edges\":{},\
                     \"max_mrs_mismatch\":{}}}",
                    fair.sharing_incentives(),
                    fair.envy_free(),
                    fair.pareto_efficient,
                    fair.si_violations.len(),
                    fair.envy_edges.len(),
                    json_f64(fair.max_mrs_mismatch)
                );
            }
        }
        out.push_str(",\"enforcement\":[");
        for (i, e) in self.enforcement.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"resource\":{},\"max_deviation\":{}}}",
                e.resource,
                json_f64(e.max_deviation)
            );
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"worst_enforcement_deviation\":{}",
            json_f64(self.worst_enforcement_deviation())
        );
        out.push('}');
        out
    }
}

impl fmt::Display for MarketMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epochs {} | events {} (join {} / leave {} / demand {} / obs {} / rejected {}) | \
             realloc {} + cached {} ({:.0}% hit) | refits {} \
             (degenerate {} / quarantines {})",
            self.epochs,
            self.events,
            self.joins,
            self.leaves,
            self.demand_changes,
            self.external_observations,
            self.rejected_events,
            self.reallocations,
            self.cache_hits,
            100.0 * self.cache_hit_rate(),
            self.refits,
            self.degenerate_refits,
            self.quarantines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_hit_rate_handles_empty_history() {
        assert_eq!(MarketMetrics::new().cache_hit_rate(), 0.0);
    }

    #[test]
    fn display_summarizes_counters() {
        let m = MarketMetrics {
            epochs: 10,
            reallocations: 4,
            cache_hits: 6,
            ..MarketMetrics::new()
        };
        let s = m.to_string();
        assert!(s.contains("epochs 10"), "{s}");
        assert!(s.contains("60% hit"), "{s}");
    }

    #[test]
    fn metrics_json_golden_is_bit_stable() {
        let m = MarketMetrics {
            epochs: 10,
            events: 42,
            joins: 3,
            leaves: 1,
            demand_changes: 2,
            external_observations: 7,
            reallocations: 4,
            cache_hits: 6,
            refits: 9,
            rejected_events: 5,
            degenerate_refits: 2,
            quarantines: 1,
            reallotments: 8,
            warm_start_hits: 11,
            warm_start_misses: 4,
            incremental_refits: 9,
            credits_accrued: 13,
            credits_spent: 12,
            temporal_si_violations: 3,
        };
        assert_eq!(
            m.to_json(),
            "{\"epochs\":10,\"events\":42,\"joins\":3,\"leaves\":1,\
             \"demand_changes\":2,\"external_observations\":7,\
             \"reallocations\":4,\"cache_hits\":6,\"refits\":9,\
             \"rejected_events\":5,\"degenerate_refits\":2,\
             \"quarantines\":1,\"reallotments\":8,\"warm_start_hits\":11,\
             \"warm_start_misses\":4,\"incremental_refits\":9,\
             \"credits_accrued\":13,\"credits_spent\":12,\
             \"temporal_si_violations\":3,\"cache_hit_rate\":0.6}"
        );
        assert_eq!(MarketMetrics::new().to_json().matches(':').count(), 20);
    }

    #[test]
    fn metrics_text_golden_is_line_per_counter() {
        let m = MarketMetrics {
            epochs: 2,
            events: 3,
            ..MarketMetrics::new()
        };
        let text = m.to_text();
        assert!(text.starts_with("refmarket_epochs 2\nrefmarket_events 3\n"));
        assert_eq!(text.lines().count(), 19);
        assert!(text.ends_with("refmarket_temporal_si_violations 0\n"));
    }

    #[test]
    fn epoch_report_json_golden_is_bit_stable() {
        use crate::epoch::{EnforcementSummary, EpochReport, ReallocationOutcome};
        use ref_core::resource::{Allocation, Bundle, Capacity};

        let empty = EpochReport {
            epoch: 0,
            agents: vec![],
            realloc: ReallocationOutcome::EmptyMarket,
            allocation: None,
            fairness: None,
            enforcement: vec![],
            warm: true,
            observations: 0,
            refits: 0,
            temporal_violations: 0,
            worst_temporal_ratio: 1.0,
        };
        assert_eq!(
            empty.to_json(),
            "{\"epoch\":0,\"agents\":[],\"realloc\":\"empty_market\",\"warm\":true,\
             \"observations\":0,\"refits\":0,\"temporal_violations\":0,\
             \"worst_temporal_ratio\":1,\"allocation\":null,\"fairness\":null,\
             \"enforcement\":[],\"worst_enforcement_deviation\":0}"
        );

        let capacity = Capacity::new(vec![24.0, 12.0]).unwrap();
        let alloc = Allocation::new(
            vec![
                Bundle::new(vec![18.0, 4.0]).unwrap(),
                Bundle::new(vec![6.0, 8.0]).unwrap(),
            ],
            &capacity,
        )
        .unwrap();
        let report = EpochReport {
            epoch: 7,
            agents: vec![1, 2],
            realloc: ReallocationOutcome::CacheHit,
            allocation: Some(alloc),
            fairness: None,
            enforcement: vec![EnforcementSummary {
                resource: 0,
                target: vec![0.75, 0.25],
                achieved: vec![0.74, 0.26],
                max_deviation: 0.01,
            }],
            warm: false,
            observations: 2,
            refits: 1,
            temporal_violations: 1,
            worst_temporal_ratio: 0.875,
        };
        assert_eq!(
            report.to_json(),
            "{\"epoch\":7,\"agents\":[1,2],\"realloc\":\"cache_hit\",\"warm\":false,\
             \"observations\":2,\"refits\":1,\"temporal_violations\":1,\
             \"worst_temporal_ratio\":0.875,\"allocation\":[[18,4],[6,8]],\
             \"fairness\":null,\
             \"enforcement\":[{\"resource\":0,\"max_deviation\":0.01}],\
             \"worst_enforcement_deviation\":0.01}"
        );
    }

    #[test]
    fn json_f64_round_trips_bits_and_rejects_non_finite() {
        for x in [0.6, 1.0 / 3.0, 1e-300, -4.25, 6.0e22] {
            let parsed: f64 = json_f64(x).parse().unwrap();
            assert_eq!(parsed.to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
