//! Versioned snapshot/restore of full market state.
//!
//! A [`MarketSnapshot`] captures everything a restarted service needs to
//! resume a market mid-run: configuration, epoch counters, each agent's
//! observation log (estimators are rebuilt by deterministic replay), the
//! allocation cache, and the audit/metric counters.
//!
//! The wire format is a line-oriented text document. Every `f64` is
//! stored as the hexadecimal form of its IEEE-754 bits, so encode →
//! decode → restore reproduces the original state *bit for bit* — the
//! restored market's next epoch allocates identically to the original's.
//! Lines are self-describing (`capacity …`, `agent …`, `o …`), parsed
//! strictly in order, and the leading `refmarket-snapshot v3` magic
//! rejects foreign or future documents up front. v2 documents (written
//! before the credit ledger existed) still decode: the missing sections
//! take their zero/default values and the snapshot is upgraded to v3 on
//! read, so re-encoding always writes the current format.

use std::collections::VecDeque;
use std::fmt::Write as _;

use ref_core::fitting::FitPoint;
use ref_core::resource::{Allocation, Bundle, Capacity};
use ref_core::utility::CobbDouglas;

use crate::agent::{AgentId, ObservationSource};
use crate::audit::Auditor;
use crate::engine::{Fingerprint, MarketConfig, MechanismKind};
use crate::error::{MarketError, Result};
use crate::ledger::{CreditLedger, LedgerEntry};
use crate::metrics::MarketMetrics;
use crate::warm::WarmStartCache;

/// The snapshot format version this build writes (it reads v2 and v3).
///
/// v2 added the allocation mechanism to the config section, the
/// warm-start cache section, and the warm-start/incremental-refit
/// counters to the metrics line. v3 added the temporal-SI audit config,
/// the credit ledger section, the fingerprint tilt line, and the
/// temporal/credit counters on the auditor and metrics lines.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The previous format version, still accepted by
/// [`MarketSnapshot::decode`] and upgraded to [`SNAPSHOT_VERSION`] on
/// read (missing sections take zero/default values, bit-identical to a
/// market that had never accrued credit).
pub const SNAPSHOT_VERSION_V2: u32 = 2;

const MAGIC: &str = "refmarket-snapshot";

/// One agent's persisted state: identity, source, observation log.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSnapshot {
    /// The agent's stable id.
    pub id: AgentId,
    /// Epoch the agent was admitted.
    pub joined_epoch: u64,
    /// How the agent's observations are produced.
    pub source: ObservationSource,
    /// The estimator's observation log, in arrival order; replaying it
    /// reconstructs the estimator exactly.
    pub observations: Vec<FitPoint>,
}

/// Full market state at a point in time.
///
/// Produced by [`MarketEngine::snapshot`](crate::engine::MarketEngine::snapshot),
/// consumed by [`MarketEngine::restore`](crate::engine::MarketEngine::restore);
/// [`encode`](MarketSnapshot::encode) / [`decode`](MarketSnapshot::decode)
/// convert to and from the text wire format.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The market's static configuration.
    pub config: MarketConfig,
    /// Next epoch number to execute.
    pub epoch: u64,
    /// Epoch of the last membership or demand change (warm-up anchor).
    pub stable_since: u64,
    /// Fairness-audit counters.
    pub auditor: Auditor,
    /// Service counters.
    pub metrics: MarketMetrics,
    /// The reallocation cache: population fingerprint and the allocation
    /// it maps to. Restored bit-exactly so cache decisions — and with
    /// them the served allocation bits — survive a restart.
    pub cache: Option<(Fingerprint, Allocation)>,
    /// The warm-start cache seeding optimization-backed mechanisms.
    /// Restored bit-exactly so a restarted market's next GP solve starts
    /// from the same point — and lands on the same bits — as the
    /// original's would have.
    pub warm: WarmStartCache,
    /// The credit ledger: per-agent balances and delivered/entitled
    /// windows (empty for a decoded v2 document).
    pub ledger: CreditLedger,
    /// Live agents in ascending id order.
    pub agents: Vec<AgentSnapshot>,
}

fn hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// 64-bit FNV-1a over `bytes` (offset basis 0xcbf29ce484222325,
/// prime 0x100000001b3).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_hexes(line: &mut String, values: &[f64]) {
    for v in values {
        let _ = write!(line, " {}", hex(*v));
    }
}

impl MarketSnapshot {
    /// Serializes the snapshot to the text wire format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC} v{}", self.version);

        let c = &self.config;
        let mut line = "capacity".to_string();
        push_hexes(&mut line, c.capacity.as_slice());
        let _ = writeln!(out, "{line}");
        let _ = writeln!(out, "tolerance {}", hex(c.realloc_tolerance));
        let _ = writeln!(out, "audit-tolerance {}", hex(c.audit_tolerance));
        let _ = writeln!(out, "warmup {}", c.warmup_epochs);
        let _ = writeln!(out, "excitation {}", hex(c.excitation));
        let _ = writeln!(out, "quanta {}", c.enforcement_quanta);
        let _ = writeln!(out, "sim-instructions {}", c.sim_instructions);
        let _ = writeln!(out, "seed {}", c.seed);
        let _ = writeln!(out, "mechanism {}", c.mechanism.label());
        let _ = writeln!(out, "temporal-window {}", c.temporal_window);
        let _ = writeln!(out, "temporal-slack {}", hex(c.temporal_slack));

        let _ = writeln!(out, "epoch {}", self.epoch);
        let _ = writeln!(out, "stable-since {}", self.stable_since);
        let a = &self.auditor;
        let _ = writeln!(
            out,
            "auditor {} {} {} {} {} {} {} {} {}",
            a.epochs_audited,
            a.si_violation_epochs,
            a.ef_violation_epochs,
            a.pe_violation_epochs,
            a.si_after_warmup,
            a.ef_after_warmup,
            a.pe_after_warmup,
            a.temporal_si_violation_epochs,
            a.temporal_si_after_warmup
        );
        let m = &self.metrics;
        let _ = writeln!(
            out,
            "metrics {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            m.epochs,
            m.events,
            m.joins,
            m.leaves,
            m.demand_changes,
            m.external_observations,
            m.reallocations,
            m.cache_hits,
            m.refits,
            m.rejected_events,
            m.degenerate_refits,
            m.quarantines,
            m.reallotments,
            m.warm_start_hits,
            m.warm_start_misses,
            m.incremental_refits,
            m.credits_accrued,
            m.credits_spent,
            m.temporal_si_violations
        );

        match &self.cache {
            None => {
                let _ = writeln!(out, "cache none");
            }
            Some((fp, alloc)) => {
                let _ = writeln!(out, "cache present");
                let mut line = "fp-ids".to_string();
                for id in &fp.ids {
                    let _ = write!(line, " {id}");
                }
                let _ = writeln!(out, "{line}");
                let mut line = "fp-quant".to_string();
                for q in &fp.quantized {
                    let _ = write!(line, " {q}");
                }
                let _ = writeln!(out, "{line}");
                let mut line = "fp-capacity".to_string();
                for b in &fp.capacity_bits {
                    let _ = write!(line, " {b:016x}");
                }
                let _ = writeln!(out, "{line}");
                let mut line = "fp-tilt".to_string();
                for t in &fp.tilt {
                    let _ = write!(line, " {t}");
                }
                let _ = writeln!(out, "{line}");
                let _ = writeln!(out, "bundles {}", alloc.num_agents());
                for b in alloc.bundles() {
                    let mut line = "bundle".to_string();
                    push_hexes(&mut line, b.as_slice());
                    let _ = writeln!(out, "{line}");
                }
            }
        }

        let (warm_bundles, warm_aux, warm_t) = self.warm.parts();
        let _ = writeln!(out, "warm {}", warm_bundles.len());
        if !warm_bundles.is_empty() {
            for (id, bundle) in &warm_bundles {
                let mut line = format!("w {id}");
                push_hexes(&mut line, bundle);
                let _ = writeln!(out, "{line}");
            }
            let mut line = "warm-aux".to_string();
            push_hexes(&mut line, warm_aux);
            let _ = writeln!(out, "{line}");
            let _ = writeln!(out, "warm-t {}", hex(warm_t));
        }

        let entries = self.ledger.parts();
        let _ = writeln!(out, "ledger {}", entries.len());
        for (id, entry) in entries {
            let mut line = format!("l {id} {} {}", hex(entry.balance), entry.window.len());
            for (delivered, entitled) in &entry.window {
                let _ = write!(line, " {} {}", hex(*delivered), hex(*entitled));
            }
            let _ = writeln!(out, "{line}");
        }

        let _ = writeln!(out, "agents {}", self.agents.len());
        for agent in &self.agents {
            let _ = writeln!(out, "agent {} {}", agent.id, agent.joined_epoch);
            match &agent.source {
                ObservationSource::GroundTruth(u) => {
                    let mut line = format!("source truth {}", hex(u.scale()));
                    push_hexes(&mut line, u.elasticities());
                    let _ = writeln!(out, "{line}");
                }
                ObservationSource::Simulated { benchmark } => {
                    let _ = writeln!(out, "source sim {benchmark}");
                }
                ObservationSource::External => {
                    let _ = writeln!(out, "source external");
                }
            }
            let _ = writeln!(out, "obs {}", agent.observations.len());
            for p in &agent.observations {
                let mut line = format!("o {}", hex(p.output));
                push_hexes(&mut line, &p.inputs);
                let _ = writeln!(out, "{line}");
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    /// A 64-bit FNV-1a fingerprint of the encoded snapshot text.
    ///
    /// Two engines whose histories diverged — even by one bit of one
    /// `f64` — produce different fingerprints with overwhelming
    /// probability, while bit-identical replicas always agree. Used by
    /// the replication layer to detect standby divergence per epoch
    /// without shipping full snapshots.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.encode().as_bytes())
    }

    /// Parses a snapshot from the text wire format.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::Snapshot`] on bad magic, an unsupported
    /// version, or any malformed, missing or trailing line.
    pub fn decode(text: &str) -> Result<MarketSnapshot> {
        let mut lines = Reader::new(text);
        let header = lines.line("header")?;
        let version = header
            .strip_prefix(MAGIC)
            .map(str::trim)
            .and_then(|v| v.strip_prefix('v'))
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| bad(format!("not a {MAGIC} document: {header:?}")))?;
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_V2 {
            return Err(bad(format!(
                "unsupported version {version} (supported: \
                 {SNAPSHOT_VERSION_V2}, {SNAPSHOT_VERSION})"
            )));
        }
        let v3 = version == SNAPSHOT_VERSION;

        let capacity =
            Capacity::new(lines.tagged_f64s("capacity")?).map_err(|e| bad(e.to_string()))?;
        let config = MarketConfig {
            capacity: capacity.clone(),
            realloc_tolerance: lines.tagged_f64("tolerance")?,
            audit_tolerance: lines.tagged_f64("audit-tolerance")?,
            warmup_epochs: lines.tagged_u64("warmup")?,
            excitation: lines.tagged_f64("excitation")?,
            enforcement_quanta: lines.tagged_u64("quanta")?,
            sim_instructions: lines.tagged_u64("sim-instructions")?,
            seed: lines.tagged_u64("seed")?,
            mechanism: {
                let label = lines.tagged("mechanism")?;
                MechanismKind::from_label(label)
                    .ok_or_else(|| bad(format!("unknown mechanism {label:?}")))?
            },
            // v2 documents predate the temporal audit; the defaults below
            // must match `MarketConfig::new`.
            temporal_window: if v3 {
                lines.tagged_u64("temporal-window")?
            } else {
                16
            },
            temporal_slack: if v3 {
                lines.tagged_f64("temporal-slack")?
            } else {
                0.05
            },
        };
        let epoch = lines.tagged_u64("epoch")?;
        let stable_since = lines.tagged_u64("stable-since")?;

        let a = lines.tagged_u64s("auditor", if v3 { 9 } else { 7 })?;
        let auditor = Auditor {
            epochs_audited: a[0],
            si_violation_epochs: a[1],
            ef_violation_epochs: a[2],
            pe_violation_epochs: a[3],
            si_after_warmup: a[4],
            ef_after_warmup: a[5],
            pe_after_warmup: a[6],
            temporal_si_violation_epochs: if v3 { a[7] } else { 0 },
            temporal_si_after_warmup: if v3 { a[8] } else { 0 },
        };
        let m = lines.tagged_u64s("metrics", if v3 { 19 } else { 16 })?;
        let metrics = MarketMetrics {
            epochs: m[0],
            events: m[1],
            joins: m[2],
            leaves: m[3],
            demand_changes: m[4],
            external_observations: m[5],
            reallocations: m[6],
            cache_hits: m[7],
            refits: m[8],
            rejected_events: m[9],
            degenerate_refits: m[10],
            quarantines: m[11],
            reallotments: m[12],
            warm_start_hits: m[13],
            warm_start_misses: m[14],
            incremental_refits: m[15],
            credits_accrued: if v3 { m[16] } else { 0 },
            credits_spent: if v3 { m[17] } else { 0 },
            temporal_si_violations: if v3 { m[18] } else { 0 },
        };

        let cache = match lines.tagged("cache")? {
            "none" => None,
            "present" => {
                let ids = lines
                    .tagged("fp-ids")?
                    .split_whitespace()
                    .map(|t| {
                        t.parse::<AgentId>()
                            .map_err(|e| bad(format!("fp-ids: {e}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let quantized = lines
                    .tagged("fp-quant")?
                    .split_whitespace()
                    .map(|t| t.parse::<i64>().map_err(|e| bad(format!("fp-quant: {e}"))))
                    .collect::<Result<Vec<_>>>()?;
                let capacity_bits = lines
                    .tagged("fp-capacity")?
                    .split_whitespace()
                    .map(|t| {
                        u64::from_str_radix(t, 16).map_err(|e| bad(format!("fp-capacity: {e}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let tilt = if v3 {
                    lines
                        .tagged("fp-tilt")?
                        .split_whitespace()
                        .map(|t| t.parse::<i64>().map_err(|e| bad(format!("fp-tilt: {e}"))))
                        .collect::<Result<Vec<_>>>()?
                } else {
                    Vec::new()
                };
                let n = lines.tagged_u64("bundles")? as usize;
                let mut bundles = Vec::with_capacity(n);
                for _ in 0..n {
                    let b = Bundle::new(lines.tagged_f64s("bundle")?)
                        .map_err(|e| bad(e.to_string()))?;
                    bundles.push(b);
                }
                let alloc = Allocation::new(bundles, &capacity).map_err(|e| bad(e.to_string()))?;
                Some((
                    Fingerprint {
                        ids,
                        quantized,
                        capacity_bits,
                        tilt,
                    },
                    alloc,
                ))
            }
            other => return Err(bad(format!("cache must be present|none, got {other:?}"))),
        };

        let num_warm = lines.tagged_u64("warm")? as usize;
        let warm = if num_warm == 0 {
            WarmStartCache::new()
        } else {
            let mut bundles = Vec::with_capacity(num_warm);
            for _ in 0..num_warm {
                let line = lines.tagged("w")?;
                let mut toks = line.split_whitespace();
                let id = toks
                    .next()
                    .and_then(|t| t.parse::<AgentId>().ok())
                    .ok_or_else(|| bad(format!("warm entry {line:?}")))?;
                let values = toks.map(parse_f64).collect::<Result<Vec<_>>>()?;
                bundles.push((id, values));
            }
            let aux = parse_f64s(lines.tagged("warm-aux")?)?;
            let barrier_t = lines.tagged_f64("warm-t")?;
            WarmStartCache::from_parts(bundles, aux, barrier_t)
        };

        let ledger = if v3 {
            let num_entries = lines.tagged_u64("ledger")? as usize;
            let mut entries = Vec::with_capacity(num_entries);
            for _ in 0..num_entries {
                let line = lines.tagged("l")?;
                let mut toks = line.split_whitespace();
                let id = toks
                    .next()
                    .and_then(|t| t.parse::<AgentId>().ok())
                    .ok_or_else(|| bad(format!("ledger entry {line:?}")))?;
                let balance = toks
                    .next()
                    .map(parse_f64)
                    .transpose()?
                    .ok_or_else(|| bad(format!("ledger entry {line:?}")))?;
                let window_len = toks
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| bad(format!("ledger entry {line:?}")))?;
                let pairs = toks.map(parse_f64).collect::<Result<Vec<_>>>()?;
                if pairs.len() != 2 * window_len {
                    return Err(bad(format!(
                        "ledger entry for agent {id}: expected {window_len} \
                         window pairs, got {} values",
                        pairs.len()
                    )));
                }
                let window: VecDeque<(f64, f64)> =
                    pairs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
                entries.push((id, LedgerEntry { balance, window }));
            }
            CreditLedger::from_parts(entries)
        } else {
            CreditLedger::new()
        };

        let num_agents = lines.tagged_u64("agents")? as usize;
        let mut agents = Vec::with_capacity(num_agents);
        for _ in 0..num_agents {
            let head = lines.tagged("agent")?;
            let mut toks = head.split_whitespace();
            let id = toks
                .next()
                .and_then(|t| t.parse::<AgentId>().ok())
                .ok_or_else(|| bad(format!("agent header {head:?}")))?;
            let joined_epoch = toks
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| bad(format!("agent header {head:?}")))?;
            let src = lines.tagged("source")?;
            let source = if let Some(rest) = src.strip_prefix("truth") {
                let vals = parse_f64s(rest)?;
                let (scale, elasticities) = vals
                    .split_first()
                    .ok_or_else(|| bad("truth source needs a scale".to_string()))?;
                ObservationSource::GroundTruth(
                    CobbDouglas::new(*scale, elasticities.to_vec())
                        .map_err(|e| bad(e.to_string()))?,
                )
            } else if let Some(name) = src.strip_prefix("sim ") {
                ObservationSource::Simulated {
                    benchmark: name.trim().to_string(),
                }
            } else if src == "external" {
                ObservationSource::External
            } else {
                return Err(bad(format!("unknown source {src:?}")));
            };
            let num_obs = lines.tagged_u64("obs")? as usize;
            let mut observations = Vec::with_capacity(num_obs);
            for _ in 0..num_obs {
                let vals = parse_f64s(lines.tagged("o")?)?;
                let (output, inputs) = vals
                    .split_first()
                    .ok_or_else(|| bad("observation needs an output".to_string()))?;
                observations
                    .push(FitPoint::new(inputs.to_vec(), *output).map_err(|e| bad(e.to_string()))?);
            }
            agents.push(AgentSnapshot {
                id,
                joined_epoch,
                source,
                observations,
            });
        }

        if lines.line("end")? != "end" {
            return Err(bad("missing end marker".to_string()));
        }
        if let Some(extra) = lines.next_nonempty() {
            return Err(bad(format!("trailing content: {extra:?}")));
        }

        Ok(MarketSnapshot {
            // Upgrade-on-read: a decoded v2 document becomes a v3 snapshot
            // (with zeroed ledger/counters), so re-encoding always writes
            // the current format.
            version: SNAPSHOT_VERSION,
            config,
            epoch,
            stable_since,
            auditor,
            metrics,
            cache,
            warm,
            ledger,
            agents,
        })
    }
}

fn bad(msg: String) -> MarketError {
    MarketError::Snapshot(msg)
}

fn parse_f64(token: &str) -> Result<f64> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|e| bad(format!("bad f64 bits {token:?}: {e}")))
}

fn parse_f64s(text: &str) -> Result<Vec<f64>> {
    text.split_whitespace().map(parse_f64).collect()
}

/// Strict sequential line reader.
struct Reader<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            lines: text.lines(),
        }
    }

    fn next_nonempty(&mut self) -> Option<&'a str> {
        self.lines.by_ref().map(str::trim).find(|l| !l.is_empty())
    }

    fn line(&mut self, what: &str) -> Result<&'a str> {
        self.next_nonempty()
            .ok_or_else(|| bad(format!("unexpected end of snapshot, wanted {what}")))
    }

    /// Reads the next line and strips the expected tag.
    fn tagged(&mut self, tag: &str) -> Result<&'a str> {
        let line = self.line(tag)?;
        line.strip_prefix(tag)
            .map(str::trim)
            .ok_or_else(|| bad(format!("expected {tag:?} line, got {line:?}")))
    }

    fn tagged_u64(&mut self, tag: &str) -> Result<u64> {
        self.tagged(tag)?
            .parse::<u64>()
            .map_err(|e| bad(format!("{tag}: {e}")))
    }

    fn tagged_u64s(&mut self, tag: &str, count: usize) -> Result<Vec<u64>> {
        let vals = self
            .tagged(tag)?
            .split_whitespace()
            .map(|t| t.parse::<u64>().map_err(|e| bad(format!("{tag}: {e}"))))
            .collect::<Result<Vec<_>>>()?;
        if vals.len() != count {
            return Err(bad(format!(
                "{tag}: expected {count} counters, got {}",
                vals.len()
            )));
        }
        Ok(vals)
    }

    fn tagged_f64(&mut self, tag: &str) -> Result<f64> {
        parse_f64(self.tagged(tag)?)
    }

    fn tagged_f64s(&mut self, tag: &str) -> Result<Vec<f64>> {
        parse_f64s(self.tagged(tag)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MarketEngine;
    use crate::events::MarketEvent;

    fn busy_market() -> MarketEngine {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap());
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap()),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap()),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 3,
            source: ObservationSource::External,
        });
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 13));
        market.pump().unwrap();
        market
    }

    fn warm_gp_market() -> MarketEngine {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap())
            .with_mechanism(crate::engine::MechanismKind::MaxWelfare { fairness: true });
        let mut market = MarketEngine::new(config).unwrap();
        market.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap()),
        });
        market.submit(MarketEvent::AgentJoined {
            id: 2,
            source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap()),
        });
        market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 10));
        market.pump().unwrap();
        market
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let snap = busy_market().snapshot();
        let decoded = MarketSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn warm_start_cache_round_trips_bit_exactly() {
        let market = warm_gp_market();
        assert!(!market.warm_cache().is_empty());
        let snap = market.snapshot();
        assert!(!snap.warm.is_empty());
        let decoded = MarketSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.warm, snap.warm);
    }

    #[test]
    fn restored_gp_market_stays_warm_and_allocates_bit_identically() {
        let mut original = warm_gp_market();
        let text = original.snapshot().encode();
        let mut restored = MarketEngine::restore(&MarketSnapshot::decode(&text).unwrap()).unwrap();
        assert_eq!(restored.warm_cache(), original.warm_cache());
        // Continued epochs seed the GP solver from the restored cache on
        // both sides, so allocations — and the hit/miss counters — must
        // track bit for bit.
        for _ in 0..4 {
            original.submit(MarketEvent::EpochTick);
            restored.submit(MarketEvent::EpochTick);
            let a = original.pump().unwrap().pop().unwrap();
            let b = restored.pump().unwrap().pop().unwrap();
            assert_eq!(a.realloc, b.realloc);
            if let (Some(x), Some(y)) = (a.allocation, b.allocation) {
                for (bx, by) in x.bundles().iter().zip(y.bundles()) {
                    for r in 0..bx.num_resources() {
                        assert_eq!(bx.get(r).to_bits(), by.get(r).to_bits());
                    }
                }
            }
        }
        assert_eq!(original.metrics(), restored.metrics());
        assert!(restored.metrics().warm_start_hits > 0);
    }

    #[test]
    fn restored_market_allocates_bit_identically() {
        let mut original = busy_market();
        let text = original.snapshot().encode();
        let mut restored = MarketEngine::restore(&MarketSnapshot::decode(&text).unwrap()).unwrap();
        assert_eq!(restored.epoch(), original.epoch());
        assert_eq!(restored.metrics(), original.metrics());
        assert_eq!(restored.auditor(), original.auditor());

        // Drive both for several more epochs: every allocation must match
        // bit for bit, including the cache-hit/reallocate decisions.
        for _ in 0..6 {
            original.submit(MarketEvent::EpochTick);
            restored.submit(MarketEvent::EpochTick);
            let a = original.pump().unwrap().pop().unwrap();
            let b = restored.pump().unwrap().pop().unwrap();
            assert_eq!(a.realloc, b.realloc);
            let (x, y) = (a.allocation.unwrap(), b.allocation.unwrap());
            for (bx, by) in x.bundles().iter().zip(y.bundles()) {
                for r in 0..bx.num_resources() {
                    assert_eq!(bx.get(r).to_bits(), by.get(r).to_bits());
                }
            }
        }
    }

    #[test]
    fn restored_credit_market_keeps_its_ledger_and_allocates_bit_identically() {
        let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap())
            .with_mechanism(crate::engine::MechanismKind::Credit {
                inner: ref_core::mechanism::CreditInner::MaxWelfare,
            })
            .with_warmup_epochs(2);
        let mut original = MarketEngine::new(config).unwrap();
        original.submit(MarketEvent::AgentJoined {
            id: 1,
            source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.7, 0.3]).unwrap()),
        });
        original.submit(MarketEvent::AgentJoined {
            id: 2,
            source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.3, 0.7]).unwrap()),
        });
        original.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 12));
        original.pump().unwrap();

        let snap = original.snapshot();
        assert_eq!(snap.ledger.len(), 2);
        assert!(!snap.ledger.entry(1).unwrap().window.is_empty());
        let decoded = MarketSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.ledger, snap.ledger);

        // Continued epochs read the restored balances when tilting the
        // objective, so allocations and the ledger itself must track bit
        // for bit.
        let mut restored = MarketEngine::restore(&decoded).unwrap();
        for _ in 0..4 {
            original.submit(MarketEvent::EpochTick);
            restored.submit(MarketEvent::EpochTick);
            let a = original.pump().unwrap().pop().unwrap();
            let b = restored.pump().unwrap().pop().unwrap();
            assert_eq!(a.realloc, b.realloc);
            assert_eq!(a.temporal_violations, b.temporal_violations);
            let (x, y) = (a.allocation.unwrap(), b.allocation.unwrap());
            for (bx, by) in x.bundles().iter().zip(y.bundles()) {
                for r in 0..bx.num_resources() {
                    assert_eq!(bx.get(r).to_bits(), by.get(r).to_bits());
                }
            }
        }
        assert_eq!(original.ledger(), restored.ledger());
        assert_eq!(original.metrics(), restored.metrics());
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(MarketSnapshot::decode("").is_err());
        assert!(MarketSnapshot::decode("not-a-snapshot v1").is_err());
        assert!(MarketSnapshot::decode("refmarket-snapshot v999").is_err());

        let good = busy_market().snapshot().encode();
        // Truncation is detected.
        let lines: Vec<&str> = good.lines().collect();
        let truncated = lines[..lines.len() / 2].join("\n");
        assert!(MarketSnapshot::decode(&truncated).is_err());
        // Trailing garbage is detected.
        let trailing = format!("{good}\nextra line");
        assert!(MarketSnapshot::decode(&trailing).is_err());
        // A corrupted counter line is detected.
        let corrupt = good.replace("stable-since", "stable-sinister");
        assert!(MarketSnapshot::decode(&corrupt).is_err());
    }

    #[test]
    fn restore_rejects_unsupported_versions_and_duplicate_agents() {
        let mut snap = busy_market().snapshot();
        snap.version = 4;
        assert!(matches!(
            MarketEngine::restore(&snap),
            Err(MarketError::Snapshot(_))
        ));
        snap.version = SNAPSHOT_VERSION;
        let dup = snap.agents[0].clone();
        snap.agents.push(dup);
        assert!(matches!(
            MarketEngine::restore(&snap),
            Err(MarketError::DuplicateAgent(1))
        ));
    }

    /// Rewrites a v3 document as the v2 format this build's predecessor
    /// wrote: v2 header, no temporal config lines, 7-counter auditor,
    /// 16-counter metrics, no fp-tilt line and no ledger section.
    fn downgrade_to_v2(v3: &str) -> String {
        let mut out = Vec::new();
        let mut skip = 0usize;
        for line in v3.lines() {
            if skip > 0 {
                skip -= 1;
                continue;
            }
            if line.starts_with("refmarket-snapshot v3") {
                out.push("refmarket-snapshot v2".to_string());
            } else if line.starts_with("temporal-window")
                || line.starts_with("temporal-slack")
                || line.starts_with("fp-tilt")
            {
                continue;
            } else if let Some(rest) = line.strip_prefix("auditor ") {
                let kept: Vec<&str> = rest.split_whitespace().take(7).collect();
                out.push(format!("auditor {}", kept.join(" ")));
            } else if let Some(rest) = line.strip_prefix("metrics ") {
                let kept: Vec<&str> = rest.split_whitespace().take(16).collect();
                out.push(format!("metrics {}", kept.join(" ")));
            } else if let Some(n) = line.strip_prefix("ledger ") {
                skip = n.trim().parse::<usize>().unwrap();
            } else {
                out.push(line.to_string());
            }
        }
        out.join("\n") + "\n"
    }

    #[test]
    fn v2_documents_decode_and_upgrade_to_v3() {
        let snap = busy_market().snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert!(!snap.ledger.is_empty());
        let v2_text = downgrade_to_v2(&snap.encode());
        assert!(v2_text.starts_with("refmarket-snapshot v2\n"));

        let decoded = MarketSnapshot::decode(&v2_text).unwrap();
        // Upgrade-on-read: the decoded document is a v3 snapshot whose
        // new sections hold their zero/default values...
        assert_eq!(decoded.version, SNAPSHOT_VERSION);
        assert!(decoded.ledger.is_empty());
        assert_eq!(decoded.config.temporal_window, 16);
        assert_eq!(decoded.config.temporal_slack, 0.05);
        assert_eq!(decoded.metrics.credits_accrued, 0);
        assert_eq!(decoded.auditor.temporal_si_violation_epochs, 0);
        // ...while everything the v2 document carried survives bit-exactly.
        assert_eq!(decoded.agents, snap.agents);
        assert_eq!(decoded.warm, snap.warm);
        assert_eq!(decoded.epoch, snap.epoch);
        let (fp_old, alloc_old) = snap.cache.as_ref().unwrap();
        let (fp_new, alloc_new) = decoded.cache.as_ref().unwrap();
        assert_eq!(fp_new.ids, fp_old.ids);
        assert_eq!(fp_new.quantized, fp_old.quantized);
        assert_eq!(alloc_new, alloc_old);

        // The restored v2 market ticks: allocations stay bit-identical to
        // the v3 original's because non-credit mechanisms never read the
        // ledger (only the credit counters diverge, starting from zero).
        let mut original = MarketEngine::restore(&snap).unwrap();
        let mut restored = MarketEngine::restore(&decoded).unwrap();
        for _ in 0..4 {
            original.submit(MarketEvent::EpochTick);
            restored.submit(MarketEvent::EpochTick);
            let a = original.pump().unwrap().pop().unwrap();
            let b = restored.pump().unwrap().pop().unwrap();
            assert_eq!(a.realloc, b.realloc);
            let (x, y) = (a.allocation.unwrap(), b.allocation.unwrap());
            for (bx, by) in x.bundles().iter().zip(y.bundles()) {
                for r in 0..bx.num_resources() {
                    assert_eq!(bx.get(r).to_bits(), by.get(r).to_bits());
                }
            }
        }
    }
}
