//! Warm-start cache for optimization-backed allocation mechanisms.
//!
//! A GP-backed mechanism ([`MaxWelfare`](ref_core::mechanism::MaxWelfare),
//! [`EqualSlowdown`](ref_core::mechanism::EqualSlowdown)) spends most of
//! its time walking the interior-point central path from a generic start.
//! Between market epochs the population barely moves — the cached
//! fingerprint already skips solves whose *inputs* are unchanged, and the
//! [`WarmStartCache`] accelerates the solves that remain: it keeps the
//! previous optimum (per agent, plus any auxiliary variables and the final
//! barrier parameter) and seeds the next solve from it, so the solver
//! re-enters the central path a few outer iterations from the new optimum
//! instead of walking it end to end.
//!
//! The cache is invalidated conservatively. A hint is only offered when
//! the live population is *exactly* the id set the optimum was recorded
//! for; membership churn, a demand change, a capacity reallotment or an
//! agent quarantine drop the affected entries, and the solver itself
//! rejects any hint with non-finite or non-positive values (falling back
//! to the cold start, never failing a solve that would have succeeded).

use std::collections::BTreeMap;

use ref_core::mechanism::GpWarmStart;

use crate::agent::AgentId;

/// The previous epoch's optimum, split per agent so membership churn can
/// invalidate exactly the affected entries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WarmStartCache {
    /// Each agent's block of the primal optimum (its bundle variables).
    bundles: BTreeMap<AgentId, Vec<f64>>,
    /// Trailing non-agent variables (e.g. the egalitarian level `t`).
    aux: Vec<f64>,
    /// The barrier parameter the previous solve finished at.
    barrier_t: f64,
}

impl WarmStartCache {
    /// Creates an empty cache.
    pub fn new() -> WarmStartCache {
        WarmStartCache::default()
    }

    /// Whether the cache currently holds no optimum.
    pub fn is_empty(&self) -> bool {
        self.bundles.is_empty()
    }

    /// Records the optimum a mechanism just produced for `ids` (in bundle
    /// order). `warm.x` holds one block of `num_resources` variables per
    /// agent followed by any auxiliary variables.
    ///
    /// A malformed hint (shorter than the population requires) clears the
    /// cache instead of storing garbage.
    pub fn store(&mut self, ids: &[AgentId], num_resources: usize, warm: &GpWarmStart) {
        if warm.x.len() < ids.len() * num_resources {
            self.clear();
            return;
        }
        self.bundles.clear();
        for (i, &id) in ids.iter().enumerate() {
            let block = &warm.x[i * num_resources..(i + 1) * num_resources];
            self.bundles.insert(id, block.to_vec());
        }
        self.aux = warm.x[ids.len() * num_resources..].to_vec();
        self.barrier_t = warm.t;
    }

    /// Assembles a hint for a solve over `ids` (in bundle order), or
    /// `None` when the cache cannot usefully seed it: the population
    /// differs from the one the optimum was recorded for, or any cached
    /// value is non-finite or non-positive.
    pub fn hint(&self, ids: &[AgentId], num_resources: usize) -> Option<GpWarmStart> {
        if self.bundles.len() != ids.len() || self.bundles.is_empty() {
            return None;
        }
        let mut x = Vec::with_capacity(ids.len() * num_resources + self.aux.len());
        for id in ids {
            let block = self.bundles.get(id)?;
            if block.len() != num_resources {
                return None;
            }
            x.extend_from_slice(block);
        }
        x.extend_from_slice(&self.aux);
        if !x.iter().all(|v| v.is_finite() && *v > 0.0) || !self.barrier_t.is_finite() {
            return None;
        }
        Some(GpWarmStart {
            x,
            t: self.barrier_t,
        })
    }

    /// Drops one agent's entry (departure, demand change, quarantine).
    /// Subsequent [`WarmStartCache::hint`] calls miss until the next
    /// optimum is stored.
    pub fn invalidate(&mut self, id: AgentId) {
        self.bundles.remove(&id);
    }

    /// Drops everything (capacity reallotment, restore without warm state).
    pub fn clear(&mut self) {
        self.bundles.clear();
        self.aux.clear();
        self.barrier_t = 0.0;
    }

    /// The cached per-agent blocks, aux block and barrier parameter, for
    /// serialization. Ids ascend.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(&self) -> (Vec<(AgentId, &[f64])>, &[f64], f64) {
        (
            self.bundles
                .iter()
                .map(|(id, b)| (*id, b.as_slice()))
                .collect(),
            &self.aux,
            self.barrier_t,
        )
    }

    /// Rebuilds a cache from serialized parts.
    pub(crate) fn from_parts(
        bundles: Vec<(AgentId, Vec<f64>)>,
        aux: Vec<f64>,
        barrier_t: f64,
    ) -> WarmStartCache {
        WarmStartCache {
            bundles: bundles.into_iter().collect(),
            aux,
            barrier_t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm(x: Vec<f64>, t: f64) -> GpWarmStart {
        GpWarmStart { x, t }
    }

    #[test]
    fn hit_requires_exact_population_match() {
        let mut cache = WarmStartCache::new();
        assert!(cache.hint(&[1, 2], 2).is_none());
        cache.store(&[1, 2], 2, &warm(vec![18.0, 4.0, 6.0, 8.0], 1e5));
        assert!(!cache.is_empty());
        let hint = cache.hint(&[1, 2], 2).unwrap();
        assert_eq!(hint.x, vec![18.0, 4.0, 6.0, 8.0]);
        assert_eq!(hint.t, 1e5);
        // A different population — subset, superset or disjoint — misses.
        assert!(cache.hint(&[1], 2).is_none());
        assert!(cache.hint(&[1, 2, 3], 2).is_none());
        assert!(cache.hint(&[1, 3], 2).is_none());
    }

    #[test]
    fn aux_variables_ride_along() {
        let mut cache = WarmStartCache::new();
        cache.store(&[1, 2], 2, &warm(vec![18.0, 4.0, 6.0, 8.0, 0.25], 300.0));
        let hint = cache.hint(&[1, 2], 2).unwrap();
        assert_eq!(hint.x, vec![18.0, 4.0, 6.0, 8.0, 0.25]);
    }

    #[test]
    fn invalidation_forces_a_miss_until_next_store() {
        let mut cache = WarmStartCache::new();
        cache.store(&[1, 2], 2, &warm(vec![18.0, 4.0, 6.0, 8.0], 1e5));
        cache.invalidate(2);
        assert!(cache.hint(&[1, 2], 2).is_none());
        cache.store(&[1, 2], 2, &warm(vec![17.0, 5.0, 7.0, 7.0], 2e5));
        assert!(cache.hint(&[1, 2], 2).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.hint(&[1, 2], 2).is_none());
    }

    #[test]
    fn unusable_values_are_never_offered() {
        let mut cache = WarmStartCache::new();
        cache.store(&[1], 2, &warm(vec![1.0, f64::NAN], 1e3));
        assert!(cache.hint(&[1], 2).is_none());
        cache.store(&[1], 2, &warm(vec![1.0, 0.0], 1e3));
        assert!(cache.hint(&[1], 2).is_none());
        cache.store(&[1], 2, &warm(vec![1.0, 2.0], f64::INFINITY));
        assert!(cache.hint(&[1], 2).is_none());
        // A short hint clears rather than stores.
        cache.store(&[1, 2], 2, &warm(vec![1.0, 2.0], 1e3));
        assert!(cache.is_empty());
    }

    #[test]
    fn parts_round_trip() {
        let mut cache = WarmStartCache::new();
        cache.store(&[3, 9], 2, &warm(vec![18.0, 4.0, 6.0, 8.0, 0.5], 7e4));
        let (bundles, aux, t) = cache.parts();
        let rebuilt = WarmStartCache::from_parts(
            bundles
                .into_iter()
                .map(|(id, b)| (id, b.to_vec()))
                .collect(),
            aux.to_vec(),
            t,
        );
        assert_eq!(rebuilt, cache);
    }
}
