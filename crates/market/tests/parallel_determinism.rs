//! The epoch loop must be bit-deterministic at any pool width: per-agent
//! observations fan out across workers, but every random choice is keyed
//! by `(seed, epoch, agent id)` and outcomes fold in agent-id order.
//!
//! This file holds a single test: it flips the process-wide
//! `ref_pool::set_threads` override, which would race against unrelated
//! tests running in the same binary.

use ref_core::resource::Capacity;
use ref_core::utility::CobbDouglas;
use ref_market::{MarketConfig, MarketEngine, MarketEvent, ObservationSource};

fn final_allocation_bits() -> Vec<u64> {
    let config = MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap())
        .with_sim_instructions(8_000)
        .with_warmup_epochs(4);
    let mut market = MarketEngine::new(config).unwrap();
    market.submit(MarketEvent::AgentJoined {
        id: 1,
        source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap()),
    });
    market.submit(MarketEvent::AgentJoined {
        id: 2,
        source: ObservationSource::GroundTruth(CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap()),
    });
    market.submit(MarketEvent::AgentJoined {
        id: 3,
        source: ObservationSource::Simulated {
            benchmark: "histogram".to_string(),
        },
    });
    market.submit_all(std::iter::repeat_n(MarketEvent::EpochTick, 15));
    let reports = market.pump().unwrap();
    let alloc = reports.last().unwrap().allocation.as_ref().unwrap();
    alloc
        .bundles()
        .iter()
        .flat_map(|b| b.as_slice().iter().map(|q| q.to_bits()))
        .collect()
}

#[test]
fn epoch_loop_is_bit_identical_across_pool_widths() {
    ref_pool::set_threads(1);
    let serial = final_allocation_bits();
    for width in [2, 5] {
        ref_pool::set_threads(width);
        assert_eq!(
            serial,
            final_allocation_bits(),
            "market diverged at {width} workers"
        );
    }
    ref_pool::set_threads(0); // restore the default resolution order
}
