//! Property tests: random join/leave/tick interleavings never oversubscribe
//! capacity and never starve a live agent.

use proptest::prelude::*;

use ref_core::mechanism::CreditInner;
use ref_core::resource::Capacity;
use ref_core::utility::CobbDouglas;
use ref_market::{MarketConfig, MarketEngine, MarketEvent, MechanismKind, ObservationSource};

/// Decoded op: 0 = join, 1 = leave, 2 = tick.
fn drive(ops: &[(u32, u32, u32)], capacity: &[f64], seed: u64) -> Result<(), TestCaseError> {
    drive_with(ops, capacity, seed, MechanismKind::ProportionalElasticity)
}

fn drive_with(
    ops: &[(u32, u32, u32)],
    capacity: &[f64],
    seed: u64,
    mechanism: MechanismKind,
) -> Result<(), TestCaseError> {
    let capacity = Capacity::new(capacity.to_vec()).expect("positive capacity");
    let config = MarketConfig::new(capacity.clone())
        .with_seed(seed)
        .with_mechanism(mechanism);
    let mut market = MarketEngine::new(config).expect("valid config");

    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    for &(kind, pick, frac) in ops {
        match kind {
            0 => {
                // Join with a fresh id and strictly interior elasticities,
                // so every live agent demands every resource.
                let e0 = f64::from(frac) / 100.0;
                let source = ObservationSource::GroundTruth(
                    CobbDouglas::new(1.0, vec![e0, 1.0 - e0]).expect("interior elasticities"),
                );
                next_id += 1;
                live.push(next_id);
                market.submit(MarketEvent::AgentJoined {
                    id: next_id,
                    source,
                });
            }
            1 => {
                if !live.is_empty() {
                    let id = live.remove(pick as usize % live.len());
                    market.submit(MarketEvent::AgentLeft { id });
                }
            }
            _ => market.submit(MarketEvent::EpochTick),
        }
    }
    // Always finish on a tick so the final population gets an allocation.
    market.submit(MarketEvent::EpochTick);

    let reports = market.pump().expect("all submitted events are valid");
    prop_assert!(!reports.is_empty());
    for report in &reports {
        let Some(alloc) = &report.allocation else {
            prop_assert!(report.agents.is_empty());
            continue;
        };
        prop_assert_eq!(alloc.num_agents(), report.agents.len());
        // Total allocated never exceeds capacity.
        for r in 0..capacity.num_resources() {
            let used: f64 = alloc.bundles().iter().map(|b| b.get(r)).sum();
            prop_assert!(
                used <= capacity.get(r) * (1.0 + 1e-9),
                "epoch {}: resource {r} oversubscribed: {used} > {}",
                report.epoch,
                capacity.get(r)
            );
        }
        // Every live agent holds a strictly positive share of everything.
        for (i, bundle) in alloc.bundles().iter().enumerate() {
            for r in 0..bundle.num_resources() {
                prop_assert!(
                    bundle.get(r) > 0.0,
                    "epoch {}: agent {} starved on resource {r}",
                    report.epoch,
                    report.agents[i]
                );
            }
        }
    }
    // The final population matches the locally tracked live set.
    let mut expected = live.clone();
    expected.sort_unstable();
    prop_assert_eq!(market.live_agents(), expected);

    // Ledger conservation: accrual is mean-centered (zero-sum), settlement
    // redistributes departing balances, and clamp residuals are handed back
    // equally, so across any churn the balances sum to ~0 up to floating
    // error (decay only shrinks whatever residue remains).
    let ledger = market.ledger();
    prop_assert_eq!(ledger.len(), market.num_live_agents());
    let epochs = market.metrics().epochs as f64;
    let tolerance = 1e-9 * (1.0 + epochs);
    prop_assert!(
        ledger.total().abs() <= tolerance,
        "ledger drifted: sum {} over {epochs} epochs (tolerance {tolerance})",
        ledger.total()
    );
    // The cap is soft: settlement spikes and clamp-residual redistribution
    // can briefly overshoot it, but never by more than another cap's worth,
    // and the weight tilt clamps independently.
    prop_assert!(ledger.max_abs() <= 2.0 * ref_market::ledger::CREDIT_CAP);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interleavings_never_oversubscribe_or_starve(
        ops in proptest::collection::vec((0u32..3, 0u32..16, 1u32..100), 1..40),
        seed in 0u64..1_000_000,
    ) {
        drive(&ops, &[24.0, 12.0], seed)?;
    }

    #[test]
    fn interleavings_hold_on_asymmetric_capacities(
        ops in proptest::collection::vec((0u32..3, 0u32..16, 1u32..100), 1..25),
        cap0 in 1.0f64..100.0,
        cap1 in 0.5f64..50.0,
    ) {
        drive(&ops, &[cap0, cap1], 11)?;
    }
}

proptest! {
    // The credit mechanism solves a GP per reallocation, so keep the
    // case count modest; conservation and the cap bound are checked by
    // the shared driver either way.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn credit_markets_conserve_the_ledger_across_churn(
        ops in proptest::collection::vec((0u32..3, 0u32..16, 1u32..100), 1..20),
        seed in 0u64..1_000_000,
    ) {
        drive_with(
            &ops,
            &[24.0, 12.0],
            seed,
            MechanismKind::Credit { inner: CreditInner::MaxWelfare },
        )?;
    }
}
