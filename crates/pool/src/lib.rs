//! # ref-pool
//!
//! A dependency-free, std-only work-stealing thread pool for the
//! embarrassingly parallel sweeps in the REF reproduction (profiling
//! grids, per-benchmark fitting, per-agent market refits).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — [`par_map`] returns results placed by index, so
//!    the output is byte-identical to the serial `(0..len).map(f)` run no
//!    matter how work was scheduled or stolen. [`par_map_reduce`] folds
//!    the mapped values in index order for the same reason.
//! 2. **No dependencies** — scoped `std::thread` workers, one
//!    mutex-guarded deque per worker, steal-half-from-the-front when a
//!    worker runs dry. The unit of work (one cycle-level simulation, one
//!    utility fit) is milliseconds, so lock-free deques would buy
//!    nothing.
//! 3. **Panic safety** — a panicking task does not deadlock the pool:
//!    remaining work is drained by the surviving workers, every thread is
//!    joined, and the first panic (lowest worker id) is re-raised on the
//!    caller.
//! 4. **Nesting** — a `par_map` issued from inside a pool task runs
//!    serially on that worker instead of spawning a second tree of
//!    threads, so nested parallelism cannot oversubscribe the host.
//!
//! Thread count resolution: an explicit [`set_threads`] override wins,
//! then the `REF_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! let squares = ref_pool::par_map(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let total = ref_pool::par_map_reduce(100, |i| i as u64, 0u64, |acc, x| acc + x);
//! assert_eq!(total, 4950);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Process-wide thread-count override (0 = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether the current thread is already executing pool work.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the pool width for all subsequent calls that do not pass an
/// explicit thread count (`0` clears the override). Used by the
/// experiment binaries' `--jobs` flag.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The pool width [`par_map`] will use: the [`set_threads`] override if
/// set, else a positive integer `REF_THREADS`, else the host parallelism.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(value) = std::env::var("REF_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// Whether the calling thread is itself a pool worker (nested calls run
/// serially).
pub fn inside_pool() -> bool {
    IN_POOL.with(Cell::get)
}

/// Maps `f` over `0..len` in parallel on [`threads`] workers; results are
/// ordered by index, byte-identical to the serial run.
///
/// # Panics
///
/// Re-raises the first panic from `f` after all workers have drained.
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_threads(len, threads(), f)
}

/// [`par_map`] with an explicit worker count (`<= 1` runs serially).
pub fn par_map_threads<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(len, || None);
    par_for_each_mut_threads(&mut slots, threads, |i, slot| *slot = Some(f(i)));
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is computed exactly once"))
        .collect()
}

/// Maps in parallel, then folds the mapped values **in index order**, so
/// the reduction is deterministic even for non-associative folds
/// (floating-point sums included).
pub fn par_map_reduce<T, A, M, R>(len: usize, map: M, init: A, fold: R) -> A
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    par_map(len, map).into_iter().fold(init, fold)
}

/// Runs `f(i, &mut items[i])` for every index in parallel on [`threads`]
/// workers. Each element is visited exactly once, by exactly one worker.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_for_each_mut_threads(items, threads(), f);
}

/// [`par_for_each_mut`] with an explicit worker count (`<= 1` runs
/// serially).
pub fn par_for_each_mut_threads<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let workers = threads.max(1).min(len);
    if workers <= 1 || inside_pool() {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }

    // One deque per worker, pre-striped with contiguous index blocks.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * len / workers;
            let hi = (w + 1) * len / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let base = SharedMut(items.as_mut_ptr());
    let deques = &deques;
    let f = &f;
    let base = &base;

    let mut panics: Vec<Box<dyn Any + Send>> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|w| s.spawn(move || worker_loop(deques, w, base, f)))
            .collect();
        if let Err(payload) = worker_loop(deques, 0, base, f) {
            panics.push(payload);
        }
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) | Err(payload) => panics.push(payload),
            }
        }
    });
    if let Some(payload) = panics.into_iter().next() {
        resume_unwind(payload);
    }
}

/// Shared base pointer into the item slice. Safety: the deque protocol
/// hands each index to exactly one worker, so the derived `&mut` borrows
/// are disjoint; `T: Send` lets them cross threads.
struct SharedMut<T>(*mut T);

unsafe impl<T: Send> Sync for SharedMut<T> {}

/// Restores the thread's previous in-pool flag even if a task panics.
struct PoolGuard(bool);

impl PoolGuard {
    fn enter() -> PoolGuard {
        PoolGuard(IN_POOL.with(|flag| flag.replace(true)))
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let previous = self.0;
        IN_POOL.with(|flag| flag.set(previous));
    }
}

/// Pops local work from the back, steals from victims' fronts when dry,
/// and applies `f` until no work remains anywhere. The closure's panics
/// are caught and returned so the caller can join every worker first.
fn worker_loop<T, F>(
    deques: &[Mutex<VecDeque<usize>>],
    worker: usize,
    base: &SharedMut<T>,
    f: &F,
) -> Result<(), Box<dyn Any + Send>>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let _guard = PoolGuard::enter();
    catch_unwind(AssertUnwindSafe(|| {
        while let Some(i) = next_index(deques, worker) {
            // SAFETY: `i` was popped from the deques exactly once, so no
            // other worker holds a reference to `items[i]`.
            let item = unsafe { &mut *base.0.add(i) };
            f(i, item);
        }
    }))
}

/// The worker's next index: its own deque's back, else half of the first
/// non-empty victim's front.
fn next_index(deques: &[Mutex<VecDeque<usize>>], worker: usize) -> Option<usize> {
    if let Some(i) = deques[worker]
        .lock()
        .expect("pool deque poisoned")
        .pop_back()
    {
        return Some(i);
    }
    let n = deques.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        let stolen: Vec<usize> = {
            let mut queue = deques[victim].lock().expect("pool deque poisoned");
            let available = queue.len();
            if available == 0 {
                continue;
            }
            queue.drain(..available.div_ceil(2)).collect()
        };
        let mut own = deques[worker].lock().expect("pool deque poisoned");
        own.extend(stolen.iter().skip(1).copied());
        return Some(stolen[0]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn matches_serial_output() {
        for threads in [1, 2, 3, 8] {
            let parallel = par_map_threads(257, threads, |i| i * 31 + 7);
            let serial: Vec<usize> = (0..257).map(|i| i * 31 + 7).collect();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn reduce_folds_in_index_order() {
        let digits = par_map_reduce(5, |i| i as u64, 0u64, |acc, d| acc * 10 + d);
        assert_eq!(digits, 1234, "non-associative fold must stay ordered");
    }

    #[test]
    fn mutates_every_element_once() {
        let mut counts = vec![0u32; 1000];
        par_for_each_mut_threads(&mut counts, 4, |i, c| *c += i as u32 + 1);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(*c, i as u32 + 1);
        }
    }

    #[test]
    fn work_is_actually_distributed() {
        // With more items than threads and a barrier-free counter we can
        // at least confirm every task ran under contention.
        let ran = AtomicU64::new(0);
        let out = par_map_threads(64, 4, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn override_wins_and_clears() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
