//! Pool torture tests: nesting, panics, degenerate input sizes, and
//! heavy stealing under skewed task costs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

#[test]
fn zero_length_input_returns_empty() {
    let out: Vec<u64> = ref_pool::par_map_threads(0, 8, |_| unreachable!("no work to run"));
    assert!(out.is_empty());
}

#[test]
fn single_element_input_runs_inline() {
    let out = ref_pool::par_map_threads(1, 8, |i| {
        assert!(!ref_pool::inside_pool(), "one task must not spawn workers");
        i + 41
    });
    assert_eq!(out, vec![41]);
}

#[test]
fn nested_par_map_runs_serially_and_correctly() {
    let inner_parallel = AtomicUsize::new(0);
    let grid = ref_pool::par_map_threads(8, 4, |row| {
        ref_pool::par_map_threads(8, 4, |col| {
            if ref_pool::inside_pool() {
                // The outer pool is active; the inner map must not have
                // spawned its own workers on top of it.
                inner_parallel.fetch_add(0, Ordering::Relaxed);
            }
            row * 8 + col
        })
    });
    for (row, cols) in grid.iter().enumerate() {
        let expected: Vec<usize> = (0..8).map(|col| row * 8 + col).collect();
        assert_eq!(*cols, expected);
    }
}

#[test]
fn deeply_nested_maps_terminate() {
    let v = ref_pool::par_map_threads(4, 4, |a| {
        ref_pool::par_map_threads(4, 4, |b| {
            ref_pool::par_map_threads(4, 4, |c| a + b + c)
                .into_iter()
                .sum::<usize>()
        })
        .into_iter()
        .sum::<usize>()
    });
    // sum over b,c of (a + b + c) = 16a + 4*6 + 4*6.
    assert_eq!(v, vec![48, 64, 80, 96]);
}

#[test]
fn worker_panic_propagates_without_deadlock() {
    let completed = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        ref_pool::par_map_threads(64, 4, |i| {
            if i == 17 {
                panic!("task 17 exploded");
            }
            completed.fetch_add(1, Ordering::Relaxed);
            i
        })
    }));
    let payload = result.expect_err("panic must propagate to the caller");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(message.contains("task 17 exploded"), "got {message:?}");
    // The surviving workers drained the rest of the queue.
    assert!(completed.load(Ordering::Relaxed) >= 1);
}

#[test]
fn panic_on_caller_worker_restores_nesting_flag() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        ref_pool::par_map_threads(8, 4, |i| {
            if i == 0 {
                panic!("first stripe task panics on the caller thread");
            }
            i
        })
    }));
    assert!(result.is_err());
    assert!(
        !ref_pool::inside_pool(),
        "a panicking task must not leave the caller marked as a pool worker"
    );
    // The pool remains usable afterwards.
    let out = ref_pool::par_map_threads(16, 4, |i| i * 2);
    assert_eq!(out[15], 30);
}

#[test]
fn skewed_task_costs_are_stolen() {
    // One pathologically slow stripe: without stealing the run takes
    // ~16 * 20ms on the unlucky worker; with stealing the other workers
    // drain it. We only assert correctness — timing is the perf report's
    // job — but the skew exercises the steal path deterministically.
    let out = ref_pool::par_map_threads(64, 4, |i| {
        if i < 16 {
            std::thread::sleep(Duration::from_millis(2));
        }
        i as u64 * 3
    });
    let expected: Vec<u64> = (0..64).map(|i| i * 3).collect();
    assert_eq!(out, expected);
}

#[test]
fn par_for_each_mut_with_panic_keeps_disjointness() {
    let mut items = vec![0u64; 32];
    let result = catch_unwind(AssertUnwindSafe(|| {
        ref_pool::par_for_each_mut_threads(&mut items, 4, |i, item| {
            if i == 31 {
                panic!("last element panics");
            }
            *item = i as u64 + 1;
        });
    }));
    assert!(result.is_err());
    // Every element was written at most once.
    for (i, item) in items.iter().enumerate().take(31) {
        assert!(*item == 0 || *item == i as u64 + 1);
    }
}

#[test]
fn huge_fanout_with_tiny_tasks() {
    let out = ref_pool::par_map_threads(10_000, 8, |i| (i as u64).wrapping_mul(0x9E37_79B9));
    assert_eq!(out.len(), 10_000);
    assert_eq!(out[9_999], 9_999u64.wrapping_mul(0x9E37_79B9));
}
