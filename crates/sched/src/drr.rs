//! Deficit round robin: the O(1) member of the fair-queueing family.
//!
//! Where WFQ sorts by virtual finish time, DRR visits clients round-robin
//! and lets each serve requests up to an accumulating byte quantum
//! (deficit) proportional to its weight — constant work per decision, with
//! fairness bounds close to WFQ's for bounded request costs.

use std::collections::VecDeque;

/// A request waiting in a DRR queue.
#[derive(Debug, Clone, PartialEq)]
struct Queued<T> {
    item: T,
    cost: f64,
}

/// A deficit-round-robin scheduler over weighted clients.
///
/// # Examples
///
/// ```
/// use ref_sched::drr::DeficitRoundRobin;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = DeficitRoundRobin::new(vec![3.0, 1.0])?;
/// for i in 0..8u32 {
///     q.enqueue(0, i, 1.0)?;
///     q.enqueue(1, 100 + i, 1.0)?;
/// }
/// for _ in 0..8 {
///     q.dequeue();
/// }
/// let shares = q.service_shares();
/// assert!((shares[0] - 0.75).abs() < 0.13);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeficitRoundRobin<T> {
    weights: Vec<f64>,
    queues: Vec<VecDeque<Queued<T>>>,
    deficits: Vec<f64>,
    /// Quantum granted per round per unit weight.
    quantum: f64,
    cursor: usize,
    service: Vec<f64>,
}

impl<T> DeficitRoundRobin<T> {
    /// Creates a scheduler with one weight per client.
    ///
    /// # Errors
    ///
    /// Returns a message if `weights` is empty or any weight is not
    /// strictly positive and finite.
    pub fn new(weights: Vec<f64>) -> Result<DeficitRoundRobin<T>, String> {
        if weights.is_empty() {
            return Err("need at least one client".to_string());
        }
        if weights.iter().any(|w| !(w.is_finite() && *w > 0.0)) {
            return Err("weights must be finite and positive".to_string());
        }
        let max_w = weights.iter().fold(0.0_f64, |m, w| m.max(*w));
        let n = weights.len();
        Ok(DeficitRoundRobin {
            quantum: 1.0 / max_w,
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            deficits: vec![0.0; n],
            cursor: 0,
            service: vec![0.0; n],
        })
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.weights.len()
    }

    /// Enqueues a request of the given cost for a client.
    ///
    /// # Errors
    ///
    /// Returns a message if the client index is out of range or the cost
    /// is not strictly positive and finite.
    pub fn enqueue(&mut self, client: usize, item: T, cost: f64) -> Result<(), String> {
        if client >= self.weights.len() {
            return Err(format!("client {client} out of range"));
        }
        if !(cost.is_finite() && cost > 0.0) {
            return Err(format!("cost must be positive and finite, got {cost}"));
        }
        self.queues[client].push_back(Queued { item, cost });
        Ok(())
    }

    /// Serves the next request under the deficit discipline, returning
    /// `(client, item)`; `None` when every queue is empty.
    pub fn dequeue(&mut self) -> Option<(usize, T)> {
        if self.queues.iter().all(VecDeque::is_empty) {
            return None;
        }
        let n = self.weights.len();
        loop {
            let c = self.cursor;
            if self.queues[c].is_empty() {
                // Idle clients do not bank deficit (work conservation).
                self.deficits[c] = 0.0;
                self.cursor = (c + 1) % n;
                continue;
            }
            let head_cost = self.queues[c].front().expect("nonempty").cost;
            if self.deficits[c] >= head_cost {
                let q = self.queues[c].pop_front().expect("nonempty");
                self.deficits[c] -= q.cost;
                self.service[c] += q.cost;
                return Some((c, q.item));
            }
            // Grant this round's quantum and move on.
            self.deficits[c] += self.quantum * self.weights[c];
            self.cursor = (c + 1) % n;
        }
    }

    /// Total cost served per client so far.
    pub fn service(&self) -> &[f64] {
        &self.service
    }

    /// Achieved service fractions (zeros before any service).
    pub fn service_shares(&self) -> Vec<f64> {
        let total: f64 = self.service.iter().sum();
        if total == 0.0 {
            vec![0.0; self.service.len()]
        } else {
            self.service.iter().map(|s| s / total).collect()
        }
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether any request is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DeficitRoundRobin::<u32>::new(vec![]).is_err());
        assert!(DeficitRoundRobin::<u32>::new(vec![0.0]).is_err());
        let mut q = DeficitRoundRobin::new(vec![1.0]).unwrap();
        assert!(q.enqueue(1, 0u32, 1.0).is_err());
        assert!(q.enqueue(0, 0u32, -1.0).is_err());
    }

    #[test]
    fn backlogged_shares_match_weights() {
        let weights = vec![0.6, 0.3, 0.1];
        let mut q = DeficitRoundRobin::new(weights.clone()).unwrap();
        for i in 0..20_000u32 {
            for c in 0..3 {
                q.enqueue(c, i, 1.0).unwrap();
            }
            q.dequeue();
        }
        let shares = q.service_shares();
        for (s, w) in shares.iter().zip(&weights) {
            assert!((s - w).abs() < 0.02, "{shares:?}");
        }
    }

    #[test]
    fn work_conserving() {
        let mut q = DeficitRoundRobin::new(vec![0.5, 0.5]).unwrap();
        for i in 0..5u32 {
            q.enqueue(0, i, 1.0).unwrap();
        }
        let mut count = 0;
        while let Some((c, _)) = q.dequeue() {
            assert_eq!(c, 0);
            count += 1;
        }
        assert_eq!(count, 5);
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn variable_costs_respected() {
        // One heavy request costs as much as four light ones; long-run
        // service (in cost units) still follows the weights.
        let mut q = DeficitRoundRobin::new(vec![0.5, 0.5]).unwrap();
        for i in 0..4_000u32 {
            q.enqueue(0, i, 4.0).unwrap();
            for j in 0..4 {
                q.enqueue(1, i * 4 + j, 1.0).unwrap();
            }
            q.dequeue();
            q.dequeue();
        }
        let shares = q.service_shares();
        assert!((shares[0] - 0.5).abs() < 0.05, "{shares:?}");
    }

    #[test]
    fn fifo_within_client() {
        let mut q = DeficitRoundRobin::new(vec![1.0]).unwrap();
        for i in 0..5u32 {
            q.enqueue(0, i, 1.0).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_state() {
        let q = DeficitRoundRobin::<u32>::new(vec![1.0, 2.0]).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.service_shares(), vec![0.0, 0.0]);
        assert_eq!(q.num_clients(), 2);
    }
}
