//! Enforcing a REF allocation with proportional-share schedulers.
//!
//! The proportional-elasticity mechanism outputs continuous resource
//! shares; the paper notes (§4.4) those shares are enforced with known
//! schedulers such as weighted fair queueing or lottery scheduling. This
//! module converts an [`Allocation`] into scheduler weights and verifies
//! achieved service against the target.

use rand::Rng;

use ref_core::resource::{Allocation, Capacity};

use crate::lottery::LotteryScheduler;
use crate::stride::StrideScheduler;
use crate::wfq::WeightedFairQueue;

/// Extracts each agent's share of one resource as scheduler weights.
///
/// # Errors
///
/// Returns a message if `resource` is out of range or any agent's share is
/// zero (schedulers need positive weights).
///
/// # Examples
///
/// ```
/// use ref_core::mechanism::{Mechanism, ProportionalElasticity};
/// use ref_core::resource::Capacity;
/// use ref_core::utility::CobbDouglas;
/// use ref_sched::enforce::weights_for_resource;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let agents = vec![
///     CobbDouglas::new(1.0, vec![0.6, 0.4])?,
///     CobbDouglas::new(1.0, vec![0.2, 0.8])?,
/// ];
/// let capacity = Capacity::new(vec![24.0, 12.0])?;
/// let alloc = ProportionalElasticity.allocate(&agents, &capacity)?;
/// let w = weights_for_resource(&alloc, &capacity, 0)?;
/// assert!((w[0] - 0.75).abs() < 1e-12); // 18 of 24 GB/s
/// # Ok(())
/// # }
/// ```
pub fn weights_for_resource(
    allocation: &Allocation,
    capacity: &Capacity,
    resource: usize,
) -> Result<Vec<f64>, String> {
    if resource >= capacity.num_resources() {
        return Err(format!("resource {resource} out of range"));
    }
    let weights: Vec<f64> = allocation
        .bundles()
        .iter()
        .map(|b| b.get(resource) / capacity.get(resource))
        .collect();
    if weights.iter().any(|w| *w <= 0.0) {
        return Err("every agent needs a positive share to be schedulable".to_string());
    }
    Ok(weights)
}

/// Worst absolute deviation between achieved shares and targets.
fn max_deviation(achieved: &[f64], target: &[f64]) -> f64 {
    achieved
        .iter()
        .zip(target)
        .map(|(a, t)| (a - t).abs())
        .fold(0.0, f64::max)
}

/// Result of driving a scheduler against a target share vector.
#[derive(Debug, Clone, PartialEq)]
pub struct EnforcementOutcome {
    /// Scheduler label.
    pub scheduler: &'static str,
    /// Achieved long-run shares.
    pub achieved: Vec<f64>,
    /// Worst absolute deviation from the target.
    pub max_deviation: f64,
}

/// Drives all four schedulers (WFQ, lottery, stride, DRR) for `quanta`
/// decisions against the target weights and reports the achieved shares.
///
/// The WFQ run keeps every client backlogged (the regime in which its
/// fairness bound applies); lottery uses the caller's RNG; stride is
/// deterministic.
///
/// # Errors
///
/// Propagates scheduler construction errors (e.g. non-positive weights).
pub fn enforcement_comparison<R: Rng>(
    weights: &[f64],
    quanta: u64,
    rng: &mut R,
) -> Result<Vec<EnforcementOutcome>, String> {
    let mut out = Vec::with_capacity(4);

    let mut wfq: WeightedFairQueue<u64> = WeightedFairQueue::new(weights.to_vec())?;
    for q in 0..quanta {
        for c in 0..weights.len() {
            wfq.enqueue(c, q, 1.0)?;
        }
        wfq.dequeue();
    }
    let achieved = wfq.service_shares();
    out.push(EnforcementOutcome {
        scheduler: "weighted-fair-queueing",
        max_deviation: max_deviation(&achieved, weights),
        achieved,
    });

    let mut lottery = LotteryScheduler::new(weights.to_vec())?;
    for _ in 0..quanta {
        lottery.draw(rng);
    }
    let achieved = lottery.service_shares();
    out.push(EnforcementOutcome {
        scheduler: "lottery",
        max_deviation: max_deviation(&achieved, weights),
        achieved,
    });

    let mut stride = StrideScheduler::new(weights.to_vec())?;
    for _ in 0..quanta {
        stride.next_quantum();
    }
    let achieved = stride.service_shares();
    out.push(EnforcementOutcome {
        scheduler: "stride",
        max_deviation: max_deviation(&achieved, weights),
        achieved,
    });

    let mut drr: crate::drr::DeficitRoundRobin<u64> =
        crate::drr::DeficitRoundRobin::new(weights.to_vec())?;
    for q in 0..quanta {
        for c in 0..weights.len() {
            drr.enqueue(c, q, 1.0)?;
        }
        drr.dequeue();
    }
    let achieved = drr.service_shares();
    out.push(EnforcementOutcome {
        scheduler: "deficit-round-robin",
        max_deviation: max_deviation(&achieved, weights),
        achieved,
    });

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use ref_core::mechanism::{Mechanism, ProportionalElasticity};
    use ref_core::utility::CobbDouglas;

    fn ref_weights() -> Vec<f64> {
        let agents = vec![
            CobbDouglas::new(1.0, vec![0.6, 0.4]).unwrap(),
            CobbDouglas::new(1.0, vec![0.2, 0.8]).unwrap(),
        ];
        let c = Capacity::new(vec![24.0, 12.0]).unwrap();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        weights_for_resource(&alloc, &c, 0).unwrap()
    }

    #[test]
    fn weights_match_ref_shares() {
        let w = ref_weights();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weights_validation() {
        let agents = vec![CobbDouglas::new(1.0, vec![0.5, 0.5]).unwrap()];
        let c = Capacity::new(vec![10.0, 10.0]).unwrap();
        let alloc = ProportionalElasticity.allocate(&agents, &c).unwrap();
        assert!(weights_for_resource(&alloc, &c, 2).is_err());
    }

    #[test]
    fn all_schedulers_converge_to_ref_shares() {
        let w = ref_weights();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let outcomes = enforcement_comparison(&w, 40_000, &mut rng).unwrap();
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(
                o.max_deviation < 0.01,
                "{} deviates {}",
                o.scheduler,
                o.max_deviation
            );
        }
    }

    #[test]
    fn stride_is_tightest() {
        let w = ref_weights();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let outcomes = enforcement_comparison(&w, 10_000, &mut rng).unwrap();
        let dev = |name: &str| {
            outcomes
                .iter()
                .find(|o| o.scheduler == name)
                .unwrap()
                .max_deviation
        };
        assert!(dev("stride") <= dev("lottery"));
    }
}
