//! # ref-sched
//!
//! Proportional-share enforcement substrates for the REF (Resource
//! Elasticity Fairness) reproduction. The REF mechanism computes continuous
//! fair shares; the paper (§4.4) notes they are enforced with known
//! schedulers. This crate implements the two it cites plus the classic
//! deterministic variant:
//!
//! - [`wfq`] — weighted fair queueing (Demers, Keshav & Shenker).
//! - [`lottery`] — lottery scheduling (Waldspurger & Weihl).
//! - [`stride`] — stride scheduling, lottery's deterministic counterpart
//!   with bounded allocation error.
//! - [`drr`] — deficit round robin, the O(1) fair-queueing variant.
//! - [`enforce`] — glue that turns a [`ref_core::resource::Allocation`]
//!   into scheduler weights and measures achieved shares.
//!
//! # Examples
//!
//! ```
//! use ref_sched::stride::StrideScheduler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut s = StrideScheduler::new(vec![0.75, 0.25])?;
//! for _ in 0..1000 {
//!     s.next_quantum();
//! }
//! let shares = s.service_shares();
//! assert!((shares[0] - 0.75).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod drr;
pub mod enforce;
pub mod lottery;
pub mod stride;
pub mod wfq;

pub use drr::DeficitRoundRobin;
pub use enforce::{enforcement_comparison, weights_for_resource, EnforcementOutcome};
pub use lottery::LotteryScheduler;
pub use stride::StrideScheduler;
pub use wfq::WeightedFairQueue;
