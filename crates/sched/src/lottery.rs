//! Lottery scheduling (Waldspurger & Weihl), the randomized
//! proportional-share scheduler the paper cites for enforcing shares
//! (§4.4, reference 38).

use rand::Rng;

/// A lottery scheduler over clients holding tickets.
///
/// Each scheduling decision draws a ticket uniformly at random; the holder
/// wins the quantum. Expected service is proportional to ticket counts,
/// with variance shrinking as `1/sqrt(draws)`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use ref_sched::lottery::LotteryScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut s = LotteryScheduler::new(vec![750.0, 250.0])?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// for _ in 0..10_000 {
///     s.draw(&mut rng);
/// }
/// let shares = s.service_shares();
/// assert!((shares[0] - 0.75).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LotteryScheduler {
    tickets: Vec<f64>,
    total: f64,
    wins: Vec<u64>,
}

impl LotteryScheduler {
    /// Creates a scheduler with one ticket count per client.
    ///
    /// # Errors
    ///
    /// Returns a message if `tickets` is empty or any count is not strictly
    /// positive and finite.
    pub fn new(tickets: Vec<f64>) -> Result<LotteryScheduler, String> {
        if tickets.is_empty() {
            return Err("need at least one client".to_string());
        }
        if tickets.iter().any(|t| !(t.is_finite() && *t > 0.0)) {
            return Err("ticket counts must be finite and positive".to_string());
        }
        let total = tickets.iter().sum();
        Ok(LotteryScheduler {
            tickets,
            total,
            wins: vec![0; 0],
        }
        .init_wins())
    }

    fn init_wins(mut self) -> LotteryScheduler {
        self.wins = vec![0; self.tickets.len()];
        self
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.tickets.len()
    }

    /// Draws one quantum, returning the winning client.
    pub fn draw<R: Rng>(&mut self, rng: &mut R) -> usize {
        let ticket = rng.gen_range(0.0..self.total);
        let mut acc = 0.0;
        let mut winner = self.tickets.len() - 1;
        for (i, t) in self.tickets.iter().enumerate() {
            acc += t;
            if ticket < acc {
                winner = i;
                break;
            }
        }
        self.wins[winner] += 1;
        winner
    }

    /// Quanta won per client.
    pub fn wins(&self) -> &[u64] {
        &self.wins
    }

    /// Achieved service fractions (zeros before any draw).
    pub fn service_shares(&self) -> Vec<f64> {
        let total: u64 = self.wins.iter().sum();
        if total == 0 {
            vec![0.0; self.wins.len()]
        } else {
            self.wins.iter().map(|w| *w as f64 / total as f64).collect()
        }
    }

    /// Transfers tickets between clients (ticket transfers are the
    /// original paper's mechanism for avoiding priority inversion).
    ///
    /// # Errors
    ///
    /// Returns a message if indices are out of range, `amount` is not
    /// positive and finite, or the donor would be left without tickets.
    pub fn transfer(&mut self, from: usize, to: usize, amount: f64) -> Result<(), String> {
        if from >= self.tickets.len() || to >= self.tickets.len() {
            return Err("client index out of range".to_string());
        }
        if !(amount.is_finite() && amount > 0.0) {
            return Err(format!("transfer amount must be positive, got {amount}"));
        }
        if self.tickets[from] - amount <= 0.0 {
            return Err("donor must retain a positive ticket balance".to_string());
        }
        self.tickets[from] -= amount;
        self.tickets[to] += amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn validation() {
        assert!(LotteryScheduler::new(vec![]).is_err());
        assert!(LotteryScheduler::new(vec![0.0]).is_err());
        assert!(LotteryScheduler::new(vec![f64::NAN]).is_err());
        assert!(LotteryScheduler::new(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn long_run_shares_match_tickets() {
        let mut s = LotteryScheduler::new(vec![0.6, 0.3, 0.1]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50_000 {
            s.draw(&mut rng);
        }
        let shares = s.service_shares();
        assert!((shares[0] - 0.6).abs() < 0.01, "{shares:?}");
        assert!((shares[1] - 0.3).abs() < 0.01, "{shares:?}");
        assert!((shares[2] - 0.1).abs() < 0.01, "{shares:?}");
    }

    #[test]
    fn deterministic_with_seeded_rng() {
        let run = |seed| {
            let mut s = LotteryScheduler::new(vec![1.0, 2.0]).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..100).map(|_| s.draw(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn transfer_shifts_shares() {
        let mut s = LotteryScheduler::new(vec![500.0, 500.0]).unwrap();
        s.transfer(0, 1, 400.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..20_000 {
            s.draw(&mut rng);
        }
        let shares = s.service_shares();
        assert!((shares[1] - 0.9).abs() < 0.02, "{shares:?}");
    }

    #[test]
    fn transfer_validation() {
        let mut s = LotteryScheduler::new(vec![10.0, 10.0]).unwrap();
        assert!(s.transfer(0, 5, 1.0).is_err());
        assert!(s.transfer(0, 1, 0.0).is_err());
        assert!(s.transfer(0, 1, 10.0).is_err()); // would zero the donor
        assert!(s.transfer(0, 1, 5.0).is_ok());
    }

    #[test]
    fn shares_before_draws_are_zero() {
        let s = LotteryScheduler::new(vec![1.0]).unwrap();
        assert_eq!(s.service_shares(), vec![0.0]);
        assert_eq!(s.wins(), &[0]);
        assert_eq!(s.num_clients(), 1);
    }
}
