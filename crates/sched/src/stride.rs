//! Stride scheduling: the deterministic counterpart of lottery scheduling
//! (Waldspurger & Weihl), with bounded allocation error.

/// A stride scheduler over clients holding tickets.
///
/// Each client has `stride = S / tickets` and a pass value; every quantum
/// goes to the client with the smallest pass, whose pass then advances by
/// its stride. Unlike the lottery, allocation error is bounded by one
/// quantum per client over any interval.
///
/// # Examples
///
/// ```
/// use ref_sched::stride::StrideScheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut s = StrideScheduler::new(vec![3.0, 1.0])?;
/// let winners: Vec<usize> = (0..4).map(|_| s.next_quantum()).collect();
/// assert_eq!(winners.iter().filter(|&&w| w == 0).count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StrideScheduler {
    strides: Vec<f64>,
    passes: Vec<f64>,
    quanta: Vec<u64>,
}

/// The common stride numerator.
const STRIDE_ONE: f64 = (1_u64 << 20) as f64;

impl StrideScheduler {
    /// Creates a scheduler with one ticket count per client.
    ///
    /// # Errors
    ///
    /// Returns a message if `tickets` is empty or any count is not strictly
    /// positive and finite.
    pub fn new(tickets: Vec<f64>) -> Result<StrideScheduler, String> {
        if tickets.is_empty() {
            return Err("need at least one client".to_string());
        }
        if tickets.iter().any(|t| !(t.is_finite() && *t > 0.0)) {
            return Err("ticket counts must be finite and positive".to_string());
        }
        let strides: Vec<f64> = tickets.iter().map(|t| STRIDE_ONE / t).collect();
        let passes = strides.clone();
        let n = tickets.len();
        Ok(StrideScheduler {
            strides,
            passes,
            quanta: vec![0; n],
        })
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.strides.len()
    }

    /// Grants the next quantum to the client with the minimum pass.
    pub fn next_quantum(&mut self) -> usize {
        let winner = self
            .passes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite passes"))
            .expect("at least one client")
            .0;
        self.passes[winner] += self.strides[winner];
        self.quanta[winner] += 1;
        winner
    }

    /// Quanta granted per client.
    pub fn quanta(&self) -> &[u64] {
        &self.quanta
    }

    /// Achieved service fractions (zeros before any quantum).
    pub fn service_shares(&self) -> Vec<f64> {
        let total: u64 = self.quanta.iter().sum();
        if total == 0 {
            vec![0.0; self.quanta.len()]
        } else {
            self.quanta
                .iter()
                .map(|q| *q as f64 / total as f64)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(StrideScheduler::new(vec![]).is_err());
        assert!(StrideScheduler::new(vec![0.0]).is_err());
        assert!(StrideScheduler::new(vec![1.0, -2.0]).is_err());
    }

    #[test]
    fn shares_converge_exactly() {
        let mut s = StrideScheduler::new(vec![0.5, 0.3, 0.2]).unwrap();
        for _ in 0..10_000 {
            s.next_quantum();
        }
        let shares = s.service_shares();
        assert!((shares[0] - 0.5).abs() < 1e-3, "{shares:?}");
        assert!((shares[1] - 0.3).abs() < 1e-3, "{shares:?}");
        assert!((shares[2] - 0.2).abs() < 1e-3, "{shares:?}");
    }

    #[test]
    fn allocation_error_is_bounded() {
        // Over any prefix, |granted_i - expected_i| stays below ~1 quantum
        // per client (the stride-scheduling guarantee).
        let weights = [0.6, 0.25, 0.15];
        let mut s = StrideScheduler::new(weights.to_vec()).unwrap();
        let mut granted = [0_f64; 3];
        for step in 1..=2_000 {
            let w = s.next_quantum();
            granted[w] += 1.0;
            for c in 0..3 {
                let expected = weights[c] * step as f64;
                assert!(
                    (granted[c] - expected).abs() <= 1.5,
                    "step {step} client {c}: {} vs {expected}",
                    granted[c]
                );
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut s = StrideScheduler::new(vec![2.0, 3.0, 5.0]).unwrap();
            (0..50).map(|_| s.next_quantum()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn two_to_one_pattern() {
        let mut s = StrideScheduler::new(vec![2.0, 1.0]).unwrap();
        let seq: Vec<usize> = (0..6).map(|_| s.next_quantum()).collect();
        assert_eq!(seq.iter().filter(|&&w| w == 0).count(), 4);
        assert_eq!(s.quanta(), &[4, 2]);
    }

    #[test]
    fn zero_state_before_running() {
        let s = StrideScheduler::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(s.service_shares(), vec![0.0, 0.0]);
        assert_eq!(s.num_clients(), 2);
    }
}
