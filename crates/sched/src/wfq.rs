//! Weighted fair queueing (Demers, Keshav & Shenker), the scheduler the
//! paper cites for enforcing proportional bandwidth shares (§4.4, ref. 8).

use std::collections::VecDeque;

/// A request waiting for service.
#[derive(Debug, Clone, PartialEq)]
struct Queued<T> {
    item: T,
    cost: f64,
    finish_tag: f64,
}

/// A weighted fair queue over `N` clients.
///
/// Each client has a weight; backlogged clients receive service in
/// proportion to their weights regardless of arrival pattern. The
/// implementation uses virtual finish times: a request of cost `c` from
/// client `i` is stamped `max(V, F_i) + c / w_i`, and the scheduler always
/// serves the smallest stamp. The queue is work-conserving: idle clients'
/// capacity is redistributed.
///
/// # Examples
///
/// ```
/// use ref_sched::wfq::WeightedFairQueue;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = WeightedFairQueue::new(vec![3.0, 1.0])?;
/// for i in 0..8 {
///     q.enqueue(0, i, 1.0)?;
///     q.enqueue(1, 100 + i, 1.0)?;
/// }
/// // Over the first 4 services, the weight-3 client gets ~3 of them.
/// let first: Vec<usize> = (0..4).map(|_| q.dequeue().unwrap().0).collect();
/// assert_eq!(first.iter().filter(|&&c| c == 0).count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WeightedFairQueue<T> {
    weights: Vec<f64>,
    queues: Vec<VecDeque<Queued<T>>>,
    last_finish: Vec<f64>,
    virtual_time: f64,
    service: Vec<f64>,
}

impl<T> WeightedFairQueue<T> {
    /// Creates a queue with one weight per client.
    ///
    /// # Errors
    ///
    /// Returns a message if `weights` is empty or any weight is not
    /// strictly positive and finite.
    pub fn new(weights: Vec<f64>) -> Result<WeightedFairQueue<T>, String> {
        if weights.is_empty() {
            return Err("need at least one client".to_string());
        }
        if weights.iter().any(|w| !(w.is_finite() && *w > 0.0)) {
            return Err("weights must be finite and positive".to_string());
        }
        let n = weights.len();
        Ok(WeightedFairQueue {
            weights,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            last_finish: vec![0.0; n],
            virtual_time: 0.0,
            service: vec![0.0; n],
        })
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.weights.len()
    }

    /// Enqueues a request of the given cost for a client.
    ///
    /// # Errors
    ///
    /// Returns a message if the client index is out of range or the cost is
    /// not strictly positive and finite.
    pub fn enqueue(&mut self, client: usize, item: T, cost: f64) -> Result<(), String> {
        if client >= self.weights.len() {
            return Err(format!("client {client} out of range"));
        }
        if !(cost.is_finite() && cost > 0.0) {
            return Err(format!("cost must be positive and finite, got {cost}"));
        }
        let start = self.virtual_time.max(self.last_finish[client]);
        let finish_tag = start + cost / self.weights[client];
        self.last_finish[client] = finish_tag;
        self.queues[client].push_back(Queued {
            item,
            cost,
            finish_tag,
        });
        Ok(())
    }

    /// Serves the request with the smallest virtual finish time, returning
    /// `(client, item)`; `None` when all queues are empty.
    pub fn dequeue(&mut self) -> Option<(usize, T)> {
        let next = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(c, q)| q.front().map(|h| (c, h.finish_tag)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite finish tags"))?;
        let client = next.0;
        let head = self.queues[client].pop_front().expect("head exists");
        self.virtual_time = self.virtual_time.max(head.finish_tag);
        self.service[client] += head.cost;
        Some((client, head.item))
    }

    /// Total cost served per client so far.
    pub fn service(&self) -> &[f64] {
        &self.service
    }

    /// Achieved service fractions (empty service yields zeros).
    pub fn service_shares(&self) -> Vec<f64> {
        let total: f64 = self.service.iter().sum();
        if total == 0.0 {
            vec![0.0; self.service.len()]
        } else {
            self.service.iter().map(|s| s / total).collect()
        }
    }

    /// Whether any request is pending.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut WeightedFairQueue<u32>) {
        while q.dequeue().is_some() {}
    }

    #[test]
    fn validation() {
        assert!(WeightedFairQueue::<u32>::new(vec![]).is_err());
        assert!(WeightedFairQueue::<u32>::new(vec![0.0]).is_err());
        assert!(WeightedFairQueue::<u32>::new(vec![-1.0]).is_err());
        let mut q = WeightedFairQueue::new(vec![1.0]).unwrap();
        assert!(q.enqueue(5, 0_u32, 1.0).is_err());
        assert!(q.enqueue(0, 0_u32, 0.0).is_err());
    }

    #[test]
    fn backlogged_clients_get_weighted_shares() {
        let mut q = WeightedFairQueue::new(vec![0.7, 0.2, 0.1]).unwrap();
        for i in 0..3000_u32 {
            for c in 0..3 {
                q.enqueue(c, i, 1.0).unwrap();
            }
        }
        drain(&mut q);
        // With finite backlogs every queue eventually drains completely, so
        // check shares at a prefix instead: re-run with interleaved
        // enqueue/dequeue to stay in steady state.
        // Keep every client backlogged: enqueue three per round, serve one.
        let mut q = WeightedFairQueue::new(vec![0.7, 0.2, 0.1]).unwrap();
        for i in 0..10_000_u32 {
            for c in 0..3 {
                q.enqueue(c, i, 1.0).unwrap();
            }
            q.dequeue();
        }
        let shares = q.service_shares();
        assert!((shares[0] - 0.7).abs() < 0.03, "{shares:?}");
        assert!((shares[1] - 0.2).abs() < 0.03, "{shares:?}");
        assert!((shares[2] - 0.1).abs() < 0.03, "{shares:?}");
    }

    #[test]
    fn work_conserving_when_client_idle() {
        let mut q = WeightedFairQueue::new(vec![0.5, 0.5]).unwrap();
        for i in 0..10_u32 {
            q.enqueue(0, i, 1.0).unwrap();
        }
        // Client 1 never enqueues; client 0 gets everything.
        let mut served = 0;
        while let Some((c, _)) = q.dequeue() {
            assert_eq!(c, 0);
            served += 1;
        }
        assert_eq!(served, 10);
    }

    #[test]
    fn fifo_within_a_client() {
        let mut q = WeightedFairQueue::new(vec![1.0]).unwrap();
        for i in 0..5_u32 {
            q.enqueue(0, i, 1.0).unwrap();
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn variable_costs_count_toward_service() {
        let mut q = WeightedFairQueue::new(vec![1.0, 1.0]).unwrap();
        q.enqueue(0, 0_u32, 3.0).unwrap();
        q.enqueue(1, 1_u32, 1.0).unwrap();
        // Equal weights: the cheap request finishes first in virtual time.
        assert_eq!(q.dequeue().unwrap().0, 1);
        assert_eq!(q.dequeue().unwrap().0, 0);
        assert_eq!(q.service(), &[3.0, 1.0]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = WeightedFairQueue::new(vec![1.0]).unwrap();
        assert!(q.is_empty());
        q.enqueue(0, 1_u32, 1.0).unwrap();
        assert_eq!(q.len(), 1);
        q.dequeue();
        assert!(q.is_empty());
        assert!(q.dequeue().is_none());
        assert_eq!(q.service_shares(), vec![1.0]);
    }

    #[test]
    fn empty_service_shares_are_zero() {
        let q = WeightedFairQueue::<u32>::new(vec![1.0, 1.0]).unwrap();
        assert_eq!(q.service_shares(), vec![0.0, 0.0]);
    }
}
