//! Property-based tests for the proportional-share schedulers.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use ref_sched::{LotteryScheduler, StrideScheduler, WeightedFairQueue};

fn weights() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.05..5.0f64, 2..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Stride scheduling achieves the target proportions with bounded
    /// error for arbitrary weights.
    #[test]
    fn stride_converges_for_random_weights(w in weights()) {
        let total: f64 = w.iter().sum();
        let mut s = StrideScheduler::new(w.clone()).unwrap();
        let quanta = 20_000;
        for _ in 0..quanta {
            s.next_quantum();
        }
        for (share, weight) in s.service_shares().iter().zip(&w) {
            prop_assert!((share - weight / total).abs() < 5e-3, "{share} vs {}", weight / total);
        }
    }

    /// Backlogged WFQ achieves the target proportions for arbitrary
    /// weights.
    #[test]
    fn wfq_converges_for_random_weights(w in weights()) {
        let total: f64 = w.iter().sum();
        let mut q: WeightedFairQueue<u32> = WeightedFairQueue::new(w.clone()).unwrap();
        for i in 0..20_000u32 {
            for c in 0..w.len() {
                q.enqueue(c, i, 1.0).unwrap();
            }
            q.dequeue();
        }
        for (share, weight) in q.service_shares().iter().zip(&w) {
            prop_assert!((share - weight / total).abs() < 0.02);
        }
    }

    /// Lottery wins always sum to the number of draws, and empirical
    /// shares approach tickets.
    #[test]
    fn lottery_accounting_and_convergence(w in weights(), seed in 0u64..1_000) {
        let total: f64 = w.iter().sum();
        let mut s = LotteryScheduler::new(w.clone()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let draws = 30_000u64;
        for _ in 0..draws {
            s.draw(&mut rng);
        }
        prop_assert_eq!(s.wins().iter().sum::<u64>(), draws);
        for (share, weight) in s.service_shares().iter().zip(&w) {
            prop_assert!((share - weight / total).abs() < 0.03);
        }
    }

    /// WFQ never serves an empty queue and preserves FIFO per client.
    #[test]
    fn wfq_fifo_within_client(w in weights(), items in 1u32..50) {
        let mut q: WeightedFairQueue<u32> = WeightedFairQueue::new(w.clone()).unwrap();
        for i in 0..items {
            q.enqueue(0, i, 1.0).unwrap();
        }
        let mut last: Option<u32> = None;
        while let Some((c, v)) = q.dequeue() {
            prop_assert_eq!(c, 0);
            if let Some(prev) = last {
                prop_assert!(v > prev);
            }
            last = Some(v);
        }
        prop_assert!(q.is_empty());
    }
}
