//! Closed-loop load generator for ref-serve.
//!
//! Boots an in-process server (or targets `--addr`), drives it at three
//! offered-load levels with `N` closed-loop client threads each, and
//! writes `BENCH_serve.json` with throughput, p50/p99 latency, and the
//! rejection rate per level. With an in-process server it finishes by
//! draining and replaying the journal, proving the run byte-identical to
//! an offline `submit_all` — a corrupted run exits non-zero.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--duration-ms 700] [--out BENCH_serve.json]
//!         [--levels 2,8,32] [--shards N] [--mechanism LABEL]
//! ```
//!
//! `--shards N` boots the in-process server with `N` market shards
//! behind the consistent-hash router; the replay check then proves
//! every shard's journal byte-identical to an offline replay of that
//! shard alone. `--mechanism LABEL` picks the allocation mechanism by
//! its snapshot label (e.g. `credit` for the credit-weighted market).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ref_core::resource::Capacity;
use ref_market::{MarketConfig, MechanismKind};
use ref_serve::{
    CallOpts, Client, ClientError, LatencyHistogram, Quotas, ServeConfig, Server, Value,
};

struct Args {
    addr: Option<String>,
    duration_ms: u64,
    out: String,
    levels: Vec<usize>,
    shards: usize,
    mechanism: Option<MechanismKind>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        duration_ms: 700,
        out: "BENCH_serve.json".to_string(),
        levels: vec![2, 8, 32],
        shards: 1,
        mechanism: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--duration-ms" => {
                args.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("bad --duration-ms: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--mechanism" => {
                let label = value("--mechanism")?;
                args.mechanism = Some(MechanismKind::from_label(&label).ok_or_else(|| {
                    format!(
                        "unknown mechanism {label:?} (try proportional-elasticity, \
                         max-welfare, equal-slowdown, credit)"
                    )
                })?);
            }
            "--levels" => {
                args.levels = value("--levels")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad --levels: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.levels.is_empty() {
        return Err("--levels must name at least one level".to_string());
    }
    Ok(args)
}

fn market(mechanism: Option<MechanismKind>) -> MarketConfig {
    let config = MarketConfig::new(Capacity::new(vec![64.0, 32.0]).expect("static capacity"));
    match mechanism {
        Some(kind) => config.with_mechanism(kind),
        None => config,
    }
}

/// Per-level aggregate counters, shared across client threads.
#[derive(Default)]
struct LevelStats {
    ok: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
}

struct LevelResult {
    clients: usize,
    elapsed: Duration,
    ok: u64,
    rejected: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
    mean_us: f64,
}

impl LevelResult {
    fn to_json(&self) -> Value {
        let total = self.ok + self.rejected;
        let rejection_rate = if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        };
        let throughput = self.ok as f64 / self.elapsed.as_secs_f64();
        Value::obj(vec![
            ("clients", Value::from_u64(self.clients as u64)),
            (
                "duration_ms",
                Value::from_u64(self.elapsed.as_millis() as u64),
            ),
            ("ok", Value::from_u64(self.ok)),
            ("rejected", Value::from_u64(self.rejected)),
            ("errors", Value::from_u64(self.errors)),
            ("rejection_rate", Value::Num(rejection_rate)),
            ("throughput_rps", Value::Num(throughput)),
            ("p50_us", Value::from_u64(self.p50_us)),
            ("p99_us", Value::from_u64(self.p99_us)),
            ("mean_us", Value::Num(self.mean_us)),
        ])
    }
}

/// One closed-loop client: joins its own agent, then hammers a fixed op
/// mix until the deadline. Overload rejections are absorbed by the
/// client's jittered retry loop ([`CallOpts`]) and counted; they are
/// backpressure, not failures. Measured latency is the latency a
/// retrying caller actually experiences — backoff sleeps included.
fn run_client(
    addr: &str,
    worker: usize,
    level: usize,
    deadline: Instant,
    stats: &LevelStats,
    latency: &LatencyHistogram,
) {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let agent = (level * 1000 + worker + 1) as u64;
    // Join outside the measured loop; a duplicate rejoin after a prior
    // level is impossible because ids are level-scoped.
    if client.join_external(agent).is_err() {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let observe = Value::obj(vec![
        ("op", Value::str("observe")),
        ("agent", Value::from_u64(agent)),
        ("allocation", Value::num_array(&[1.5, 0.75])),
        ("performance", Value::Num(1.0 + worker as f64 * 0.01)),
    ]);
    let query = Value::obj(vec![
        ("op", Value::str("query")),
        ("agent", Value::from_u64(agent)),
    ]);
    // Per-client jitter seed so retry schedules desynchronize instead of
    // stampeding the server in lockstep.
    let opts = CallOpts::default().with_seed(agent);
    let mut i = 0u64;
    while Instant::now() < deadline {
        let request = if i % 3 == 2 { &query } else { &observe };
        let started = Instant::now();
        match client.call_with(request, &opts) {
            Ok((_, retries)) => {
                let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                latency.record_us(us);
                stats.ok.fetch_add(1, Ordering::Relaxed);
                // Each absorbed retry was one overload rejection.
                stats.rejected.fetch_add(retries, Ordering::Relaxed);
            }
            Err(e @ ClientError::Server { .. }) if e.code() == Some("overloaded") => {
                // Retries exhausted: the first attempt and every retry
                // were rejected.
                stats
                    .rejected
                    .fetch_add(u64::from(opts.retries) + 1, Ordering::Relaxed);
            }
            Err(ClientError::Server { .. }) => {
                // Market-level rejections (e.g. racing a shutdown) count
                // as errors: the op mix should never produce them.
                stats.errors.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        i += 1;
    }
    let _ = client.leave(agent);
}

fn run_level(addr: &str, clients: usize, level: usize, duration: Duration) -> LevelResult {
    let stats = LevelStats::default();
    let latency = LatencyHistogram::new();
    let started = Instant::now();
    let deadline = started + duration;
    // One OS thread per closed-loop client: the default pool width would
    // serialize clients, turning offered load into a fiction.
    ref_pool::par_map_threads(clients, clients, |worker| {
        run_client(addr, worker, level, deadline, &stats, &latency);
    });
    let elapsed = started.elapsed();
    let snap = latency.snapshot();
    LevelResult {
        clients,
        elapsed,
        ok: stats.ok.load(Ordering::Relaxed),
        rejected: stats.rejected.load(Ordering::Relaxed),
        errors: stats.errors.load(Ordering::Relaxed),
        p50_us: snap.quantile_us(0.50),
        p99_us: snap.quantile_us(0.99),
        mean_us: snap.mean_us(),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    // Self-booted servers get deliberately tight observe/query quotas so
    // the top load level genuinely over-offers and exercises rejection.
    let local = if args.addr.is_none() {
        let config = ServeConfig::new(market(args.mechanism))
            .with_epoch_interval(Some(Duration::from_millis(2)))
            .with_shards(args.shards)
            .with_quotas(Quotas {
                control: 256,
                observe: 8,
                query: 8,
            })
            .with_max_connections(1024);
        match Server::start("127.0.0.1:0", config) {
            Ok(server) => Some(server),
            Err(e) => {
                eprintln!("loadgen: failed to boot server: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let addr = match (&args.addr, &local) {
        (Some(addr), _) => addr.clone(),
        (None, Some(server)) => server.addr().to_string(),
        (None, None) => unreachable!(),
    };

    let duration = Duration::from_millis(args.duration_ms);
    let mut results = Vec::new();
    for (level, &clients) in args.levels.iter().enumerate() {
        eprintln!("loadgen: level {level}: {clients} closed-loop clients for {duration:?}");
        let result = run_level(&addr, clients, level, duration);
        eprintln!(
            "loadgen:   ok={} rejected={} errors={} p50={}us p99={}us",
            result.ok, result.rejected, result.errors, result.p50_us, result.p99_us
        );
        results.push(result);
    }

    let client_errors: u64 = results.iter().map(|r| r.errors).sum();

    // Drain the local server and prove the run replayable bit-for-bit.
    let mut replay_identical = Value::Null;
    let mut protocol_errors = Value::Null;
    if let Some(server) = local {
        let report = server.shutdown();
        protocol_errors = Value::from_u64(report.metrics.protocol_errors);
        let identical = if args.shards > 1 {
            // Sharded: every shard's journal must replay to that
            // shard's snapshot against its starting (equal-split)
            // config; coordinator reallotments are journaled events.
            report.shards.iter().all(|shard| {
                if shard.journal_overflowed {
                    eprintln!("loadgen: shard {} journal overflowed", shard.shard);
                    return false;
                }
                let shard_config =
                    ref_serve::shard_market_config(&market(args.mechanism), args.shards);
                match ref_serve::replay(shard_config, &shard.journal) {
                    Ok(engine) => engine.snapshot().encode() == shard.snapshot,
                    Err(_) => false,
                }
            })
        } else if report.journal_overflowed {
            eprintln!("loadgen: journal overflowed; raise the limit for replay checks");
            false
        } else {
            match ref_serve::replay(market(args.mechanism), &report.journal) {
                Ok(engine) => engine.snapshot().encode() == report.snapshot,
                Err(_) => false,
            }
        };
        replay_identical = Value::Bool(identical);
        if !identical {
            eprintln!("loadgen: FATAL: journal replay does not match the live snapshot");
        }
        if report.metrics.protocol_errors > 0 {
            eprintln!(
                "loadgen: FATAL: {} protocol errors",
                report.metrics.protocol_errors
            );
        }
        if !identical || report.metrics.protocol_errors > 0 {
            std::process::exit(1);
        }
    }

    let doc = Value::obj(vec![
        ("bench", Value::str("serve")),
        ("duration_ms", Value::from_u64(args.duration_ms)),
        ("shards", Value::from_u64(args.shards as u64)),
        (
            "levels",
            Value::Arr(results.iter().map(LevelResult::to_json).collect()),
        ),
        ("replay_identical", replay_identical),
        ("protocol_errors", protocol_errors),
    ]);
    if let Err(e) = std::fs::write(&args.out, format!("{}\n", doc.encode())) {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    eprintln!("loadgen: wrote {}", args.out);
    if client_errors > 0 {
        eprintln!("loadgen: FATAL: {client_errors} client-side errors");
        std::process::exit(1);
    }
}
