//! The bounded MPSC event bus between connection readers and the ticker.
//!
//! A single global FIFO preserves cross-client arrival order (the engine's
//! determinism contract needs one total order), while **per-class quotas**
//! bound each admission class independently: a flood of `query`s can fill
//! the query quota and start bouncing, but `observe` and control traffic
//! keep flowing until their own quotas fill. Rejection is immediate and
//! explicit — `try_send` never blocks — so backpressure surfaces to the
//! client as an `overloaded` response with a `retry_after_ms` hint rather
//! than as unbounded queueing or silent drops.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::protocol::{Class, NUM_CLASSES};

/// Why an item was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The item's class quota is exhausted; retry after the hint.
    Full(Class),
    /// The bus is closed (server shutting down).
    Closed,
}

/// Per-class queue quotas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quotas {
    /// Maximum queued `Control` items.
    pub control: usize,
    /// Maximum queued `Observe` items.
    pub observe: usize,
    /// Maximum queued `Query` items.
    pub query: usize,
}

impl Quotas {
    fn limit(&self, class: Class) -> usize {
        match class {
            Class::Control => self.control,
            Class::Observe => self.observe,
            Class::Query => self.query,
        }
    }
}

impl Default for Quotas {
    fn default() -> Quotas {
        Quotas {
            control: 256,
            observe: 1024,
            query: 256,
        }
    }
}

struct BusState<T> {
    queue: VecDeque<(Class, T)>,
    counts: [usize; NUM_CLASSES],
    closed: bool,
    depth_max: usize,
}

/// A bounded multi-producer single-consumer queue with class quotas.
pub struct Bus<T> {
    state: Mutex<BusState<T>>,
    available: Condvar,
    quotas: Quotas,
}

impl<T> std::fmt::Debug for Bus<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus").field("quotas", &self.quotas).finish()
    }
}

impl<T> Bus<T> {
    /// Creates an open bus with the given quotas.
    pub fn new(quotas: Quotas) -> Bus<T> {
        Bus {
            state: Mutex::new(BusState {
                queue: VecDeque::new(),
                counts: [0; NUM_CLASSES],
                closed: false,
                depth_max: 0,
            }),
            available: Condvar::new(),
            quotas,
        }
    }

    /// The configured quotas.
    pub fn quotas(&self) -> Quotas {
        self.quotas
    }

    /// Admits one item, or rejects immediately.
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] when the item's class quota is exhausted,
    /// [`SendError::Closed`] once [`Bus::close`] has been called.
    pub fn try_send(&self, class: Class, item: T) -> Result<(), SendError> {
        let mut state = self.state.lock().expect("bus lock poisoned");
        if state.closed {
            return Err(SendError::Closed);
        }
        if state.counts[class as usize] >= self.quotas.limit(class) {
            return Err(SendError::Full(class));
        }
        state.counts[class as usize] += 1;
        state.queue.push_back((class, item));
        state.depth_max = state.depth_max.max(state.queue.len());
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Admits one item *bypassing its class quota* (still refused once
    /// the bus is closed). Reserved for internal producers with their
    /// own flow control — the replication puller is paced by TCP and by
    /// the primary, so bouncing its records with `overloaded` would turn
    /// backpressure into replica divergence. External client traffic
    /// must keep using [`Bus::try_send`].
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] once [`Bus::close`] has been called.
    pub fn push(&self, class: Class, item: T) -> Result<(), SendError> {
        let mut state = self.state.lock().expect("bus lock poisoned");
        if state.closed {
            return Err(SendError::Closed);
        }
        state.counts[class as usize] += 1;
        state.queue.push_back((class, item));
        state.depth_max = state.depth_max.max(state.queue.len());
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Removes and returns every queued item in arrival order.
    pub fn drain(&self) -> Vec<(Class, T)> {
        let mut state = self.state.lock().expect("bus lock poisoned");
        state.counts = [0; NUM_CLASSES];
        state.queue.drain(..).collect()
    }

    /// Blocks until the bus is non-empty, closed, or `timeout` elapses.
    /// Returns `true` when items are (probably) available.
    pub fn wait(&self, timeout: Duration) -> bool {
        let state = self.state.lock().expect("bus lock poisoned");
        if !state.queue.is_empty() || state.closed {
            return !state.queue.is_empty();
        }
        let (state, _) = self
            .available
            .wait_timeout(state, timeout)
            .expect("bus lock poisoned");
        !state.queue.is_empty()
    }

    /// Closes the bus: subsequent `try_send`s fail with
    /// [`SendError::Closed`]; already-queued items remain drainable.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("bus lock poisoned");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Whether the bus is closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("bus lock poisoned").closed
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("bus lock poisoned").queue.len()
    }

    /// High-water mark of the queue depth since creation.
    pub fn depth_max(&self) -> usize {
        self.state.lock().expect("bus lock poisoned").depth_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn preserves_global_fifo_order_across_classes() {
        let bus: Bus<u32> = Bus::new(Quotas::default());
        bus.try_send(Class::Query, 1).unwrap();
        bus.try_send(Class::Control, 2).unwrap();
        bus.try_send(Class::Observe, 3).unwrap();
        let drained: Vec<u32> = bus.drain().into_iter().map(|(_, x)| x).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(bus.depth(), 0);
        assert_eq!(bus.depth_max(), 3);
    }

    #[test]
    fn full_class_rejects_without_blocking_other_classes() {
        let bus: Bus<u32> = Bus::new(Quotas {
            control: 2,
            observe: 1,
            query: 1,
        });
        bus.try_send(Class::Query, 0).unwrap();
        // The query quota is exhausted; queries bounce with the class.
        assert_eq!(
            bus.try_send(Class::Query, 1),
            Err(SendError::Full(Class::Query))
        );
        // Other classes are unaffected by the full query quota.
        bus.try_send(Class::Observe, 2).unwrap();
        bus.try_send(Class::Control, 3).unwrap();
        bus.try_send(Class::Control, 4).unwrap();
        assert_eq!(
            bus.try_send(Class::Control, 5),
            Err(SendError::Full(Class::Control))
        );
        // Draining resets every quota.
        assert_eq!(bus.drain().len(), 4);
        bus.try_send(Class::Query, 6).unwrap();
    }

    #[test]
    fn push_bypasses_quota_but_not_closure() {
        let bus: Bus<u32> = Bus::new(Quotas {
            control: 1,
            observe: 1,
            query: 1,
        });
        bus.try_send(Class::Control, 1).unwrap();
        assert_eq!(
            bus.try_send(Class::Control, 2),
            Err(SendError::Full(Class::Control))
        );
        bus.push(Class::Control, 3).unwrap();
        assert_eq!(bus.drain().len(), 2);
        bus.close();
        assert_eq!(bus.push(Class::Control, 4), Err(SendError::Closed));
    }

    #[test]
    fn close_rejects_new_items_but_keeps_queued_ones() {
        let bus: Bus<u32> = Bus::new(Quotas::default());
        bus.try_send(Class::Control, 1).unwrap();
        bus.close();
        assert_eq!(bus.try_send(Class::Control, 2), Err(SendError::Closed));
        assert!(bus.is_closed());
        assert_eq!(bus.drain().len(), 1);
    }

    #[test]
    fn wait_wakes_on_send_and_expires_on_timeout() {
        let bus: Arc<Bus<u32>> = Arc::new(Bus::new(Quotas::default()));
        assert!(!bus.wait(Duration::from_millis(10)));
        let sender = Arc::clone(&bus);
        let handle = std::thread::spawn(move || {
            sender.try_send(Class::Observe, 7).unwrap();
        });
        assert!(bus.wait(Duration::from_secs(5)));
        handle.join().unwrap();
        assert_eq!(bus.drain().len(), 1);
    }

    #[test]
    fn concurrent_producers_respect_the_quota_exactly() {
        let bus: Arc<Bus<usize>> = Arc::new(Bus::new(Quotas {
            control: 256,
            observe: 50,
            query: 256,
        }));
        let mut handles = Vec::new();
        for t in 0..8 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0;
                for i in 0..100 {
                    if bus.try_send(Class::Observe, t * 100 + i).is_ok() {
                        admitted += 1;
                    }
                }
                admitted
            }));
        }
        let admitted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(admitted, 50, "quota must bound admissions exactly");
        assert_eq!(bus.drain().len(), 50);
    }
}
