//! A blocking, line-oriented ref-serve client.
//!
//! One connection carries one outstanding request at a time (the protocol
//! is a closed loop), so the client is a thin synchronous wrapper: encode
//! a line, write it, read one line back. [`Client::call_with`] adds the
//! polite reaction to backpressure — seeded, jittered exponential backoff
//! floored at the server's `retry_after_ms` hint, under a total-deadline
//! budget — and [`Client::call_retrying`] is its minimal older sibling.
//!
//! [`Client::call_with`] also rides out *node* failure, not just
//! overload: on a broken connection it re-dials (its own address, or a
//! [`Client::connect_seeds`] seed list), and on a `not_primary` redirect
//! or a `fenced`/`shutting_down` rejection it walks the seeds — guided
//! by the reply's `leader` hint and each node's `ping` role — until it
//! finds the primary. Re-sending over a new connection is at-least-once
//! delivery: a mutation whose reply was lost in the failure may be
//! applied twice, which the market tolerates (duplicate joins are
//! rejected, duplicate observations only add weight).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::Value;

/// Retry policy for [`Client::call_with`].
///
/// Backoff for attempt *n* is `min(max_delay, base_delay << n)`, scaled
/// by a deterministic jitter in `[0.5, 1.0]` drawn from `seed` (so two
/// clients given different seeds desynchronize instead of stampeding),
/// and floored at the server's `retry_after_ms` hint when one is
/// attached to the rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOpts {
    /// Maximum retries after the first attempt (0 = call once).
    pub retries: u32,
    /// Total budget across all attempts and sleeps; `None` is unbounded.
    /// When the budget would be exceeded by the next backoff sleep, the
    /// call gives up with the last server error instead of oversleeping.
    pub deadline: Option<Duration>,
    /// Cap on *cumulative backoff sleep* across the whole call; `None`
    /// is unbounded. Unlike `deadline` (wall clock, including the time
    /// the calls themselves take), this bounds only the sleeping — so a
    /// server whose `retry_after_ms` hint is enormous cannot stretch a
    /// "polite" retry loop far past what the caller budgeted: each sleep
    /// is clamped to the remaining budget, and once it is spent the call
    /// returns the last rejection instead of sleeping again.
    pub retry_budget: Option<Duration>,
    /// First backoff step.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed; vary per client for desynchronized retries.
    pub seed: u64,
}

impl Default for CallOpts {
    fn default() -> CallOpts {
        CallOpts {
            retries: 8,
            deadline: None,
            retry_budget: None,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            seed: 0x005e_ed0f_ca11,
        }
    }
}

impl CallOpts {
    /// Sets the retry count.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> CallOpts {
        self.retries = retries;
        self
    }

    /// Sets the total-deadline budget.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> CallOpts {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the cumulative backoff-sleep budget.
    #[must_use]
    pub fn with_retry_budget(mut self, budget: Duration) -> CallOpts {
        self.retry_budget = Some(budget);
        self
    }

    /// Sets the jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> CallOpts {
        self.seed = seed;
        self
    }

    /// The backoff before retry `attempt` (0-based), already jittered;
    /// `hint_ms` is the server's `retry_after_ms` floor. Pure, so tests
    /// can pin the schedule.
    pub fn backoff(&self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let base = self.base_delay.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)) as f64;
        let capped = exp.min(self.max_delay.as_millis() as f64);
        // splitmix64: cheap, seedable, good enough for jitter.
        let mut x = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = capped * (0.5 + 0.5 * unit);
        Duration::from_millis((jittered as u64).max(hint_ms.unwrap_or(0)))
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or closed mid-call.
    Io(std::io::Error),
    /// The server's reply was not valid protocol JSON.
    Protocol(String),
    /// The server replied `{"ok":false,...}`.
    Server {
        /// The protocol error code (`overloaded`, `market`, ...).
        code: String,
        /// Optional human-readable detail.
        detail: Option<String>,
        /// Backoff hint attached to `overloaded` rejections.
        retry_after_ms: Option<u64>,
        /// Leader address attached to `not_primary` redirects.
        leader: Option<String>,
        /// Shard index attached to redirects from an externally sharded
        /// deployment (each shard is its own replicated pair; the hint
        /// scopes the leader to that shard's routing slot).
        shard: Option<u64>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, detail, .. } => match detail {
                Some(d) => write!(f, "server error {code}: {d}"),
                None => write!(f, "server error {code}"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The error code when the server rejected the request, if any.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A blocking connection to a ref-serve instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// The address of the current connection.
    current: String,
    /// Alternative node addresses for failover (may be empty).
    seeds: Vec<String>,
    /// Where the cluster last said each shard's primary lives, keyed by
    /// the redirect's `shard` tag (an untagged deployment uses slot 0).
    /// Keeping the hints per shard means a redirect from one shard's
    /// standby never discards what we know about the others.
    leader_hints: HashMap<u64, String>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs + ToString) -> std::io::Result<Client> {
        let current = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            current,
            seeds: Vec::new(),
            leader_hints: HashMap::new(),
        })
    }

    /// Connects to the first reachable node of a replicated deployment
    /// and remembers the whole list: [`Client::call_with`] fails over
    /// across it when the current node dies or stops being the primary.
    ///
    /// # Errors
    ///
    /// The last connection error if no seed is reachable.
    pub fn connect_seeds(seeds: &[String]) -> std::io::Result<Client> {
        let mut last = None;
        for addr in seeds {
            match Client::connect(addr.as_str()) {
                Ok(mut client) => {
                    client.seeds = seeds.to_vec();
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "empty seed list")
        }))
    }

    /// The address of the node this client is currently connected to.
    pub fn current_addr(&self) -> &str {
        &self.current
    }

    /// Drops the current connection and dials the best node it can
    /// find: the last `leader` hint first, then the current address,
    /// then every seed. A node whose `ping` reports `role:"primary"` is
    /// adopted immediately (one level of `leader` redirect is followed);
    /// otherwise the first reachable node is kept, so reads still work
    /// during an election.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when no candidate is reachable.
    pub fn redial(&mut self) -> Result<(), ClientError> {
        self.redial_for(None)
    }

    /// [`Client::redial`] scoped to one shard's routing slot: only that
    /// shard's leader hint is consumed, so a `not_primary` redirect
    /// bouncing between one shard's pair leaves the hints (and thereby
    /// the seeds) serving other shards untouched.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when no candidate is reachable.
    pub fn redial_for(&mut self, shard: Option<u64>) -> Result<(), ClientError> {
        let mut worklist: Vec<String> = Vec::new();
        let push = |list: &mut Vec<String>, addr: String| {
            if !addr.is_empty() && !list.contains(&addr) {
                list.push(addr);
            }
        };
        if let Some(hint) = self.leader_hints.remove(&shard.unwrap_or(0)) {
            push(&mut worklist, hint);
        }
        push(&mut worklist, self.current.clone());
        for seed in self.seeds.clone() {
            push(&mut worklist, seed);
        }
        let mut fallback: Option<(Client, String)> = None;
        let mut i = 0;
        while i < worklist.len() {
            let addr = worklist[i].clone();
            i += 1;
            let Ok(mut probe) = Client::connect(addr.as_str()) else {
                continue;
            };
            let Ok(reply) = probe.ping() else {
                continue;
            };
            let role = reply.get("role").and_then(Value::as_str).unwrap_or("");
            if role == "primary" {
                self.adopt(probe, addr);
                return Ok(());
            }
            if let Some(leader) = reply.get("leader").and_then(Value::as_str) {
                push(&mut worklist, leader.to_string());
            }
            if fallback.is_none() {
                fallback = Some((probe, addr));
            }
        }
        if let Some((probe, addr)) = fallback {
            self.adopt(probe, addr);
            return Ok(());
        }
        Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "no reachable server among the seeds",
        )))
    }

    fn adopt(&mut self, probe: Client, addr: String) {
        self.reader = probe.reader;
        self.writer = probe.writer;
        self.current = addr;
    }

    /// Sends one raw protocol line and returns the raw reply value,
    /// whether or not it is `ok`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connection failure, [`ClientError::Protocol`]
    /// if the reply line is not valid JSON.
    pub fn call_line(&mut self, line: &str) -> Result<Value, ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Value::parse(reply.trim_end()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request value and returns the reply, turning
    /// `{"ok":false}` replies into [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn call(&mut self, request: &Value) -> Result<Value, ClientError> {
        let reply = self.call_line(&request.encode())?;
        match reply.get("ok") {
            Some(&Value::Bool(true)) => Ok(reply),
            Some(&Value::Bool(false)) => Err(ClientError::Server {
                code: reply
                    .get("error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                detail: reply
                    .get("detail")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                retry_after_ms: reply.get("retry_after_ms").and_then(Value::as_u64),
                leader: reply
                    .get("leader")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                shard: reply.get("shard").and_then(Value::as_u64),
            }),
            _ => Err(ClientError::Protocol(format!(
                "reply missing \"ok\" field: {reply}"
            ))),
        }
    }

    /// Like [`Client::call`], but sleeps out `overloaded` rejections
    /// (using the server's `retry_after_ms` hint) up to `max_attempts`
    /// times. Returns the number of retries alongside the reply.
    ///
    /// # Errors
    ///
    /// The final error once attempts are exhausted, or any non-overload
    /// error immediately.
    pub fn call_retrying(
        &mut self,
        request: &Value,
        max_attempts: usize,
    ) -> Result<(Value, u64), ClientError> {
        let mut retries = 0;
        loop {
            match self.call(request) {
                Ok(reply) => return Ok((reply, retries)),
                Err(e @ ClientError::Server { .. }) if e.code() == Some("overloaded") => {
                    if retries as usize + 1 >= max_attempts {
                        return Err(e);
                    }
                    let backoff = match &e {
                        ClientError::Server { retry_after_ms, .. } => {
                            retry_after_ms.unwrap_or(1).max(1)
                        }
                        _ => 1,
                    };
                    std::thread::sleep(Duration::from_millis(backoff));
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Like [`Client::call`], but rides out `overloaded` and
    /// `shard_unavailable` rejections with the [`CallOpts`] backoff
    /// policy — seeded jittered exponential delays floored at the
    /// server's `retry_after_ms` hint, all under an optional
    /// total-deadline budget — *and* fails over: a broken
    /// connection, a `not_primary` redirect, or a `fenced` /
    /// `shutting_down` rejection triggers a [`Client::redial`] (guided
    /// by the reply's `leader` hint and the seed list) before the retry.
    /// Returns the number of retries taken alongside the reply.
    ///
    /// Re-sending after a connection loss is at-least-once delivery:
    /// the lost call may have been applied before its reply vanished.
    ///
    /// # Errors
    ///
    /// The last retryable error once retries or the deadline budget are
    /// exhausted; any other error immediately.
    pub fn call_with(
        &mut self,
        request: &Value,
        opts: &CallOpts,
    ) -> Result<(Value, u64), ClientError> {
        let started = Instant::now();
        let mut attempt: u32 = 0;
        let mut slept = Duration::ZERO;
        loop {
            let error = match self.call(request) {
                Ok(reply) => return Ok((reply, u64::from(attempt))),
                Err(e) => e,
            };
            let failover = match &error {
                // The node died mid-call: re-dial before retrying.
                ClientError::Io(_) => true,
                // The node is alive but will never take this request:
                // find the primary instead of hammering it.
                ClientError::Server { code, .. } => {
                    matches!(code.as_str(), "not_primary" | "fenced" | "shutting_down")
                }
                ClientError::Protocol(_) => return Err(error),
            };
            // `shard_unavailable` is backpressure with a different
            // cause: the owning shard is down and the router is telling
            // us when its supervisor may have it back. Back off on the
            // same connection — redialing cannot move an agent off its
            // shard.
            let overloaded = matches!(error.code(), Some("overloaded" | "shard_unavailable"));
            if !failover && !overloaded {
                return Err(error);
            }
            if attempt >= opts.retries {
                return Err(error);
            }
            let (hint, shard) = match &error {
                ClientError::Server {
                    retry_after_ms,
                    leader,
                    shard,
                    ..
                } => {
                    if let Some(leader) = leader {
                        self.leader_hints.insert(shard.unwrap_or(0), leader.clone());
                    }
                    (*retry_after_ms, *shard)
                }
                _ => (None, None),
            };
            let mut backoff = opts.backoff(attempt, hint);
            if let Some(budget) = opts.retry_budget {
                // The cumulative-sleep budget beats any server hint: a
                // huge `retry_after_ms` is clamped to what remains, and
                // a spent budget ends the loop with the last rejection.
                let remaining = budget.saturating_sub(slept);
                if remaining.is_zero() {
                    return Err(error);
                }
                backoff = backoff.min(remaining);
            }
            if let Some(deadline) = opts.deadline {
                // Give up rather than oversleep the budget.
                if started.elapsed() + backoff > deadline {
                    return Err(error);
                }
            }
            std::thread::sleep(backoff);
            slept += backoff;
            if failover {
                // Best-effort: when every candidate is down, keep the
                // old (broken) connection and let the next attempt's
                // error burn a retry rather than erroring out here —
                // the cluster may still be mid-election.
                let _ = self.redial_for(shard);
            }
            attempt += 1;
        }
    }

    /// Liveness / role probe: answered on the server's reader thread
    /// even when the request bus is saturated. The reply carries `role`,
    /// `term`, `epoch`, `wal_seq`, `uptime_ms`, and (on a replica that
    /// knows one) the `leader` address.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::str("ping"))]))
    }

    /// Asks a standby to promote itself to primary (fails on a fenced
    /// node; idempotent on a primary).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn promote(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::str("promote"))]))
    }

    /// Joins agent `agent` with a hidden Cobb-Douglas ground truth.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn join_truth(
        &mut self,
        agent: u64,
        scale: f64,
        elasticities: &[f64],
    ) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::str("join")),
            ("agent", Value::from_u64(agent)),
            (
                "source",
                Value::obj(vec![
                    ("kind", Value::str("truth")),
                    ("scale", Value::Num(scale)),
                    ("elasticities", Value::num_array(elasticities)),
                ]),
            ),
        ]))
    }

    /// Joins agent `agent` with externally-reported observations.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn join_external(&mut self, agent: u64) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::str("join")),
            ("agent", Value::from_u64(agent)),
            ("source", Value::obj(vec![("kind", Value::str("external"))])),
        ]))
    }

    /// Removes agent `agent` from the market.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn leave(&mut self, agent: u64) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::str("leave")),
            ("agent", Value::from_u64(agent)),
        ]))
    }

    /// Resets agent `agent`'s estimator, optionally with a new truth.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn demand(
        &mut self,
        agent: u64,
        truth: Option<(f64, &[f64])>,
    ) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::str("demand")),
            ("agent", Value::from_u64(agent)),
            (
                "truth",
                truth.map_or(Value::Null, |(scale, e)| {
                    Value::obj(vec![
                        ("scale", Value::Num(scale)),
                        ("elasticities", Value::num_array(e)),
                    ])
                }),
            ),
        ]))
    }

    /// Reports an external `(allocation, performance)` measurement.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn observe(
        &mut self,
        agent: u64,
        allocation: &[f64],
        performance: f64,
    ) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::str("observe")),
            ("agent", Value::from_u64(agent)),
            ("allocation", Value::num_array(allocation)),
            ("performance", Value::Num(performance)),
        ]))
    }

    /// Runs one epoch now.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn tick(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::str("tick"))]))
    }

    /// Market-wide state: epoch, live agents, last epoch report.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn query(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::str("query"))]))
    }

    /// One agent's state: elasticities, observation counts, bundle.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn query_agent(&mut self, agent: u64) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::str("query")),
            ("agent", Value::from_u64(agent)),
        ]))
    }

    /// The full market snapshot in its text wire format.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn snapshot(&mut self) -> Result<String, ClientError> {
        let reply = self.call(&Value::obj(vec![("op", Value::str("snapshot"))]))?;
        reply
            .get("snapshot")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("snapshot reply missing text".to_string()))
    }

    /// Market and server metrics as JSON sections.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::str("metrics"))]))
    }

    /// Market and server metrics as scrapeable text.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let reply = self.call(&Value::obj(vec![
            ("op", Value::str("metrics")),
            ("format", Value::str("text")),
        ]))?;
        reply
            .get("text")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics reply missing text".to_string()))
    }

    /// The accepted-event journal.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; `journal_overflow` if the server dropped it.
    pub fn journal(&mut self) -> Result<Vec<Value>, ClientError> {
        let reply = self.call(&Value::obj(vec![("op", Value::str("journal"))]))?;
        reply
            .get("events")
            .and_then(Value::as_array)
            .map(<[Value]>::to_vec)
            .ok_or_else(|| ClientError::Protocol("journal reply missing events".to_string()))
    }

    /// Asks the server to drain and stop; the reply carries the final
    /// snapshot.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::str("shutdown"))]))
    }
}

#[cfg(test)]
mod tests {
    use std::net::TcpListener;

    use super::*;

    /// A single-use fake node: accepts one connection and answers every
    /// line with `canned`. Returns its address.
    fn fake_node(canned: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            if let Ok((stream, _)) = listener.accept() {
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                while reader.read_line(&mut line).unwrap_or(0) > 0 {
                    if writeln!(writer, "{canned}").is_err() || writer.flush().is_err() {
                        return;
                    }
                    line.clear();
                }
            }
        });
        addr
    }

    #[test]
    fn server_errors_carry_the_shard_tag_of_redirects() {
        let addr =
            fake_node(r#"{"ok":false,"error":"not_primary","leader":"127.0.0.1:9","shard":2}"#);
        let mut client = Client::connect(addr.as_str()).unwrap();
        let err = client.ping().unwrap_err();
        match err {
            ClientError::Server {
                code,
                leader,
                shard,
                ..
            } => {
                assert_eq!(code, "not_primary");
                assert_eq!(leader.as_deref(), Some("127.0.0.1:9"));
                assert_eq!(shard, Some(2));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn redial_consumes_only_the_target_shards_hint() {
        // Shard 2's hint points at a live primary; shard 0's hint is a
        // different address that must survive the shard-2 redial intact.
        let primary = fake_node(r#"{"ok":true,"role":"primary","term":1}"#);
        let start = fake_node(r#"{"ok":true,"role":"primary","term":1}"#);
        let mut client = Client::connect(start.as_str()).unwrap();
        client.leader_hints.insert(0, "127.0.0.1:1".to_string());
        client.leader_hints.insert(2, primary.clone());
        client.redial_for(Some(2)).unwrap();
        assert_eq!(client.current_addr(), primary);
        // The other shard's knowledge was not blacklisted or consumed.
        assert_eq!(
            client.leader_hints.get(&0).map(String::as_str),
            Some("127.0.0.1:1")
        );
        assert!(!client.leader_hints.contains_key(&2));
    }

    #[test]
    fn failover_on_a_shardless_redirect_follows_the_leader_hint() {
        let leader = fake_node(r#"{"ok":true,"role":"primary","term":3,"epoch":0}"#);
        // A standby that always redirects to the leader, without a shard
        // tag (the classic single-market deployment).
        let canned: &'static str = Box::leak(
            format!(r#"{{"ok":false,"error":"not_primary","leader":"{leader}"}}"#).into_boxed_str(),
        );
        let standby = fake_node(canned);
        let mut client = Client::connect(standby.as_str()).unwrap();
        let opts = CallOpts::default().with_retries(2);
        let (reply, retries) = client
            .call_with(&Value::obj(vec![("op", Value::str("ping"))]), &opts)
            .unwrap();
        assert!(retries >= 1);
        assert_eq!(reply.get("term").and_then(Value::as_u64), Some(3));
        assert_eq!(client.current_addr(), leader);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_floored() {
        let opts = CallOpts::default().with_seed(42);
        // Same seed, same attempt: same delay (replayable schedules).
        assert_eq!(opts.backoff(3, None), opts.backoff(3, None));
        // Jitter never exceeds the cap and never undershoots half the
        // exponential step.
        for attempt in 0..16 {
            let d = opts.backoff(attempt, None);
            assert!(d <= opts.max_delay, "attempt {attempt}: {d:?}");
        }
        assert!(opts.backoff(0, None) >= opts.base_delay / 2);
        // The server's retry_after_ms hint is a floor.
        assert!(opts.backoff(0, Some(500)) >= Duration::from_millis(500));
    }

    #[test]
    fn backoff_grows_exponentially_before_the_cap() {
        let opts = CallOpts {
            retries: 4,
            deadline: None,
            retry_budget: None,
            base_delay: Duration::from_millis(8),
            max_delay: Duration::from_secs(10),
            seed: 7,
        };
        // Worst-case jitter of attempt n+2 (half scale) still beats
        // best-case jitter of attempt n (full scale): 2^(n+2)/2 = 2^(n+1).
        assert!(opts.backoff(4, None) > opts.backoff(2, None));
        assert!(opts.backoff(6, None) > opts.backoff(4, None));
    }

    #[test]
    fn retry_budget_caps_cumulative_sleep_despite_huge_server_hints() {
        // A server that is permanently overloaded and, adversarially,
        // hints clients to come back in ten seconds. Without the budget
        // a polite client would sleep the full hint per retry; with it,
        // total sleeping is clamped to the budget and the call returns
        // the rejection promptly.
        let addr = fake_node(r#"{"ok":false,"error":"overloaded","retry_after_ms":10000}"#);
        let mut client = Client::connect(addr.as_str()).unwrap();
        let opts = CallOpts::default()
            .with_retries(50)
            .with_retry_budget(Duration::from_millis(80));
        let started = Instant::now();
        let err = client
            .call_with(&Value::obj(vec![("op", Value::str("tick"))]), &opts)
            .unwrap_err();
        assert_eq!(err.code(), Some("overloaded"));
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "budgeted retries took {elapsed:?}"
        );
    }
}
