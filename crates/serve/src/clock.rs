//! The clock seam: monotonic time as a trait, so heartbeat, election
//! and tick-budget decisions can run on virtual time.
//!
//! Everything in `serve` that *compares* times — "has the standby been
//! silent longer than the election timeout?", "is the next timed epoch
//! due?" — reads a [`Clock`] instead of [`std::time::Instant`] directly.
//! Production uses [`RealClock`], a zero-state newtype over a
//! process-wide monotonic origin; the `ref-dst` simulator substitutes a
//! `SimClock` whose time advances only when the scheduler says so,
//! making every timeout race a deterministic, seed-reproducible event.
//!
//! The seam covers time *reads*; actual blocking (condvar waits, thread
//! parks, socket timeouts) stays on the real primitives — under
//! simulation there are no threads to park, so nothing simulated ever
//! blocks.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic clock: `now()` is the time elapsed since an arbitrary
/// fixed origin. Only differences between readings are meaningful.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Monotonic time since the clock's origin.
    fn now(&self) -> Duration;
}

/// The process monotonic clock ([`Instant`] under the hood), measured
/// from the first reading taken anywhere in the process.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

static ORIGIN: OnceLock<Instant> = OnceLock::new();

impl Clock for RealClock {
    fn now(&self) -> Duration {
        ORIGIN.get_or_init(Instant::now).elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let clock = RealClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn real_clock_advances_with_wall_time() {
        let clock = RealClock;
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(clock.now() > a);
    }
}
