//! The sans-IO service core: one [`MarketEngine`] plus the accepted-event
//! journal, driven by parsed [`Request`]s.
//!
//! The network layer is a pure transport around this type: every request
//! the server admits is handled here, single-threaded, in admission
//! order. That makes the server's behaviour replayable — feeding the
//! journal back through [`replay`] reconstructs the exact engine state,
//! bit for bit — and makes the core testable without opening a socket.

use std::sync::Arc;
use std::time::Instant;

use ref_market::{EpochReport, Result as MarketResult};
use ref_market::{MarketConfig, MarketEngine, MarketEvent, MarketSnapshot};

use crate::fault::FaultPlan;
use crate::json::Value;
use crate::metrics::ServeMetrics;
use crate::protocol::{error_response, event_to_value, ok_response, Request};
use crate::repl::{AckWait, ReplShared, Role};
use crate::storage::{FsStorage, Storage};
use crate::wal::{Wal, WalConfig};

/// How many journal entries the core retains in memory before it stops
/// recording.
///
/// The journal exists so a run can be audited offline (replay equals the
/// live engine, byte for byte). It must not become an unbounded memory
/// leak under sustained load, so past the cap the core keeps serving but
/// marks the in-memory journal overflowed. Without a WAL, `journal`
/// requests then fail loudly instead of returning a silently truncated
/// history; with a WAL the cap is only a cache bound — `journal`
/// requests fall back to reading the log from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalLimit(pub usize);

impl Default for JournalLimit {
    fn default() -> JournalLimit {
        JournalLimit(1 << 20)
    }
}

/// The engine, its journal, the optional write-ahead log, and the last
/// epoch's report.
#[derive(Debug)]
pub struct ServiceCore {
    engine: MarketEngine,
    journal: Vec<MarketEvent>,
    journal_limit: usize,
    journal_overflowed: bool,
    last_report: Option<EpochReport>,
    /// Durable log; when present, every event is appended here *before*
    /// it is applied, and an append failure means the event is rejected.
    wal: Option<Wal>,
    /// Events ever applied to the engine, including those replayed
    /// during recovery — equals the WAL sequence when a WAL is attached.
    events_applied: u64,
    faults: FaultPlan,
    /// Replication state, when this core is one node of a replicated
    /// pair: as a primary it streams every appended record and keeps
    /// per-epoch fingerprints; as a standby it applies the stream.
    repl: Option<Arc<ReplShared>>,
}

impl ServiceCore {
    /// Creates a core around a fresh engine (no durability).
    ///
    /// # Errors
    ///
    /// Propagates [`MarketEngine::new`] configuration errors.
    pub fn new(config: MarketConfig, journal_limit: JournalLimit) -> MarketResult<ServiceCore> {
        Ok(ServiceCore {
            engine: MarketEngine::new(config)?,
            journal: Vec::new(),
            journal_limit: journal_limit.0,
            journal_overflowed: false,
            last_report: None,
            wal: None,
            events_applied: 0,
            faults: FaultPlan::default(),
            repl: None,
        })
    }

    /// Arms a fault-injection plan (testing seam; the default plan
    /// injects nothing). Append-time faults on a durable core are set
    /// through [`ServiceCore::recover`] instead, which threads the plan
    /// into the WAL writer.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> ServiceCore {
        self.faults = faults;
        self
    }

    /// Opens (creating or recovering) a durable core: the WAL directory
    /// is recovered — newest valid checkpoint restored, tail replayed,
    /// torn final record truncated — and every future event is appended
    /// to the log before it is applied.
    ///
    /// The resulting state is bit-identical to replaying the full event
    /// history offline.
    ///
    /// # Errors
    ///
    /// I/O and corruption errors from [`Wal::open`]; an invalid
    /// [`MarketConfig`] or a checkpoint belonging to a *different*
    /// market configuration as [`std::io::ErrorKind::InvalidInput`].
    pub fn recover(
        config: MarketConfig,
        journal_limit: JournalLimit,
        wal_config: WalConfig,
        faults: FaultPlan,
    ) -> std::io::Result<ServiceCore> {
        ServiceCore::recover_with(
            Arc::new(FsStorage),
            config,
            journal_limit,
            wal_config,
            faults,
        )
    }

    /// [`ServiceCore::recover`] against an explicit [`Storage`]
    /// implementation — how the deterministic simulator hosts durable
    /// cores on an in-memory disk.
    ///
    /// # Errors
    ///
    /// Exactly as [`ServiceCore::recover`].
    pub fn recover_with(
        storage: Arc<dyn Storage>,
        config: MarketConfig,
        journal_limit: JournalLimit,
        wal_config: WalConfig,
        faults: FaultPlan,
    ) -> std::io::Result<ServiceCore> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        let recovery = Wal::open_with(storage, wal_config, faults.clone())?;
        let mut engine = match &recovery.checkpoint {
            Some((_, snapshot)) => {
                // Capacity values are excluded from the check: the
                // sharded coordinator reallots capacity at runtime, and
                // the journaled reallotments restore the exact split.
                if !snapshot.config.compatible_with(&config) {
                    return Err(invalid(
                        "wal directory belongs to a different market configuration".to_string(),
                    ));
                }
                MarketEngine::restore(snapshot).map_err(|e| invalid(e.to_string()))?
            }
            None => MarketEngine::new(config).map_err(|e| invalid(e.to_string()))?,
        };
        // Replay the tail exactly as the live core does: rejections are
        // part of faithful replay.
        for event in &recovery.tail {
            let _ = engine.apply_now(event.clone());
        }
        let wal = recovery.wal;
        let events_applied = wal.next_seq();

        // Re-warm the in-memory journal cache when the log still holds
        // the complete history and it fits; otherwise the cache starts
        // overflowed and `journal` requests stream from the WAL.
        let mut journal = Vec::new();
        let mut journal_overflowed = true;
        if let Ok((0, events)) = wal.read_events() {
            if events.len() as u64 == events_applied && events.len() <= journal_limit.0 {
                journal = events;
                journal_overflowed = false;
            }
        }

        Ok(ServiceCore {
            engine,
            journal,
            journal_limit: journal_limit.0,
            journal_overflowed,
            last_report: None,
            wal: Some(wal),
            events_applied,
            faults,
            repl: None,
        })
    }

    /// Attaches replication state; the core will stream appended records
    /// (as a primary) and track per-epoch state fingerprints.
    pub fn attach_repl(&mut self, repl: Arc<ReplShared>) {
        self.repl = Some(repl);
    }

    /// The wrapped engine (read-only).
    pub fn engine(&self) -> &MarketEngine {
        &self.engine
    }

    /// The attached write-ahead log, if the core is durable.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Events ever applied to the engine (including recovery replay).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// The accepted-event journal (empty once overflowed — check
    /// [`ServiceCore::journal_overflowed`]).
    pub fn journal(&self) -> &[MarketEvent] {
        &self.journal
    }

    /// Whether the journal hit its cap and stopped recording.
    pub fn journal_overflowed(&self) -> bool {
        self.journal_overflowed
    }

    /// The most recent epoch report, if any epoch has run.
    pub fn last_report(&self) -> Option<&EpochReport> {
        self.last_report.as_ref()
    }

    fn record(&mut self, event: &MarketEvent) {
        if self.journal_overflowed {
            return;
        }
        if self.journal.len() >= self.journal_limit {
            self.journal_overflowed = true;
            self.journal = Vec::new();
            return;
        }
        self.journal.push(event.clone());
    }

    /// Applies one event-bearing request to the engine, logging it
    /// durably and journaling it first (rejected events are logged too —
    /// the rejection bumps an engine counter, so replay must see it to
    /// stay bit-identical).
    ///
    /// Append-before-apply, fail-closed: if the WAL append fails the
    /// event is *not* applied and the client gets a `wal` error — engine
    /// state is never ahead of the log.
    fn apply_event(&mut self, event: MarketEvent, metrics: &ServeMetrics) -> Value {
        let seq = self.events_applied;
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.append(&event) {
                ServeMetrics::bump(&metrics.wal_errors);
                return error_response("wal", Some(&format!("append failed: {e}")), None);
            }
            ServeMetrics::bump(&metrics.wal_appends);
        }
        if self.faults.panic_on_event == Some(seq) {
            // After the append, before the apply: the record is durable
            // but orphaned; recovery must replay it.
            panic!("injected panic applying event seq {seq}");
        }
        // Stream to standbys right after the durable append, before the
        // local apply, so replication overlaps the engine work.
        if let Some(repl) = self.repl.as_ref().filter(|r| r.role() == Role::Primary) {
            repl.publish_record(seq, &event);
            ServeMetrics::bump(&metrics.repl_records_sent);
        }
        self.record(&event);
        self.events_applied += 1;
        let is_tick = matches!(event, MarketEvent::EpochTick);
        let started = Instant::now();
        let response = match self.engine.apply_now(event) {
            Ok(report) => {
                let epoch = self.engine.epoch();
                if is_tick {
                    metrics
                        .epoch_latency
                        .record_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                    ServeMetrics::bump(&metrics.epochs);
                    if let Some(repl) = &self.repl {
                        repl.push_epoch_fp(
                            self.events_applied,
                            epoch,
                            self.engine.state_fingerprint(),
                        );
                    }
                }
                let mut fields = vec![("epoch", Value::from_u64(epoch))];
                if let Some(report) = report {
                    fields.push((
                        "report",
                        Value::parse(&report.to_json()).expect("report JSON is valid"),
                    ));
                    self.last_report = Some(report);
                }
                ok_response(fields)
            }
            Err(e) => error_response("market", Some(&e.to_string()), None),
        };
        self.maybe_checkpoint(metrics);
        // Synchronous replication: hold the reply until a standby has
        // applied this record, so an acked mutation survives failover.
        // With no standby connected the primary degrades to async (a
        // lone node must stay available); on timeout the client gets a
        // loud `repl` error — the event *is* applied locally, but its
        // replication was never confirmed.
        if let Some(repl) = self
            .repl
            .as_ref()
            .filter(|r| r.sync() && r.role() == Role::Primary)
        {
            match repl.wait_applied(self.events_applied, repl.ack_timeout()) {
                AckWait::Acked | AckWait::NoStandby => {}
                AckWait::TimedOut => {
                    return error_response(
                        "repl",
                        Some("applied locally but the standby ack timed out; not confirmed replicated"),
                        None,
                    );
                }
            }
        }
        response
    }

    /// Takes a snapshot checkpoint when the configured cadence is due;
    /// a failed checkpoint is logged in metrics but never fatal — the
    /// WAL tail simply stays longer.
    fn maybe_checkpoint(&mut self, metrics: &ServeMetrics) {
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        let every = wal.checkpoint_every();
        if every == 0 || !self.events_applied.is_multiple_of(every) {
            return;
        }
        match wal.checkpoint(&self.engine.snapshot().encode()) {
            Ok(()) => ServeMetrics::bump(&metrics.checkpoints),
            Err(_) => ServeMetrics::bump(&metrics.wal_errors),
        }
    }

    /// Applies one *replicated* record on a standby: the same
    /// append-before-apply path as a primary mutation, entered at a
    /// known sequence. Replays (`seq` below the applied count) are
    /// skipped but still acknowledged; a sequence from the future means
    /// the stream has a hole and the puller must resynchronize.
    ///
    /// Public for the deterministic simulator (`ref-dst`), which drives
    /// standby cores with frames it routes itself instead of running the
    /// replication threads.
    pub fn apply_repl(
        &mut self,
        seq: u64,
        event: MarketEvent,
        metrics: &ServeMetrics,
    ) -> ReplApply {
        if seq < self.events_applied {
            return ReplApply::Skipped;
        }
        if seq > self.events_applied {
            return ReplApply::Gap;
        }
        if let Some(wal) = self.wal.as_mut() {
            if wal.append(&event).is_err() {
                // Counted in `wal_errors`; the puller resynchronizes.
                ServeMetrics::bump(&metrics.wal_errors);
                return ReplApply::WalError;
            }
            ServeMetrics::bump(&metrics.wal_appends);
        }
        // Divergence injection: log and acknowledge the record but skip
        // the engine apply, exactly like a buggy replica would.
        let skip_apply = self.faults.corrupt_standby_at == Some(seq);
        self.record(&event);
        self.events_applied += 1;
        let is_tick = matches!(event, MarketEvent::EpochTick);
        let started = Instant::now();
        if !skip_apply {
            // Rejections are part of faithful replay, same as recovery.
            let _ = self.engine.apply_now(event);
        }
        let mut epoch_fp = None;
        if is_tick {
            metrics
                .epoch_latency
                .record_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            ServeMetrics::bump(&metrics.epochs);
            // Fingerprint whatever state we actually have — a corrupted
            // apply must produce a *wrong* fingerprint, not none.
            epoch_fp = Some((self.engine.epoch(), self.engine.state_fingerprint()));
        }
        self.maybe_checkpoint(metrics);
        ReplApply::Applied { epoch_fp }
    }

    /// Resets the standby to a bootstrap checkpoint from the primary:
    /// engine restored from the snapshot text, WAL rewritten to start at
    /// that checkpoint, journal invalidated.
    ///
    /// # Errors
    ///
    /// An undecodable snapshot or one for a different market
    /// configuration as [`std::io::ErrorKind::InvalidInput`]; WAL reset
    /// I/O errors verbatim.
    pub fn restore_from_snapshot(&mut self, seq: u64, snapshot_text: &str) -> std::io::Result<()> {
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
        let snapshot = MarketSnapshot::decode(snapshot_text).map_err(|e| invalid(e.to_string()))?;
        if !snapshot.config.compatible_with(self.engine.config()) {
            return Err(invalid(
                "replication snapshot belongs to a different market configuration".to_string(),
            ));
        }
        self.engine = MarketEngine::restore(&snapshot).map_err(|e| invalid(e.to_string()))?;
        if let Some(wal) = self.wal.as_mut() {
            wal.reset_to_checkpoint(seq, snapshot_text)?;
        }
        self.journal = Vec::new();
        self.journal_overflowed = seq > 0;
        self.last_report = None;
        self.events_applied = seq;
        Ok(())
    }

    /// Handles one admitted request and produces its response.
    ///
    /// `Shutdown` is *not* handled here — the transport intercepts it to
    /// sequence the drain — but every other op is.
    pub fn handle(&mut self, request: &Request, metrics: &ServeMetrics) -> Value {
        if let Some(event) = request.to_event() {
            return self.apply_event(event, metrics);
        }
        match request {
            Request::Query { agent: None } => {
                let mut fields = vec![
                    ("epoch", Value::from_u64(self.engine.epoch())),
                    (
                        "agents",
                        Value::Arr(
                            self.engine
                                .live_agents()
                                .into_iter()
                                .map(Value::from_u64)
                                .collect(),
                        ),
                    ),
                ];
                if let Some(report) = &self.last_report {
                    fields.push((
                        "report",
                        Value::parse(&report.to_json()).expect("report JSON is valid"),
                    ));
                }
                ok_response(fields)
            }
            Request::Query { agent: Some(id) } => match self.engine.agent(*id) {
                None => error_response("market", Some(&format!("unknown agent {id}")), None),
                Some(agent) => {
                    let utility = agent.reported_utility();
                    let bundle = self.last_report.as_ref().and_then(|r| {
                        let slot = r.agents.iter().position(|a| a == id)?;
                        let alloc = r.allocation.as_ref()?;
                        Some(Value::num_array(alloc.bundle(slot).as_slice()))
                    });
                    ok_response(vec![
                        ("epoch", Value::from_u64(self.engine.epoch())),
                        ("agent", Value::from_u64(*id)),
                        ("joined_epoch", Value::from_u64(agent.joined_epoch)),
                        ("elasticities", Value::num_array(utility.elasticities())),
                        (
                            "observations",
                            Value::from_u64(agent.estimator.num_observations() as u64),
                        ),
                        ("refits", Value::from_u64(agent.estimator.refits() as u64)),
                        ("quarantined", Value::Bool(agent.quarantined())),
                        ("credit", Value::num(self.engine.ledger().balance(*id))),
                        ("bundle", bundle.unwrap_or(Value::Null)),
                    ])
                }
            },
            Request::Snapshot => ok_response(vec![(
                "snapshot",
                Value::str(self.engine.snapshot().encode()),
            )]),
            Request::Metrics { text } => {
                let server = metrics.snapshot();
                let ledger = self.engine.ledger();
                if *text {
                    let mut out = self.engine.metrics().to_text();
                    out.push_str(&format!(
                        "refmarket_ledger_agents {}\nrefmarket_ledger_total {}\nrefmarket_ledger_total_abs {}\n",
                        ledger.len(),
                        ledger.total(),
                        ledger.total_abs(),
                    ));
                    out.push_str(&server.to_text());
                    ok_response(vec![("text", Value::str(out))])
                } else {
                    ok_response(vec![
                        (
                            "market",
                            Value::parse(&self.engine.metrics().to_json())
                                .expect("metrics JSON is valid"),
                        ),
                        (
                            "ledger",
                            Value::obj(vec![
                                ("agents", Value::from_u64(ledger.len() as u64)),
                                ("total", Value::num(ledger.total())),
                                ("total_abs", Value::num(ledger.total_abs())),
                                ("max_abs", Value::num(ledger.max_abs())),
                            ]),
                        ),
                        ("server", server.to_json_value()),
                    ])
                }
            }
            Request::Journal => {
                if !self.journal_overflowed {
                    return ok_response(vec![(
                        "events",
                        Value::Arr(self.journal.iter().map(event_to_value).collect()),
                    )]);
                }
                // The in-memory cache overflowed; with a WAL that is not
                // a correctness limit — stream the history from disk, as
                // long as the log still reaches back to event 0.
                let Some(wal) = &self.wal else {
                    return error_response(
                        "journal_overflow",
                        Some("journal exceeded its retention limit and was dropped"),
                        None,
                    );
                };
                match wal.read_events() {
                    Ok((0, events)) if events.len() as u64 == self.events_applied => {
                        ok_response(vec![(
                            "events",
                            Value::Arr(events.iter().map(event_to_value).collect()),
                        )])
                    }
                    Ok(_) => error_response(
                        "journal_truncated",
                        Some(
                            "checkpoint pruning dropped the event prefix; only snapshots cover it",
                        ),
                        None,
                    ),
                    Err(e) => {
                        error_response("wal", Some(&format!("journal read failed: {e}")), None)
                    }
                }
            }
            Request::Scrub => {
                let Some(wal) = &self.wal else {
                    // No WAL, nothing to verify: vacuously clean.
                    return ok_response(vec![
                        ("clean", Value::Bool(true)),
                        ("segments", Value::from_u64(0)),
                        ("records", Value::from_u64(0)),
                        ("checkpoints", Value::from_u64(0)),
                        ("errors", Value::Arr(Vec::new())),
                    ]);
                };
                match wal.scrub() {
                    Ok(report) => {
                        ServeMetrics::bump_by(
                            &metrics.wal_scrub_errors,
                            report.errors.len() as u64,
                        );
                        ok_response(vec![
                            ("clean", Value::Bool(report.is_clean())),
                            ("segments", Value::from_u64(report.segments)),
                            ("records", Value::from_u64(report.records)),
                            ("checkpoints", Value::from_u64(report.checkpoints)),
                            (
                                "errors",
                                Value::Arr(
                                    report
                                        .errors
                                        .iter()
                                        .map(|e| Value::str(e.clone()))
                                        .collect(),
                                ),
                            ),
                        ])
                    }
                    Err(e) => error_response("wal", Some(&format!("scrub failed: {e}")), None),
                }
            }
            Request::Shutdown => error_response(
                "protocol",
                Some("shutdown is handled by the transport"),
                None,
            ),
            // Like Shutdown: the transport answers these (ping straight
            // on the reader thread, promote in the ticker's role logic).
            Request::Ping { .. } => {
                error_response("protocol", Some("ping is handled by the transport"), None)
            }
            Request::Promote => error_response(
                "protocol",
                Some("promote is handled by the transport"),
                None,
            ),
            // Event-bearing ops were dispatched above.
            Request::Join { .. }
            | Request::Leave { .. }
            | Request::Demand { .. }
            | Request::Observe { .. }
            | Request::Reallot { .. }
            | Request::Tick => unreachable!("event-bearing request fell through"),
        }
    }

    /// Final snapshot text, for the shutdown drain.
    pub fn final_snapshot(&self) -> String {
        self.engine.snapshot().encode()
    }
}

/// Outcome of applying one replicated record on a standby.
#[derive(Debug)]
pub enum ReplApply {
    /// Applied (and logged); when the record closed an epoch, the
    /// standby's post-epoch state fingerprint rides back on the ack.
    Applied {
        /// `(epoch, fingerprint)` when the record was an epoch tick.
        epoch_fp: Option<(u64, u64)>,
    },
    /// Already applied (stream replay after a reconnect); ack anyway.
    Skipped,
    /// The record skips ahead of this standby's history: unrecoverable
    /// in-stream, the puller must reconnect and catch up.
    Gap,
    /// The local append failed (counted in `wal_errors`); the record
    /// was *not* applied.
    WalError,
}

/// Replays a journal against a fresh engine with `config`, continuing
/// past rejected events exactly as the live core does.
///
/// The result is bit-identical to the engine that produced the journal:
/// `replay(config, core.journal()).snapshot().encode() ==
/// core.final_snapshot()`.
///
/// # Errors
///
/// Propagates only [`MarketEngine::new`] configuration errors; event
/// rejections are part of faithful replay and are swallowed.
pub fn replay(config: MarketConfig, journal: &[MarketEvent]) -> MarketResult<MarketEngine> {
    let mut engine = MarketEngine::new(config)?;
    for event in journal {
        let _ = engine.apply_now(event.clone());
    }
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ref_core::resource::Capacity;
    use ref_core::utility::CobbDouglas;
    use ref_market::ObservationSource;

    fn config() -> MarketConfig {
        MarketConfig::new(Capacity::new(vec![24.0, 12.0]).unwrap())
    }

    fn join(agent: u64, e0: f64) -> Request {
        Request::Join {
            agent,
            source: ObservationSource::GroundTruth(
                CobbDouglas::new(1.0, vec![e0, 1.0 - e0]).unwrap(),
            ),
        }
    }

    #[test]
    fn core_journal_replays_bit_identically() {
        let metrics = ServeMetrics::new();
        let mut core = ServiceCore::new(config(), JournalLimit::default()).unwrap();
        core.handle(&join(1, 0.6), &metrics);
        core.handle(&join(2, 0.2), &metrics);
        core.handle(&join(1, 0.5), &metrics); // duplicate: rejected, journaled
        for _ in 0..12 {
            core.handle(&Request::Tick, &metrics);
        }
        core.handle(&Request::Leave { agent: 2 }, &metrics);
        core.handle(&Request::Leave { agent: 99 }, &metrics); // unknown: rejected
        core.handle(&Request::Tick, &metrics);

        let replayed = replay(config(), core.journal()).unwrap();
        assert_eq!(replayed.snapshot().encode(), core.final_snapshot());
        assert_eq!(metrics.snapshot().epochs, 13);
    }

    #[test]
    fn queries_report_allocation_bundles() {
        let metrics = ServeMetrics::new();
        let mut core = ServiceCore::new(config(), JournalLimit::default()).unwrap();
        core.handle(&join(1, 0.6), &metrics);
        core.handle(&join(2, 0.2), &metrics);
        for _ in 0..20 {
            core.handle(&Request::Tick, &metrics);
        }
        let reply = core.handle(&Request::Query { agent: Some(1) }, &metrics);
        assert_eq!(reply.get("ok"), Some(&Value::Bool(true)));
        assert!(
            reply.get("credit").unwrap().as_f64().unwrap().is_finite(),
            "{reply}"
        );
        let bundle = reply.get("bundle").unwrap().as_array().unwrap();
        assert_eq!(bundle.len(), 2);
        assert!((bundle[0].as_f64().unwrap() - 18.0).abs() < 0.6, "{reply}");
        let market_wide = core.handle(&Request::Query { agent: None }, &metrics);
        assert_eq!(
            market_wide.get("agents").unwrap().as_array().unwrap().len(),
            2
        );
        let unknown = core.handle(&Request::Query { agent: Some(9) }, &metrics);
        assert_eq!(unknown.get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn journal_overflow_fails_loudly_not_silently() {
        let metrics = ServeMetrics::new();
        let mut core = ServiceCore::new(config(), JournalLimit(3)).unwrap();
        core.handle(&join(1, 0.6), &metrics);
        core.handle(&Request::Tick, &metrics);
        core.handle(&Request::Tick, &metrics);
        assert!(!core.journal_overflowed());
        core.handle(&Request::Tick, &metrics); // 4th event: overflow
        assert!(core.journal_overflowed());
        assert!(core.journal().is_empty());
        let reply = core.handle(&Request::Journal, &metrics);
        assert_eq!(
            reply.get("error").and_then(Value::as_str),
            Some("journal_overflow")
        );
        // The engine keeps serving regardless.
        let tick = core.handle(&Request::Tick, &metrics);
        assert_eq!(tick.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn metrics_reply_carries_market_and_server_sections() {
        let metrics = ServeMetrics::new();
        let mut core = ServiceCore::new(config(), JournalLimit::default()).unwrap();
        core.handle(&join(1, 0.6), &metrics);
        core.handle(&Request::Tick, &metrics);
        let reply = core.handle(&Request::Metrics { text: false }, &metrics);
        assert_eq!(
            reply.get("market").unwrap().get("epochs").unwrap().as_u64(),
            Some(1)
        );
        assert!(reply.get("server").unwrap().get("epochs").is_some());
        let ledger = reply.get("ledger").unwrap();
        assert_eq!(ledger.get("agents").unwrap().as_u64(), Some(1));
        assert!(ledger.get("total").unwrap().as_f64().unwrap().abs() < 1e-9);
        let text = core.handle(&Request::Metrics { text: true }, &metrics);
        let body = text.get("text").unwrap().as_str().unwrap();
        assert!(body.contains("refmarket_epochs 1\n"), "{body}");
        assert!(body.contains("refmarket_ledger_agents 1\n"), "{body}");
        assert!(body.contains("refserve_epochs"), "{body}");
    }
}
