//! Deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] is plain data threaded through the WAL writer and the
//! request path. Every trigger is counted against a deterministic event
//! ordinal (the WAL append sequence, or an explicit line token), so a
//! test that injects "fail the 7th append" fails the same append on
//! every run. The default plan injects nothing and costs two branch
//! checks per append — it is always compiled, never feature-gated, so
//! the production code path *is* the tested code path.

/// A deterministic schedule of injected faults. `Default` injects none.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the append of WAL record `seq` (no bytes written): the write
    /// path reports an I/O error and the event must not be applied. Fires
    /// once — a retry of the same sequence succeeds, modeling a transient
    /// disk error.
    pub fail_append_at: Option<u64>,
    /// Tear the append of WAL record `seq`: write only the first `bytes`
    /// bytes of the framed record, then report an I/O error and poison
    /// the log (as a dying disk would). Recovery must truncate the torn
    /// tail back to the last complete record.
    pub torn_append_at: Option<(u64, usize)>,
    /// Fail the fsync after WAL record `seq`; treated like a failed
    /// append — the written bytes are rolled back and the event is not
    /// applied. Fires once, like `fail_append_at`.
    pub fail_sync_at: Option<u64>,
    /// Panic the ticker while applying WAL record `seq`, *after* the
    /// record is durable but *before* the engine applies it. Exercises
    /// the supervised-ticker path: the server must degrade, keep serving
    /// reads, and recovery must replay the orphaned record.
    pub panic_on_event: Option<u64>,
    /// Panic the reader thread whose request line contains this token,
    /// exercising connection isolation: the poisoned connection dies
    /// alone and every other connection keeps working.
    pub panic_on_line_token: Option<String>,
    /// On a *standby*, silently skip applying the replicated record
    /// `seq` to the engine (the record is still logged and acknowledged,
    /// as a buggy or bit-flipped replica would). The standby's state
    /// then diverges from the primary's, and the per-epoch fingerprint
    /// carried on its acks must catch it: the primary fences the replica
    /// instead of ever promoting it.
    pub corrupt_standby_at: Option<u64>,
    /// `(shard, epoch, delay_ms)`: stall shard `shard`'s ticker for
    /// `delay_ms` milliseconds right before it applies the tick that
    /// would close epoch `epoch`. Models a GC pause / IO stall on one
    /// shard: the router's per-shard tick budget must expire, the shard
    /// must turn Suspect (then Down if the stall outlasts further
    /// ticks), and the fleet clock must keep advancing. One-shot by
    /// construction — the epoch ordinal only passes once.
    pub slow_shard_tick: Option<(u64, u64, u64)>,
    /// `(shard, epoch)`: shard `shard` applies (and journals) the tick
    /// closing epoch `epoch` but never sends the reply, as a ticker
    /// wedged *after* the durable work would. The router sees a tick
    /// timeout while the shard's state stays consistent — the
    /// reply-loss and state-loss failure modes are decoupled.
    pub drop_tick_reply: Option<(u64, u64)>,
    /// `(shard, epoch)`: panic shard `shard`'s ticker immediately after
    /// it applies the tick closing epoch `epoch` (the tick is already
    /// durable). Exercises the full shard-recovery path: degraded mode,
    /// `shard_unavailable` fast-fails, supervisor restart from the
    /// shard's own WAL, and epoch resynchronization. Cannot re-fire
    /// after recovery: the recovered engine is already past `epoch`.
    pub panic_shard_ticker: Option<(u64, u64)>,
    /// Schedule-driven WAL faults: an arbitrary list of injections, each
    /// keyed to an append sequence and fired once when that sequence is
    /// attempted. This is the simulator's interface — `ref-dst` compiles
    /// a seeded virtual-time schedule down to the WAL sequences it
    /// expects each node to reach, so one plan can tear *several* writes
    /// across a run where the single-shot fields above inject exactly
    /// one. Entries may target the same sequences as the single-shot
    /// fields; the single-shot fields win ties (they are checked first).
    pub wal_schedule: Vec<ScheduledWalFault>,
}

/// One entry in [`FaultPlan::wal_schedule`]: inject `kind` when the WAL
/// attempts to append sequence `at_seq`. Fires once and is consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledWalFault {
    /// The append sequence the fault triggers on.
    pub at_seq: u64,
    /// What to inject.
    pub kind: WalFaultKind,
}

/// The kinds of WAL write fault a schedule can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalFaultKind {
    /// Fail the append before any bytes land (transient; a retry of the
    /// same sequence succeeds). Mirrors [`FaultPlan::fail_append_at`].
    FailAppend,
    /// Fail the fsync after the bytes land; the bytes are rolled back
    /// and the append reports an error. Mirrors
    /// [`FaultPlan::fail_sync_at`].
    FailSync,
    /// Write only the first `bytes` bytes of the framed record, then
    /// poison the log — a crash mid-write. Mirrors
    /// [`FaultPlan::torn_append_at`].
    Torn {
        /// How many bytes of the framed record land before the tear.
        bytes: usize,
    },
}

impl FaultPlan {
    /// A plan that injects nothing (same as `Default`).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether any fault is armed (used to skip per-request checks in
    /// the common case).
    pub fn is_armed(&self) -> bool {
        *self != FaultPlan::default()
    }
}
