//! A minimal, dependency-free JSON codec for the wire protocol.
//!
//! Scope is deliberately small: one JSON value per protocol line, objects
//! preserve insertion order (so responses serialize with a fixed field
//! order), numbers are `f64` (ids must stay below 2^53 — the engine's
//! `AgentId` space used on the wire), and strings support the standard
//! escapes plus `\uXXXX` (surrogate pairs included). Number formatting
//! uses Rust's shortest round-trip `Display`, so a value that survives an
//! encode → decode cycle is bit-identical.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on encode.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(x: impl Into<f64>) -> Value {
        Value::Num(x.into())
    }

    /// Builds a number from a `u64` (callers must keep ids below 2^53).
    pub fn from_u64(x: u64) -> Value {
        Value::Num(x as f64)
    }

    /// Builds an array of numbers.
    pub fn num_array(xs: &[f64]) -> Value {
        Value::Arr(xs.iter().map(|x| Value::Num(*x)).collect())
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer below 2^53, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && *x <= 9.007_199_254_740_992e15 && x.fract() == 0.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to its compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text`, requiring it to consume the
    /// whole input (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a document failed to parse: a message plus the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable reason.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth cap: protocol messages are flat, anything deeper is abuse.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let x: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !x.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-4.25", "1e-300", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.0e22, -0.0, 9.007199254740992e15] {
            let v = Value::Num(x);
            let back = Value::parse(&v.encode()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn objects_preserve_field_order() {
        let v = Value::obj(vec![
            ("z", Value::num(1.0)),
            ("a", Value::Bool(true)),
            ("m", Value::Null),
        ]);
        assert_eq!(v.encode(), "{\"z\":1,\"a\":true,\"m\":null}");
        let parsed = Value::parse("{\"z\":1,\"a\":true,\"m\":null}").unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.get("a"), Some(&Value::Bool(true)));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" tab\t back\\slash \u{1}";
        let v = Value::str(s);
        let encoded = v.encode();
        assert!(encoded.contains("\\n") && encoded.contains("\\u0001"));
        assert_eq!(Value::parse(&encoded).unwrap().as_str(), Some(s));
        // Unicode escapes, including surrogate pairs.
        assert_eq!(
            Value::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap().as_str(),
            Some("é😀")
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}}",
            "\"\\ud800\"",
            "nan",
            "01a",
            "--1",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn integer_extraction_guards_precision_and_sign() {
        assert_eq!(Value::num(7.0).as_u64(), Some(7));
        assert_eq!(Value::num(-1.0).as_u64(), None);
        assert_eq!(Value::num(1.5).as_u64(), None);
        assert_eq!(Value::from_u64(123).as_u64(), Some(123));
    }
}
