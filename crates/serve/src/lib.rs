//! ref-serve: a batching, backpressured network front-end for the REF
//! market.
//!
//! The [`ref_market`] engine is an in-process, single-threaded state
//! machine. This crate puts it on the wire without giving up its
//! determinism contract:
//!
//! * **Transport** ([`server`]): a std-only TCP server speaking
//!   newline-delimited JSON ([`protocol`]). An acceptor thread spawns one
//!   reader per connection; readers parse and *admit* requests, they
//!   never touch the engine.
//! * **Backpressure** ([`bus`]): admitted requests enter a bounded FIFO
//!   with per-class quotas (control / observe / query). When a class
//!   quota is full, the client gets an immediate `overloaded` rejection
//!   with a `retry_after_ms` hint — queueing is never unbounded and
//!   rejection is never silent.
//! * **Batching** ([`server`]'s ticker): a single thread drains the bus
//!   in arrival order, applies each request to the engine, runs timed
//!   epochs, and fans replies back over per-request channels. One thread,
//!   one total order — the engine stays deterministic.
//! * **Replayability** ([`core`]): every event submitted to the engine is
//!   journaled; [`core::replay`] reconstructs the final engine state
//!   byte-for-byte from the journal, making the server a *pure
//!   transport*: accepted events in, the same allocations an offline
//!   `submit_all` would produce out.
//! * **Observability** ([`metrics`]): lock-free server counters and a
//!   log2 epoch-latency histogram, served next to the market's own
//!   [`ref_market::MarketMetrics`] in stable JSON or scrape-style text.
//! * **Durability** ([`wal`]): an optional segmented, checksummed
//!   write-ahead log. Every admitted event is appended before it is
//!   applied; periodic snapshot checkpoints truncate old segments; and
//!   [`Server::recover`] resumes after a crash — tolerating a torn final
//!   record — with state bit-identical to an offline replay.
//! * **Supervision** ([`server`]): reader threads and the ticker run
//!   under `catch_unwind`. A panicking connection dies alone; a ticker
//!   panic flips the server into a degraded mode that refuses mutations
//!   but keeps serving reads. A deterministic [`fault::FaultPlan`]
//!   injects crashes, torn writes, and failed syncs for testing.
//! * **Replication** ([`repl`]): an optional hot standby fed by WAL
//!   shipping over the same checksummed record framing. Automatic (or
//!   `promote`-driven) failover with monotone terms and fencing, and
//!   per-epoch state fingerprints that detect a divergent replica and
//!   fence it rather than ever promote it. [`Client`] fails over across
//!   a seed list by following `not_primary` redirects and `ping`.
//! * **Sharding** ([`shard`] + [`server`]'s router): optionally
//!   partitions agents across N independent market shards via a seeded
//!   consistent-hash ring. Each shard keeps its own ticker, bus, WAL
//!   directory and journal (crash safety and replay compose per shard
//!   unchanged); `tick` fans out to every shard and a cross-shard
//!   coordinator rebalances per-resource capacity between shards after
//!   each epoch, with a temporal-drift bound audited next to SI/EF/PE.
//! * **Shard fault tolerance** ([`server`]'s router + supervisor): the
//!   router tracks per-shard health (`Healthy → Suspect → Down`) from
//!   tick timeouts and failure replies, fails agent ops to a Down shard
//!   fast with `shard_unavailable` + `retry_after_ms`, gates cross-shard
//!   reallotment on a reporting quorum (partial epochs are stamped
//!   `partial: true` and never audited as fleet-wide fairness), and a
//!   supervisor thread restarts a degraded shard in place from its own
//!   WAL, resynchronizing it to the fleet epoch.
//!
//! # Quickstart
//!
//! ```
//! use ref_core::resource::Capacity;
//! use ref_market::MarketConfig;
//! use ref_serve::{Client, ServeConfig, Server};
//!
//! let market = MarketConfig::new(Capacity::new(vec![16.0, 8.0]).unwrap());
//! // `epoch_interval: None` runs epochs only on explicit `tick` requests
//! // (deterministic mode); pass `Some(interval)` for timed epochs.
//! let config = ServeConfig::new(market).with_epoch_interval(None);
//! let server = Server::start("127.0.0.1:0", config).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! client.join_truth(1, 1.0, &[0.7, 0.3]).unwrap();
//! client.tick().unwrap();
//! let reply = client.query_agent(1).unwrap();
//! assert!(reply.get("bundle").is_some());
//!
//! let report = server.shutdown();
//! assert!(report.snapshot.starts_with("refmarket-snapshot"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod client;
pub mod clock;
pub mod core;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod repl;
pub mod server;
pub mod shard;
pub mod storage;
pub mod wal;

pub use bus::{Bus, Quotas, SendError};
pub use client::{CallOpts, Client, ClientError};
pub use clock::{Clock, RealClock};
pub use core::{replay, JournalLimit, ReplApply, ServiceCore};
pub use fault::{FaultPlan, ScheduledWalFault, WalFaultKind};
pub use json::Value;
pub use metrics::{HistogramSnapshot, LatencyHistogram, ServeMetrics, ServeMetricsSnapshot};
pub use protocol::{parse_request, Class, Envelope, Request};
pub use repl::{decode_frame, encode_frame, FrameDecode, ReplConfig, ReplShared, Role};
pub use server::{ServeConfig, Server, ShardShutdown, ShutdownReport};
pub use shard::{
    default_quorum, shard_market_config, CoordinationStatus, Coordinator, HashRing, ShardHealth,
};
pub use storage::{FsStorage, Storage, StorageFile};
pub use wal::{Recovery, ScrubReport, Wal, WalConfig};
