//! Server-side counters and the epoch-latency histogram.
//!
//! All counters are atomics so connection readers, the acceptor and the
//! ticker update them without a lock; [`ServeMetrics::snapshot`] takes a
//! point-in-time copy for serialization. The histogram uses power-of-two
//! microsecond buckets — coarse, but monotone and allocation-free — and
//! reports conservative (upper-bound) percentile estimates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Value;

/// Number of log2 microsecond buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` µs, except bucket 0 (`< 2` µs) and the last bucket
/// (everything from ~67 s up).
pub const HISTOGRAM_BUCKETS: usize = 27;

/// A fixed-bucket log2 latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    fn bucket_index(us: u64) -> usize {
        ((64 - us.max(1).leading_zeros() as usize) - 1).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample, in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// A plain copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Upper bound of bucket `i` in microseconds.
    fn bucket_upper_us(i: usize) -> u64 {
        1u64 << (i + 1)
    }

    /// Conservative `q`-quantile estimate in microseconds (the upper edge
    /// of the bucket containing the quantile), or 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_us(i);
            }
        }
        Self::bucket_upper_us(HISTOGRAM_BUCKETS - 1)
    }

    /// Mean sample in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Stable JSON form: count, sum, p50/p99 estimates, non-empty buckets
    /// as `[index, count]` pairs.
    pub fn to_json_value(&self) -> Value {
        let nonzero: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| Value::Arr(vec![Value::from_u64(i as u64), Value::from_u64(*n)]))
            .collect();
        Value::obj(vec![
            ("count", Value::from_u64(self.count)),
            ("sum_us", Value::from_u64(self.sum_us)),
            ("p50_us", Value::from_u64(self.quantile_us(0.50))),
            ("p99_us", Value::from_u64(self.quantile_us(0.99))),
            ("buckets", Value::Arr(nonzero)),
        ])
    }
}

/// Shared server counters, updated lock-free from every thread.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Requests admitted to the bus.
    pub accepted: AtomicU64,
    /// Requests bounced by a full class quota.
    pub rejected_overload: AtomicU64,
    /// Requests dropped in-queue past their deadline.
    pub rejected_deadline: AtomicU64,
    /// Requests bounced because the server was draining.
    pub rejected_shutdown: AtomicU64,
    /// Lines that failed to parse or validate.
    pub protocol_errors: AtomicU64,
    /// Epochs executed by the ticker.
    pub epochs: AtomicU64,
    /// Queue depth observed at the shard's last drain (gauge); on a
    /// sharded server each shard keeps its own, so scrapes see per-shard
    /// backlog, not just the high-water mark.
    pub queue_depth: AtomicU64,
    /// High-water mark of queue depth observed at drain time.
    pub queue_depth_max: AtomicU64,
    /// Events appended durably to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// Failed WAL appends/checkpoints (each one rejected an event or
    /// postponed a checkpoint — never silently dropped).
    pub wal_errors: AtomicU64,
    /// CRC failures found by WAL scrubs (counter; each one is a damaged
    /// record or checkpoint a scrub pass reported).
    pub wal_scrub_errors: AtomicU64,
    /// Snapshot checkpoints taken.
    pub checkpoints: AtomicU64,
    /// WAL segments currently retained on disk (gauge).
    pub wal_segments: AtomicU64,
    /// Total bytes across retained WAL segments (gauge).
    pub wal_bytes: AtomicU64,
    /// Size of the newest checkpoint file in bytes (gauge).
    pub checkpoint_bytes: AtomicU64,
    /// Records the slowest connected standby still trails the primary
    /// by (gauge; 0 with no standby or when fully caught up).
    pub repl_lag_records: AtomicU64,
    /// Standby replicas currently connected to this primary (gauge).
    pub standby_connected: AtomicU64,
    /// Replication records streamed to standbys (counter).
    pub repl_records_sent: AtomicU64,
    /// Standby-to-primary promotions this process performed (counter).
    pub promotions: AtomicU64,
    /// Standby state-fingerprint mismatches detected (counter); each one
    /// fenced a divergent replica instead of ever promoting it.
    pub divergences: AtomicU64,
    /// Fenced gauge: 1 once this node saw a higher term (or diverged)
    /// and refuses mutations, 0 otherwise.
    pub fenced: AtomicU64,
    /// Reader threads that died to a panic (connections lost alone).
    pub reader_panics: AtomicU64,
    /// Ticker panics caught by the supervisor.
    pub ticker_panics: AtomicU64,
    /// Degraded-mode gauge: 1 after a ticker panic (mutations refused,
    /// reads still served), 0 in normal operation.
    pub degraded: AtomicU64,
    /// Shards currently Down (gauge, router-wide; lives on shard 0's
    /// metrics like the other transport-level counters).
    pub shards_down: AtomicU64,
    /// Shard tickers restarted in place by the supervisor (counter).
    pub shard_restarts: AtomicU64,
    /// Fleet epochs that completed without every shard reporting — the
    /// merged report carried `partial: true` (counter).
    pub partial_epochs: AtomicU64,
    /// Coordination rounds skipped because fewer than quorum shards
    /// reported: allotments were frozen instead (counter).
    pub quorum_freezes: AtomicU64,
    /// Wall-clock latency of each epoch's pump.
    pub epoch_latency: LatencyHistogram,
}

impl ServeMetrics {
    /// Creates zeroed counters.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    pub fn bump_by(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises `queue_depth_max` to at least `depth`.
    pub fn observe_depth(&self, depth: u64) {
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        ServeMetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            epochs: self.epochs.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_errors: self.wal_errors.load(Ordering::Relaxed),
            wal_scrub_errors: self.wal_scrub_errors.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            wal_segments: self.wal_segments.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            repl_lag_records: self.repl_lag_records.load(Ordering::Relaxed),
            standby_connected: self.standby_connected.load(Ordering::Relaxed),
            repl_records_sent: self.repl_records_sent.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            divergences: self.divergences.load(Ordering::Relaxed),
            fenced: self.fenced.load(Ordering::Relaxed),
            reader_panics: self.reader_panics.load(Ordering::Relaxed),
            ticker_panics: self.ticker_panics.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            shards_down: self.shards_down.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            partial_epochs: self.partial_epochs.load(Ordering::Relaxed),
            quorum_freezes: self.quorum_freezes.load(Ordering::Relaxed),
            epoch_latency: self.epoch_latency.snapshot(),
        }
    }
}

/// A plain copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeMetricsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Requests admitted to the bus.
    pub accepted: u64,
    /// Requests bounced by quota.
    pub rejected_overload: u64,
    /// Requests expired in-queue.
    pub rejected_deadline: u64,
    /// Requests bounced during drain.
    pub rejected_shutdown: u64,
    /// Unparseable or invalid lines.
    pub protocol_errors: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Queue depth at the last drain (gauge).
    pub queue_depth: u64,
    /// Queue depth high-water mark.
    pub queue_depth_max: u64,
    /// Durable WAL appends.
    pub wal_appends: u64,
    /// Failed WAL appends/checkpoints.
    pub wal_errors: u64,
    /// CRC failures found by WAL scrubs.
    pub wal_scrub_errors: u64,
    /// Snapshot checkpoints taken.
    pub checkpoints: u64,
    /// WAL segments retained on disk.
    pub wal_segments: u64,
    /// Bytes across retained WAL segments.
    pub wal_bytes: u64,
    /// Newest checkpoint file size in bytes.
    pub checkpoint_bytes: u64,
    /// Records the slowest connected standby trails by.
    pub repl_lag_records: u64,
    /// Connected standby replicas.
    pub standby_connected: u64,
    /// Replication records streamed to standbys.
    pub repl_records_sent: u64,
    /// Standby-to-primary promotions performed.
    pub promotions: u64,
    /// Divergent standbys detected (and fenced).
    pub divergences: u64,
    /// Fenced gauge (1 = deposed/diverged, mutations refused).
    pub fenced: u64,
    /// Reader threads lost to panics.
    pub reader_panics: u64,
    /// Ticker panics caught by the supervisor.
    pub ticker_panics: u64,
    /// Degraded-mode gauge (1 = mutations refused).
    pub degraded: u64,
    /// Shards currently Down (router-wide gauge).
    pub shards_down: u64,
    /// Shard tickers restarted in place by the supervisor.
    pub shard_restarts: u64,
    /// Fleet epochs whose merged report was `partial: true`.
    pub partial_epochs: u64,
    /// Coordination rounds frozen for lack of quorum.
    pub quorum_freezes: u64,
    /// Epoch pump latency distribution.
    pub epoch_latency: HistogramSnapshot,
}

impl ServeMetricsSnapshot {
    /// Stable JSON form with fixed field order.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("connections", Value::from_u64(self.connections)),
            ("accepted", Value::from_u64(self.accepted)),
            ("rejected_overload", Value::from_u64(self.rejected_overload)),
            ("rejected_deadline", Value::from_u64(self.rejected_deadline)),
            ("rejected_shutdown", Value::from_u64(self.rejected_shutdown)),
            ("protocol_errors", Value::from_u64(self.protocol_errors)),
            ("epochs", Value::from_u64(self.epochs)),
            ("queue_depth", Value::from_u64(self.queue_depth)),
            ("queue_depth_max", Value::from_u64(self.queue_depth_max)),
            ("wal_appends", Value::from_u64(self.wal_appends)),
            ("wal_errors", Value::from_u64(self.wal_errors)),
            ("wal_scrub_errors", Value::from_u64(self.wal_scrub_errors)),
            ("checkpoints", Value::from_u64(self.checkpoints)),
            ("wal_segments", Value::from_u64(self.wal_segments)),
            ("wal_bytes", Value::from_u64(self.wal_bytes)),
            ("checkpoint_bytes", Value::from_u64(self.checkpoint_bytes)),
            ("repl_lag_records", Value::from_u64(self.repl_lag_records)),
            ("standby_connected", Value::from_u64(self.standby_connected)),
            ("repl_records_sent", Value::from_u64(self.repl_records_sent)),
            ("promotions", Value::from_u64(self.promotions)),
            ("divergences", Value::from_u64(self.divergences)),
            ("fenced", Value::from_u64(self.fenced)),
            ("reader_panics", Value::from_u64(self.reader_panics)),
            ("ticker_panics", Value::from_u64(self.ticker_panics)),
            ("degraded", Value::from_u64(self.degraded)),
            ("shards_down", Value::from_u64(self.shards_down)),
            ("shard_restarts", Value::from_u64(self.shard_restarts)),
            ("partial_epochs", Value::from_u64(self.partial_epochs)),
            ("quorum_freezes", Value::from_u64(self.quorum_freezes)),
            ("epoch_latency", self.epoch_latency.to_json_value()),
        ])
    }

    /// Stable `name value` text form for scrape endpoints.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in [
            ("refserve_connections", self.connections),
            ("refserve_accepted", self.accepted),
            ("refserve_rejected_overload", self.rejected_overload),
            ("refserve_rejected_deadline", self.rejected_deadline),
            ("refserve_rejected_shutdown", self.rejected_shutdown),
            ("refserve_protocol_errors", self.protocol_errors),
            ("refserve_epochs", self.epochs),
            ("refserve_queue_depth", self.queue_depth),
            ("refserve_queue_depth_max", self.queue_depth_max),
            ("refserve_wal_appends", self.wal_appends),
            ("refserve_wal_errors", self.wal_errors),
            ("refserve_wal_scrub_errors", self.wal_scrub_errors),
            ("refserve_checkpoints", self.checkpoints),
            ("refserve_wal_segments", self.wal_segments),
            ("refserve_wal_bytes", self.wal_bytes),
            ("refserve_checkpoint_bytes", self.checkpoint_bytes),
            ("refserve_repl_lag_records", self.repl_lag_records),
            ("refserve_standby_connected", self.standby_connected),
            ("refserve_repl_records_sent", self.repl_records_sent),
            ("refserve_promotions", self.promotions),
            ("refserve_divergences", self.divergences),
            ("refserve_fenced", self.fenced),
            ("refserve_reader_panics", self.reader_panics),
            ("refserve_ticker_panics", self.ticker_panics),
            ("refserve_degraded", self.degraded),
            ("refserve_shards_down", self.shards_down),
            ("refserve_shard_restarts", self.shard_restarts),
            ("refserve_partial_epochs", self.partial_epochs),
            ("refserve_quorum_freezes", self.quorum_freezes),
            ("refserve_epoch_latency_count", self.epoch_latency.count),
            ("refserve_epoch_latency_sum_us", self.epoch_latency.sum_us),
            (
                "refserve_epoch_latency_p50_us",
                self.epoch_latency.quantile_us(0.50),
            ),
            (
                "refserve_epoch_latency_p99_us",
                self.epoch_latency.quantile_us(0.99),
            ),
        ] {
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_microsecond_range() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(4), 2);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            HISTOGRAM_BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_us(100); // bucket 6: [64, 128)
        }
        h.record_us(1_000_000); // bucket 19
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.quantile_us(0.50), 128);
        assert_eq!(snap.quantile_us(0.99), 128);
        assert_eq!(snap.quantile_us(1.0), 1 << 20);
        assert!(snap.mean_us() > 100.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.quantile_us(0.5), 0);
        assert_eq!(snap.mean_us(), 0.0);
    }

    #[test]
    fn snapshot_json_and_text_have_fixed_shapes() {
        let m = ServeMetrics::new();
        ServeMetrics::bump(&m.accepted);
        ServeMetrics::bump(&m.accepted);
        ServeMetrics::bump(&m.rejected_overload);
        m.observe_depth(17);
        m.epoch_latency.record_us(50);
        let snap = m.snapshot();
        let json = snap.to_json_value().encode();
        assert!(
            json.starts_with("{\"connections\":0,\"accepted\":2,"),
            "{json}"
        );
        assert!(json.contains("\"queue_depth_max\":17"), "{json}");
        assert!(json.contains("\"epoch_latency\":{\"count\":1,"), "{json}");
        let text = snap.to_text();
        assert!(text.contains("refserve_accepted 2\n"), "{text}");
        assert!(text.contains("refserve_wal_appends 0\n"), "{text}");
        assert!(text.contains("refserve_degraded 0\n"), "{text}");
        assert!(text.contains("refserve_wal_segments 0\n"), "{text}");
        assert!(text.contains("refserve_standby_connected 0\n"), "{text}");
        assert!(text.contains("refserve_divergences 0\n"), "{text}");
        assert!(text.contains("refserve_queue_depth 0\n"), "{text}");
        assert!(text.contains("refserve_shards_down 0\n"), "{text}");
        assert!(text.contains("refserve_shard_restarts 0\n"), "{text}");
        assert!(text.contains("refserve_partial_epochs 0\n"), "{text}");
        assert!(text.contains("refserve_quorum_freezes 0\n"), "{text}");
        assert!(
            json.contains("\"quorum_freezes\":0,\"epoch_latency\":"),
            "{json}"
        );
        assert!(text.contains("refserve_wal_scrub_errors 0\n"), "{text}");
        assert_eq!(text.lines().count(), 33);
    }
}
