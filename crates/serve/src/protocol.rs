//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, strictly in order — a
//! connection is a closed loop with a single outstanding request. The
//! grammar (DESIGN.md §8 has the full spec):
//!
//! ```text
//! request  = { "op": op, ...op fields..., "deadline_ms"?: number } "\n"
//! op       = "join" | "leave" | "demand" | "observe" | "tick"
//!          | "reallot" | "query" | "snapshot" | "metrics" | "journal"
//!          | "scrub" | "ping" | "promote" | "shutdown"
//! response = { "ok": true,  ...result fields... } "\n"
//!          | { "ok": false, "error": code, "detail"?: string,
//!              "retry_after_ms"?: number, "leader"?: string } "\n"
//! code     = "protocol" | "overloaded" | "deadline" | "market"
//!          | "shutting_down" | "timeout" | "journal_overflow"
//!          | "journal_truncated" | "wal" | "degraded" | "not_primary"
//!          | "fenced" | "repl" | "internal" | "shard_unavailable"
//! ```
//!
//! `ping` is answered directly on the reader thread from shared atomics
//! (it must work even when the epoch loop is wedged) and returns
//! `{role, term, epoch, wal_seq, uptime_ms, ...}` for health checks and
//! leader discovery; an optional `"agent"` argument asks the sharded
//! router which shard owns that agent. `not_primary` rejections carry a
//! `"leader"` hint (the current leader's client address, when known) so
//! clients can fail over without walking their whole seed list, plus an
//! optional `"shard"` tag so a redirect from one shard's standby does
//! not poison the client's hints for seeds serving other shards.
//!
//! Every op maps to an admission [`Class`] so backpressure can be applied
//! per class: a flood of cheap `query`s cannot crowd out `observe`s, and
//! vice versa.

use ref_core::utility::CobbDouglas;
use ref_market::{AgentId, MarketEvent, ObservationSource};

use crate::json::Value;

/// Admission class of a request, used for per-class queue quotas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Membership and epoch control: `join`, `leave`, `demand`, `tick`,
    /// `shutdown`.
    Control = 0,
    /// Telemetry ingest: `observe`.
    Observe = 1,
    /// Read-only inspection: `query`, `snapshot`, `metrics`, `journal`,
    /// `scrub`.
    Query = 2,
}

/// Number of admission classes.
pub const NUM_CLASSES: usize = 3;

/// A parsed, validated request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit an agent.
    Join {
        /// The joining agent's id.
        agent: AgentId,
        /// Observation source for the agent.
        source: ObservationSource,
    },
    /// Remove an agent.
    Leave {
        /// The departing agent's id.
        agent: AgentId,
    },
    /// Reset an agent's estimator (optionally swapping ground truth).
    Demand {
        /// The agent whose demand changed.
        agent: AgentId,
        /// Replacement hidden truth for ground-truth agents.
        truth: Option<CobbDouglas>,
    },
    /// Report an external `(allocation, performance)` measurement.
    Observe {
        /// The measured agent.
        agent: AgentId,
        /// Resource quantities of the measurement.
        allocation: Vec<f64>,
        /// Measured performance.
        performance: f64,
    },
    /// Run one epoch now.
    Tick,
    /// Replace the market's per-resource capacity (the sharded router's
    /// cross-shard coordinator issues these; operators may too).
    Reallot {
        /// New per-resource capacities.
        capacity: Vec<f64>,
    },
    /// Inspect the market (or one agent).
    Query {
        /// Restrict the answer to this agent.
        agent: Option<AgentId>,
    },
    /// Fetch the full market snapshot (text wire format).
    Snapshot,
    /// Fetch market + server metrics.
    Metrics {
        /// `true` for the Prometheus-style text form.
        text: bool,
    },
    /// Fetch the accepted-event journal.
    Journal,
    /// Verify every CRC in every retained WAL segment and checkpoint
    /// (read-only; reports findings, repairs nothing).
    Scrub,
    /// Health-check: role, term, epoch, WAL sequence, uptime. Answered
    /// on the reader thread without touching the epoch loop.
    Ping {
        /// When present, the reply reports which shard owns this agent.
        agent: Option<AgentId>,
    },
    /// Promote this server from standby to primary (bumps the term).
    Promote,
    /// Drain and stop the server; the reply carries the final snapshot.
    Shutdown,
}

impl Request {
    /// The request's admission class.
    pub fn class(&self) -> Class {
        match self {
            Request::Join { .. }
            | Request::Leave { .. }
            | Request::Demand { .. }
            | Request::Tick
            | Request::Reallot { .. }
            | Request::Promote
            | Request::Shutdown => Class::Control,
            Request::Observe { .. } => Class::Observe,
            Request::Query { .. }
            | Request::Snapshot
            | Request::Metrics { .. }
            | Request::Journal
            | Request::Scrub
            | Request::Ping { .. } => Class::Query,
        }
    }

    /// The market event this request submits, if it is event-bearing.
    pub fn to_event(&self) -> Option<MarketEvent> {
        match self {
            Request::Join { agent, source } => Some(MarketEvent::AgentJoined {
                id: *agent,
                source: source.clone(),
            }),
            Request::Leave { agent } => Some(MarketEvent::AgentLeft { id: *agent }),
            Request::Demand { agent, truth } => Some(MarketEvent::DemandChanged {
                id: *agent,
                new_truth: truth.clone(),
            }),
            Request::Observe {
                agent,
                allocation,
                performance,
            } => Some(MarketEvent::ObservationReported {
                id: *agent,
                allocation: allocation.clone(),
                performance: *performance,
            }),
            Request::Tick => Some(MarketEvent::EpochTick),
            Request::Reallot { capacity } => Some(MarketEvent::CapacityRealloted {
                capacity: capacity.clone(),
            }),
            _ => None,
        }
    }
}

/// A request plus its transport envelope (deadline).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The request itself.
    pub request: Request,
    /// Maximum queueing delay the client tolerates, in milliseconds;
    /// `None` means unbounded.
    pub deadline_ms: Option<u64>,
}

/// Parses one protocol line into an envelope.
///
/// # Errors
///
/// Returns a human-readable description of the first violation; callers
/// wrap it in an `"error":"protocol"` response.
pub fn parse_request(line: &str) -> Result<Envelope, String> {
    let value = Value::parse(line).map_err(|e| format!("bad json: {e}"))?;
    if !matches!(value, Value::Obj(_)) {
        return Err("request must be a json object".to_string());
    }
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field \"op\"".to_string())?;
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| "\"deadline_ms\" must be a non-negative integer".to_string())?,
        ),
    };
    let agent = |required: bool| -> Result<Option<AgentId>, String> {
        match value.get("agent") {
            Some(v) => Ok(Some(v.as_u64().ok_or_else(|| {
                "\"agent\" must be a non-negative integer below 2^53".to_string()
            })?)),
            None if required => Err("missing field \"agent\"".to_string()),
            None => Ok(None),
        }
    };
    let request = match op {
        "join" => {
            let source = value
                .get("source")
                .ok_or_else(|| "join needs a \"source\" object".to_string())?;
            Request::Join {
                agent: agent(true)?.unwrap(),
                source: parse_source(source)?,
            }
        }
        "leave" => Request::Leave {
            agent: agent(true)?.unwrap(),
        },
        "demand" => {
            let truth = match value.get("truth") {
                None | Some(Value::Null) => None,
                Some(v) => Some(parse_cobb_douglas(v)?),
            };
            Request::Demand {
                agent: agent(true)?.unwrap(),
                truth,
            }
        }
        "observe" => {
            let allocation = f64_array(
                value
                    .get("allocation")
                    .ok_or_else(|| "observe needs an \"allocation\" array".to_string())?,
            )?;
            let performance = value
                .get("performance")
                .and_then(Value::as_f64)
                .ok_or_else(|| "observe needs a numeric \"performance\"".to_string())?;
            Request::Observe {
                agent: agent(true)?.unwrap(),
                allocation,
                performance,
            }
        }
        "tick" => Request::Tick,
        "reallot" => Request::Reallot {
            capacity: f64_array(
                value
                    .get("capacity")
                    .ok_or_else(|| "reallot needs a \"capacity\" array".to_string())?,
            )?,
        },
        "query" => Request::Query {
            agent: agent(false)?,
        },
        "snapshot" => Request::Snapshot,
        "metrics" => Request::Metrics {
            text: value.get("format").and_then(Value::as_str) == Some("text"),
        },
        "journal" => Request::Journal,
        "scrub" => Request::Scrub,
        "ping" => Request::Ping {
            agent: agent(false)?,
        },
        "promote" => Request::Promote,
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown op {other:?}")),
    };
    Ok(Envelope {
        request,
        deadline_ms,
    })
}

fn f64_array(v: &Value) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or_else(|| "expected an array of numbers".to_string())?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| "expected an array of numbers".to_string())
        })
        .collect()
}

fn parse_cobb_douglas(v: &Value) -> Result<CobbDouglas, String> {
    let scale = v.get("scale").and_then(Value::as_f64).unwrap_or(1.0);
    let elasticities = f64_array(
        v.get("elasticities")
            .ok_or_else(|| "utility needs an \"elasticities\" array".to_string())?,
    )?;
    CobbDouglas::new(scale, elasticities).map_err(|e| e.to_string())
}

fn parse_source(v: &Value) -> Result<ObservationSource, String> {
    match v.get("kind").and_then(Value::as_str) {
        Some("truth") => Ok(ObservationSource::GroundTruth(parse_cobb_douglas(v)?)),
        Some("sim") => Ok(ObservationSource::Simulated {
            benchmark: v
                .get("benchmark")
                .and_then(Value::as_str)
                .ok_or_else(|| "sim source needs a \"benchmark\" string".to_string())?
                .to_string(),
        }),
        Some("external") => Ok(ObservationSource::External),
        _ => Err("source \"kind\" must be truth|sim|external".to_string()),
    }
}

/// Serializes a market event to its journal JSON form (the same shapes
/// the request grammar uses, so a journal line is replayable by hand).
pub fn event_to_value(event: &MarketEvent) -> Value {
    match event {
        MarketEvent::AgentJoined { id, source } => Value::obj(vec![
            ("op", Value::str("join")),
            ("agent", Value::from_u64(*id)),
            ("source", source_to_value(source)),
        ]),
        MarketEvent::AgentLeft { id } => Value::obj(vec![
            ("op", Value::str("leave")),
            ("agent", Value::from_u64(*id)),
        ]),
        MarketEvent::DemandChanged { id, new_truth } => Value::obj(vec![
            ("op", Value::str("demand")),
            ("agent", Value::from_u64(*id)),
            (
                "truth",
                new_truth
                    .as_ref()
                    .map_or(Value::Null, cobb_douglas_to_value),
            ),
        ]),
        MarketEvent::ObservationReported {
            id,
            allocation,
            performance,
        } => Value::obj(vec![
            ("op", Value::str("observe")),
            ("agent", Value::from_u64(*id)),
            ("allocation", Value::num_array(allocation)),
            ("performance", Value::Num(*performance)),
        ]),
        MarketEvent::CapacityRealloted { capacity } => Value::obj(vec![
            ("op", Value::str("reallot")),
            ("capacity", Value::num_array(capacity)),
        ]),
        MarketEvent::EpochTick => Value::obj(vec![("op", Value::str("tick"))]),
        // MarketEvent is non_exhaustive upstream; unknown variants cannot
        // be journaled faithfully, so refuse loudly rather than silently.
        #[allow(unreachable_patterns)]
        other => unreachable!("unjournalable market event {other:?}"),
    }
}

/// Parses a journal JSON value back into a market event.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn value_to_event(v: &Value) -> Result<MarketEvent, String> {
    let envelope = parse_request(&v.encode())?;
    envelope
        .request
        .to_event()
        .ok_or_else(|| "journal entry is not an event".to_string())
}

fn cobb_douglas_to_value(u: &CobbDouglas) -> Value {
    Value::obj(vec![
        ("scale", Value::Num(u.scale())),
        ("elasticities", Value::num_array(u.elasticities())),
    ])
}

fn source_to_value(source: &ObservationSource) -> Value {
    match source {
        ObservationSource::GroundTruth(u) => Value::obj(vec![
            ("kind", Value::str("truth")),
            ("scale", Value::Num(u.scale())),
            ("elasticities", Value::num_array(u.elasticities())),
        ]),
        ObservationSource::Simulated { benchmark } => Value::obj(vec![
            ("kind", Value::str("sim")),
            ("benchmark", Value::str(benchmark.clone())),
        ]),
        ObservationSource::External => Value::obj(vec![("kind", Value::str("external"))]),
    }
}

/// Builds the `{"ok":true,...}` success response.
pub fn ok_response(fields: Vec<(&str, Value)>) -> Value {
    let mut pairs = vec![("ok", Value::Bool(true))];
    pairs.extend(fields);
    Value::obj(pairs)
}

/// Builds the `not_primary` rejection a standby sends for mutations,
/// carrying the current leader's client address when known so clients
/// can fail over directly instead of walking their seed list. `shard`
/// scopes the redirect when this node serves one shard of a sharded
/// deployment: clients then update only that shard's leader hint.
pub fn not_primary_response(leader: Option<&str>, shard: Option<u64>) -> Value {
    let mut pairs = vec![
        ("ok", Value::Bool(false)),
        ("error", Value::str("not_primary")),
        (
            "detail",
            Value::str("this node is a standby; send mutations to the primary"),
        ),
    ];
    if let Some(addr) = leader {
        pairs.push(("leader", Value::str(addr)));
    }
    if let Some(shard) = shard {
        pairs.push(("shard", Value::from_u64(shard)));
    }
    Value::obj(pairs)
}

/// Builds the `shard_unavailable` rejection the sharded router answers
/// with when a request targets a shard whose ticker is Down (panicked,
/// restarting, or repeatedly missing its tick budget). Fail-fast by
/// design: the client gets the rejection — and a `retry_after_ms`
/// backoff hint — immediately, instead of burning the reply timeout
/// waiting on a ticker that cannot answer. The `shard` tag names the
/// unavailable shard so fleet-wide aggregates stay attributable.
pub fn shard_unavailable_response(shard: u64, retry_after_ms: u64) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(false)),
        ("error", Value::str("shard_unavailable")),
        ("shard", Value::from_u64(shard)),
        (
            "detail",
            Value::str("the owning shard is down; retry after backoff"),
        ),
        ("retry_after_ms", Value::from_u64(retry_after_ms)),
    ])
}

/// Builds the `{"ok":false,"error":code,...}` failure response.
pub fn error_response(code: &str, detail: Option<&str>, retry_after_ms: Option<u64>) -> Value {
    let mut pairs = vec![("ok", Value::Bool(false)), ("error", Value::str(code))];
    if let Some(d) = detail {
        pairs.push(("detail", Value::str(d)));
    }
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms", Value::from_u64(ms)));
    }
    Value::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_with_classes() {
        let cases = [
            (
                r#"{"op":"join","agent":1,"source":{"kind":"truth","elasticities":[0.6,0.4]}}"#,
                Class::Control,
            ),
            (r#"{"op":"leave","agent":2}"#, Class::Control),
            (
                r#"{"op":"observe","agent":1,"allocation":[1,2],"performance":1.5}"#,
                Class::Observe,
            ),
            (r#"{"op":"tick"}"#, Class::Control),
            (r#"{"op":"reallot","capacity":[8.0,4.0]}"#, Class::Control),
            (r#"{"op":"query"}"#, Class::Query),
            (r#"{"op":"query","agent":3}"#, Class::Query),
            (r#"{"op":"snapshot"}"#, Class::Query),
            (r#"{"op":"metrics","format":"text"}"#, Class::Query),
            (r#"{"op":"journal"}"#, Class::Query),
            (r#"{"op":"scrub"}"#, Class::Query),
            (r#"{"op":"ping"}"#, Class::Query),
            (r#"{"op":"ping","agent":9}"#, Class::Query),
            (r#"{"op":"promote"}"#, Class::Control),
            (r#"{"op":"shutdown"}"#, Class::Control),
        ];
        for (line, class) in cases {
            let env = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(env.request.class(), class, "{line}");
        }
    }

    #[test]
    fn deadlines_parse_and_default_to_none() {
        let env = parse_request(r#"{"op":"tick","deadline_ms":250}"#).unwrap();
        assert_eq!(env.deadline_ms, Some(250));
        assert_eq!(parse_request(r#"{"op":"tick"}"#).unwrap().deadline_ms, None);
        assert!(parse_request(r#"{"op":"tick","deadline_ms":-1}"#).is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            r#"{"op":"warp"}"#,
            r#"{"op":"join","agent":1}"#,
            r#"{"op":"join","agent":1,"source":{"kind":"nope"}}"#,
            r#"{"op":"join","agent":-1,"source":{"kind":"external"}}"#,
            r#"{"op":"leave"}"#,
            r#"{"op":"observe","agent":1,"allocation":[1,"x"],"performance":1}"#,
            r#"{"op":"observe","agent":1,"allocation":[1,2]}"#,
            r#"{"op":"reallot"}"#,
            r#"{"op":"reallot","capacity":[1,"x"]}"#,
            r#"{"op":"join","agent":1,"source":{"kind":"truth","elasticities":[2.0,-1.0]}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn events_round_trip_through_journal_values() {
        let events = vec![
            MarketEvent::AgentJoined {
                id: 1,
                source: ObservationSource::GroundTruth(
                    CobbDouglas::new(1.5, vec![0.6, 0.4]).unwrap(),
                ),
            },
            MarketEvent::AgentJoined {
                id: 2,
                source: ObservationSource::Simulated {
                    benchmark: "histogram".to_string(),
                },
            },
            MarketEvent::AgentJoined {
                id: 3,
                source: ObservationSource::External,
            },
            MarketEvent::DemandChanged {
                id: 1,
                new_truth: Some(CobbDouglas::new(1.0, vec![0.3, 0.7]).unwrap()),
            },
            MarketEvent::DemandChanged {
                id: 3,
                new_truth: None,
            },
            MarketEvent::ObservationReported {
                id: 3,
                allocation: vec![1.0 / 3.0, 2.5],
                performance: 1.25,
            },
            MarketEvent::AgentLeft { id: 2 },
            MarketEvent::CapacityRealloted {
                capacity: vec![12.5, 6.0],
            },
            MarketEvent::EpochTick,
        ];
        for event in events {
            let value = event_to_value(&event);
            let back = value_to_event(&value).unwrap_or_else(|e| panic!("{value}: {e}"));
            assert_eq!(back, event, "{value}");
        }
    }

    #[test]
    fn responses_have_fixed_shape() {
        assert_eq!(
            ok_response(vec![("epoch", Value::from_u64(3))]).encode(),
            "{\"ok\":true,\"epoch\":3}"
        );
        assert_eq!(
            error_response("overloaded", None, Some(5)).encode(),
            "{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":5}"
        );
        assert_eq!(
            error_response("market", Some("unknown agent 7"), None).encode(),
            "{\"ok\":false,\"error\":\"market\",\"detail\":\"unknown agent 7\"}"
        );
        assert_eq!(
            not_primary_response(Some("127.0.0.1:9"), Some(2)).encode(),
            "{\"ok\":false,\"error\":\"not_primary\",\
             \"detail\":\"this node is a standby; send mutations to the primary\",\
             \"leader\":\"127.0.0.1:9\",\"shard\":2}"
        );
        assert_eq!(
            shard_unavailable_response(3, 25).encode(),
            "{\"ok\":false,\"error\":\"shard_unavailable\",\"shard\":3,\
             \"detail\":\"the owning shard is down; retry after backoff\",\
             \"retry_after_ms\":25}"
        );
    }
}
