//! Primary/standby replication: WAL shipping, promotion, fencing, and
//! divergence detection (DESIGN.md §10).
//!
//! A primary streams its durable history — an optional bootstrap
//! checkpoint followed by every WAL record — over a dedicated TCP
//! listener to any number of standbys. Frames reuse the WAL's record
//! envelope (`[len:u32][crc32:u32][payload]`, [`wal::frame`]) with a
//! one-line JSON payload per message, so the stream inherits the log's
//! corruption detection: a truncated or bit-flipped frame is caught by
//! the length or CRC check and never half-applied.
//!
//! ```text
//!   standby ──hello{term,have_seq}──▶ primary
//!   standby ◀──meta{term,client_addr}── primary      (or refuse{reason})
//!   standby ◀──snap{seq,snapshot}── primary           (only when behind
//!                                                      the retained log)
//!   standby ◀──rec{seq,event}──── primary             (catch-up + live)
//!   standby ◀──hb{term,seq}────── primary             (heartbeat)
//!   standby ──ack{have,epoch?,fp?}─▶ primary
//!   standby ◀──diverged{epoch}─── primary             (fingerprint split)
//! ```
//!
//! The standby applies every record through the same single-threaded
//! service core as the primary (its own append-before-apply WAL
//! included), so a caught-up standby is *bit-identical* — the same
//! snapshot text, byte for byte. To keep that claim honest rather than
//! assumed, each epoch's ack carries a 64-bit fingerprint of the
//! standby's full serialized state; the primary compares it against its
//! own fingerprint for that epoch and, on any mismatch, counts a
//! divergence, tells the replica, and drops it. A diverged replica
//! fences itself — it will refuse promotion — because serving *wrong*
//! allocations is strictly worse than serving none.
//!
//! Roles and terms: a node is `primary`, `standby`, or `fenced`. Terms
//! are monotone; promotion (explicit `promote` op, or automatic once the
//! primary's heartbeat lapses past [`ReplConfig::election_timeout`])
//! bumps the term, and any node that sees a higher term than its own in
//! a replication `hello` fences itself — a deposed primary refuses
//! mutations from that moment on, closing the split-brain window to the
//! election timeout.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ref_market::MarketEvent;

use crate::clock::Clock;
use crate::json::Value;
use crate::metrics::ServeMetrics;
use crate::protocol::{event_to_value, value_to_event, Class};
use crate::server::{Item, Shared};
use crate::wal::{self, crc32, MAX_FRAME_BYTES, RECORD_HEADER_BYTES};

/// How a node currently participates in the replicated pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts mutations, streams its WAL to standbys.
    Primary = 0,
    /// Applies the primary's stream; serves reads; refuses mutations.
    Standby = 1,
    /// Deposed (saw a higher term) or diverged: refuses mutations *and*
    /// promotion. Terminal until the process is restarted.
    Fenced = 2,
}

impl Role {
    /// Wire/JSON name of the role.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Standby => "standby",
            Role::Fenced => "fenced",
        }
    }

    fn from_u8(x: u8) -> Role {
        match x {
            0 => Role::Primary,
            1 => Role::Standby,
            _ => Role::Fenced,
        }
    }
}

/// Replication knobs for one node of a primary/standby pair.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Bind address of the replication listener (use port 0 for an
    /// ephemeral port; [`crate::Server::repl_addr`] reports the bound
    /// address).
    pub listen: String,
    /// When set, boot as a standby following the primary whose
    /// *replication* listener is at this address; when `None`, boot as
    /// the primary.
    pub standby_of: Option<String>,
    /// Primary heartbeat cadence on the replication stream.
    pub heartbeat_interval: Duration,
    /// A standby that hears nothing (no records, no heartbeats) for this
    /// long considers the primary dead.
    pub election_timeout: Duration,
    /// Automatically promote once the election timeout lapses. Disable
    /// for operator-driven failover via the `promote` op.
    pub auto_promote: bool,
    /// Synchronous replication: the primary withholds each mutation's
    /// reply until a connected standby acknowledges *applying* it, so an
    /// acked event can never be lost by failing over. With no standby
    /// connected the primary degrades to async rather than stalling.
    pub sync: bool,
    /// How long a sync-mode reply may wait for the standby ack before
    /// the client gets a `repl` error (the event *is* applied locally).
    pub ack_timeout: Duration,
}

impl ReplConfig {
    fn new(listen: impl Into<String>, standby_of: Option<String>) -> ReplConfig {
        ReplConfig {
            listen: listen.into(),
            standby_of,
            heartbeat_interval: Duration::from_millis(25),
            election_timeout: Duration::from_millis(300),
            auto_promote: true,
            sync: false,
            ack_timeout: Duration::from_secs(1),
        }
    }

    /// A primary configuration listening for standbys on `listen`.
    pub fn primary(listen: impl Into<String>) -> ReplConfig {
        ReplConfig::new(listen, None)
    }

    /// A standby configuration following the primary's replication
    /// listener at `of`.
    pub fn standby(listen: impl Into<String>, of: impl Into<String>) -> ReplConfig {
        ReplConfig::new(listen, Some(of.into()))
    }

    /// Sets the heartbeat cadence.
    #[must_use]
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> ReplConfig {
        self.heartbeat_interval = interval;
        self
    }

    /// Sets the election timeout.
    #[must_use]
    pub fn with_election_timeout(mut self, timeout: Duration) -> ReplConfig {
        self.election_timeout = timeout;
        self
    }

    /// Enables or disables automatic promotion.
    #[must_use]
    pub fn with_auto_promote(mut self, auto: bool) -> ReplConfig {
        self.auto_promote = auto;
        self
    }

    /// Enables or disables synchronous replication.
    #[must_use]
    pub fn with_sync(mut self, sync: bool) -> ReplConfig {
        self.sync = sync;
        self
    }
}

// ---------------------------------------------------------------------
// Frame codec: the WAL record envelope on a socket.
// ---------------------------------------------------------------------

/// Frames one replication payload exactly like a WAL record:
/// `[len:u32][crc32:u32][payload]`, little-endian.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    wal::frame(payload)
}

/// The outcome of [`decode_frame`] on a byte prefix of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecode {
    /// One whole frame: its payload and the bytes it consumed.
    Complete {
        /// The checksummed payload.
        payload: Vec<u8>,
        /// Bytes of `buf` this frame occupied (header + payload).
        consumed: usize,
    },
    /// Not enough bytes yet for a verdict; read more.
    Incomplete,
    /// The prefix can never become a valid frame (oversized length or
    /// checksum mismatch); the connection must be dropped.
    Corrupt(String),
}

/// Decodes the first frame from `buf`, if one is complete.
///
/// A frame is only ever surfaced whole and checksum-verified: arbitrary
/// truncation yields [`FrameDecode::Incomplete`], and a flipped bit in
/// the header or payload yields [`FrameDecode::Corrupt`] (up to CRC32
/// collision odds) — a partial or damaged record is never applied.
pub fn decode_frame(buf: &[u8]) -> FrameDecode {
    if buf.len() < RECORD_HEADER_BYTES {
        return FrameDecode::Incomplete;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return FrameDecode::Corrupt(format!("frame length {len} exceeds {MAX_FRAME_BYTES}"));
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let body = &buf[RECORD_HEADER_BYTES..];
    if (body.len() as u64) < u64::from(len) {
        return FrameDecode::Incomplete;
    }
    let payload = &body[..len as usize];
    if crc32(payload) != crc {
        return FrameDecode::Corrupt("frame payload fails its checksum".to_string());
    }
    FrameDecode::Complete {
        payload: payload.to_vec(),
        consumed: RECORD_HEADER_BYTES + len as usize,
    }
}

/// Builds one framed replication message: a JSON object whose `t` field
/// is the message kind, with `fields` appended, wrapped in the WAL
/// record envelope. Public so the deterministic simulator (`ref-dst`)
/// can speak the exact wire protocol in-process.
pub fn message(t: &str, fields: Vec<(&str, Value)>) -> Vec<u8> {
    let mut pairs = vec![("t", Value::str(t))];
    pairs.extend(fields);
    encode_frame(Value::obj(pairs).encode().as_bytes())
}

/// Parses a decoded frame payload back into a replication message,
/// requiring the `t` kind tag. Inverse of [`message`].
pub fn parse_message(payload: &[u8]) -> Option<Value> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = Value::parse(text).ok()?;
    value.get("t")?;
    Some(value)
}

/// The `t` kind tag of a parsed replication message (empty if absent).
pub fn kind(msg: &Value) -> &str {
    msg.get("t").and_then(Value::as_str).unwrap_or("")
}

/// Incremental frame reader over a socket with a short read timeout, so
/// callers can interleave shutdown/role checks between frames.
struct FrameConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameConn {
    fn new(stream: TcpStream) -> FrameConn {
        FrameConn {
            stream,
            buf: Vec::new(),
        }
    }

    /// Reads until one whole frame is available (`Ok(Some)`), the read
    /// times out with no complete frame (`Ok(None)`), or the stream is
    /// closed/corrupt (`Err`).
    fn read_frame(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        loop {
            match decode_frame(&self.buf) {
                FrameDecode::Complete { payload, consumed } => {
                    self.buf.drain(..consumed);
                    return Ok(Some(payload));
                }
                FrameDecode::Corrupt(detail) => {
                    return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, detail));
                }
                FrameDecode::Incomplete => {}
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replication peer closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads one frame within `deadline`, tolerating timeout ticks.
    fn read_frame_deadline(&mut self, deadline: Duration) -> std::io::Result<Vec<u8>> {
        let until = Instant::now() + deadline;
        loop {
            if let Some(payload) = self.read_frame()? {
                return Ok(payload);
            }
            if Instant::now() >= until {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "replication peer sent no frame within the deadline",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shared replication state.
// ---------------------------------------------------------------------

/// A replicated record or raw frame queued for one standby connection.
enum SinkMsg {
    /// A live WAL record; `seq` lets the sender skip records the disk
    /// catch-up already covered.
    Rec { seq: u64, frame: Vec<u8> },
    /// A pre-framed control message (heartbeat, diverged notice).
    Raw(Vec<u8>),
}

/// One connected standby, from the primary's point of view.
#[derive(Debug)]
struct Sink {
    id: u64,
    tx: mpsc::SyncSender<SinkMsg>,
    acked: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
}

struct SinkHandle {
    id: u64,
    rx: mpsc::Receiver<SinkMsg>,
    tx: mpsc::SyncSender<SinkMsg>,
    acked: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
}

/// What a sync-mode wait for a standby ack concluded.
pub(crate) enum AckWait {
    /// A standby confirmed applying up to the target.
    Acked,
    /// No standby is connected; replication degrades to async.
    NoStandby,
    /// The timeout lapsed with the standby still behind.
    TimedOut,
}

/// Per-epoch fingerprints the primary keeps for divergence checks.
const FP_RING: usize = 8192;

/// How many queued records a standby connection may fall behind before
/// the primary drops it (it reconnects and catches up from disk).
const SINK_QUEUE: usize = 4096;

/// Replication state shared between the ticker, the transport threads,
/// and the replication threads.
#[derive(Debug)]
pub struct ReplShared {
    config: ReplConfig,
    wal_dir: PathBuf,
    role: AtomicU8,
    term: AtomicU64,
    /// Standby: set when the stream hit an unrecoverable ordering gap
    /// and the puller must reconnect to resynchronize.
    resync: AtomicBool,
    self_client: Mutex<String>,
    self_repl: Mutex<String>,
    leader_client: Mutex<Option<String>>,
    leader_repl: Mutex<Option<String>>,
    sinks: Mutex<Vec<Sink>>,
    next_sink_id: AtomicU64,
    /// Highest `have` acknowledged by any standby (sync-mode wait).
    acked: Mutex<u64>,
    ack_signal: Condvar,
    epoch_fps: Mutex<std::collections::VecDeque<(u64, u64, u64)>>,
    /// Standby: channel to the ack-writer thread of the live stream.
    ack_tx: Mutex<Option<mpsc::Sender<Vec<u8>>>>,
    /// Clock reading (see [`Clock::now`]) of the last frame heard from
    /// the primary. A `Duration` since the clock's origin, not an
    /// `Instant`, so the deterministic simulator can drive elections.
    last_heard: Mutex<Duration>,
    clock: Arc<dyn Clock>,
    /// Election timeout after seeded jitter: the configured timeout
    /// scaled by a per-node factor in `[1.0, 1.5)` derived from the
    /// serve RNG seed, so two standbys racing to promote after a primary
    /// death deterministically stagger instead of colliding.
    election_timeout_jittered: Duration,
}

impl ReplShared {
    pub(crate) fn new(
        config: ReplConfig,
        wal_dir: PathBuf,
        clock: Arc<dyn Clock>,
        rng_seed: u64,
    ) -> ReplShared {
        let role = if config.standby_of.is_some() {
            Role::Standby
        } else {
            Role::Primary
        };
        let leader_repl = config.standby_of.clone();
        let election_timeout_jittered = jitter_timeout(config.election_timeout, rng_seed);
        let now = clock.now();
        ReplShared {
            config,
            wal_dir,
            role: AtomicU8::new(role as u8),
            term: AtomicU64::new(0),
            resync: AtomicBool::new(false),
            self_client: Mutex::new(String::new()),
            self_repl: Mutex::new(String::new()),
            leader_client: Mutex::new(None),
            leader_repl: Mutex::new(leader_repl),
            sinks: Mutex::new(Vec::new()),
            next_sink_id: AtomicU64::new(0),
            acked: Mutex::new(0),
            ack_signal: Condvar::new(),
            epoch_fps: Mutex::new(std::collections::VecDeque::new()),
            ack_tx: Mutex::new(None),
            last_heard: Mutex::new(now),
            clock,
            election_timeout_jittered,
        }
    }

    /// The node's replication configuration.
    pub fn config(&self) -> &ReplConfig {
        &self.config
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        Role::from_u8(self.role.load(Ordering::SeqCst))
    }

    pub(crate) fn set_role(&self, role: Role) {
        self.role.store(role as u8, Ordering::SeqCst);
    }

    /// The node's current term.
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    pub(crate) fn set_term(&self, term: u64) {
        self.term.fetch_max(term, Ordering::SeqCst);
    }

    /// Fences this node: it saw evidence of a newer primary (term) or
    /// of its own divergence, and refuses mutations and promotion from
    /// now on. Loud by design — the gauge flips and stays flipped.
    pub(crate) fn fence(&self, term: u64, metrics: &ServeMetrics) {
        self.set_term(term);
        self.set_role(Role::Fenced);
        metrics.fenced.store(1, Ordering::Relaxed);
        self.ack_signal.notify_all();
    }

    /// Standby→primary transition: bumps the term, points the leader
    /// addresses at this node, flips the role, and returns the new term
    /// plus the old leader's replication address (to depose it).
    pub(crate) fn promote(&self, metrics: &ServeMetrics) -> (u64, Option<String>) {
        let term = self.term.load(Ordering::SeqCst) + 1;
        self.term.store(term, Ordering::SeqCst);
        let old_leader = self
            .leader_repl
            .lock()
            .expect("repl lock poisoned")
            .replace(self.self_repl());
        self.set_leader_client(Some(self.self_client()));
        self.set_role(Role::Primary);
        ServeMetrics::bump(&metrics.promotions);
        (term, old_leader)
    }

    pub(crate) fn sync(&self) -> bool {
        self.config.sync
    }

    pub(crate) fn ack_timeout(&self) -> Duration {
        self.config.ack_timeout
    }

    pub(crate) fn set_self_addrs(&self, client: String, repl: String) {
        *self.self_client.lock().expect("repl lock poisoned") = client;
        *self.self_repl.lock().expect("repl lock poisoned") = repl;
    }

    fn self_client(&self) -> String {
        self.self_client.lock().expect("repl lock poisoned").clone()
    }

    pub(crate) fn self_repl(&self) -> String {
        self.self_repl.lock().expect("repl lock poisoned").clone()
    }

    /// The current leader's *client* address, as far as this node knows.
    pub fn leader_client(&self) -> Option<String> {
        self.leader_client
            .lock()
            .expect("repl lock poisoned")
            .clone()
    }

    fn set_leader_client(&self, addr: Option<String>) {
        *self.leader_client.lock().expect("repl lock poisoned") = addr;
    }

    fn leader_repl(&self) -> Option<String> {
        self.leader_repl.lock().expect("repl lock poisoned").clone()
    }

    fn set_leader_repl(&self, addr: Option<String>) {
        *self.leader_repl.lock().expect("repl lock poisoned") = addr;
    }

    fn register_sink(&self) -> SinkHandle {
        let id = self.next_sink_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::sync_channel(SINK_QUEUE);
        let acked = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicBool::new(true));
        self.sinks.lock().expect("repl lock poisoned").push(Sink {
            id,
            tx: tx.clone(),
            acked: Arc::clone(&acked),
            alive: Arc::clone(&alive),
        });
        SinkHandle {
            id,
            rx,
            tx,
            acked,
            alive,
        }
    }

    fn drop_sink(&self, id: u64) {
        self.sinks
            .lock()
            .expect("repl lock poisoned")
            .retain(|s| s.id != id);
        self.ack_signal.notify_all();
    }

    /// Connected (live) standby count.
    pub(crate) fn standby_count(&self) -> u64 {
        self.sinks
            .lock()
            .expect("repl lock poisoned")
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .count() as u64
    }

    /// Records the slowest live standby still trails `next_seq` by.
    pub(crate) fn lag_records(&self, next_seq: u64) -> u64 {
        self.sinks
            .lock()
            .expect("repl lock poisoned")
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .map(|s| next_seq.saturating_sub(s.acked.load(Ordering::SeqCst)))
            .max()
            .unwrap_or(0)
    }

    /// Streams one just-appended record to every live standby. A sink
    /// whose queue is full is dropped (it reconnects and catches up from
    /// the log) — a slow replica must never stall the primary's ticker.
    pub(crate) fn publish_record(&self, seq: u64, event: &MarketEvent) {
        let frame = message(
            "rec",
            vec![
                ("seq", Value::from_u64(seq)),
                ("event", event_to_value(event)),
            ],
        );
        let mut dropped = false;
        self.sinks.lock().expect("repl lock poisoned").retain(|s| {
            if !s.alive.load(Ordering::SeqCst) {
                dropped = true;
                return false;
            }
            match s.tx.try_send(SinkMsg::Rec {
                seq,
                frame: frame.clone(),
            }) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    s.alive.store(false, Ordering::SeqCst);
                    dropped = true;
                    false
                }
            }
        });
        if dropped {
            self.ack_signal.notify_all();
        }
    }

    /// Broadcasts a pre-framed control message (heartbeats).
    pub(crate) fn publish_heartbeat(&self, term: u64, seq: u64) {
        let frame = message(
            "hb",
            vec![
                ("term", Value::from_u64(term)),
                ("seq", Value::from_u64(seq)),
            ],
        );
        self.sinks.lock().expect("repl lock poisoned").retain(|s| {
            s.alive.load(Ordering::SeqCst) && s.tx.try_send(SinkMsg::Raw(frame.clone())).is_ok()
        });
    }

    fn note_ack(&self, have: u64) {
        let mut acked = self.acked.lock().expect("repl lock poisoned");
        if have > *acked {
            *acked = have;
        }
        drop(acked);
        self.ack_signal.notify_all();
    }

    /// Blocks until some standby has applied `target` events, no standby
    /// is connected, or `timeout` lapses.
    pub(crate) fn wait_applied(&self, target: u64, timeout: Duration) -> AckWait {
        let deadline = Instant::now() + timeout;
        let mut acked = self.acked.lock().expect("repl lock poisoned");
        loop {
            if *acked >= target {
                return AckWait::Acked;
            }
            if self.standby_count() == 0 {
                return AckWait::NoStandby;
            }
            let now = Instant::now();
            if now >= deadline {
                return AckWait::TimedOut;
            }
            let (guard, _) = self
                .ack_signal
                .wait_timeout(acked, deadline - now)
                .expect("repl lock poisoned");
            acked = guard;
        }
    }

    /// Records the primary's state fingerprint right after applying the
    /// epoch tick: `have` is the log position after the tick record,
    /// `epoch` the resulting epoch. Keying the ring by log position —
    /// not by the epoch label a standby later *claims* — means a
    /// replica that skipped an idle tick (a perfect mirror of a past
    /// valid state, whose stale epoch self-consistently matches its
    /// stale fingerprint) is still caught: at the same `have` its
    /// reported epoch lags the primary's.
    pub(crate) fn push_epoch_fp(&self, have: u64, epoch: u64, fp: u64) {
        let mut fps = self.epoch_fps.lock().expect("repl lock poisoned");
        fps.push_back((have, epoch, fp));
        while fps.len() > FP_RING {
            fps.pop_front();
        }
    }

    /// The `(epoch, fingerprint)` the primary had after log position
    /// `have`, if that tick is still in the ring.
    fn fp_for_have(&self, have: u64) -> Option<(u64, u64)> {
        self.epoch_fps
            .lock()
            .expect("repl lock poisoned")
            .iter()
            .rev()
            .find(|(h, _, _)| *h == have)
            .map(|(_, e, fp)| (*e, *fp))
    }

    fn set_ack_tx(&self, tx: mpsc::Sender<Vec<u8>>) {
        *self.ack_tx.lock().expect("repl lock poisoned") = Some(tx);
    }

    fn clear_ack_tx(&self) {
        *self.ack_tx.lock().expect("repl lock poisoned") = None;
    }

    /// Standby: queues an apply-acknowledgement (with the per-epoch
    /// state fingerprint when the applied record closed an epoch) for
    /// the ack-writer thread of the live stream, if one is connected.
    pub(crate) fn send_ack(&self, have: u64, epoch_fp: Option<(u64, u64)>) {
        let mut fields = vec![("have", Value::from_u64(have))];
        if let Some((epoch, fp)) = epoch_fp {
            fields.push(("epoch", Value::from_u64(epoch)));
            fields.push(("fp", Value::str(format!("{fp:016x}"))));
        }
        let frame = message("ack", fields);
        if let Some(tx) = self.ack_tx.lock().expect("repl lock poisoned").as_ref() {
            let _ = tx.send(frame);
        }
    }

    pub(crate) fn note_heard(&self) {
        *self.last_heard.lock().expect("repl lock poisoned") = self.clock.now();
    }

    fn silence(&self) -> Duration {
        let heard = *self.last_heard.lock().expect("repl lock poisoned");
        self.clock.now().saturating_sub(heard)
    }

    /// The election timeout this node actually applies: the configured
    /// timeout plus its seeded jitter (see `election_timeout_jittered`).
    pub(crate) fn effective_election_timeout(&self) -> Duration {
        self.election_timeout_jittered
    }

    pub(crate) fn request_resync(&self) {
        self.resync.store(true, Ordering::SeqCst);
    }

    fn take_resync(&self) -> bool {
        self.resync.swap(false, Ordering::SeqCst)
    }
}

/// Scales `timeout` by a deterministic per-seed factor in `[1.0, 1.5)`.
///
/// Identical seeds give identical timeouts (reproducible elections in
/// the simulator); distinct seeds stagger, shrinking the window where
/// two standbys promote simultaneously after a primary death.
fn jitter_timeout(timeout: Duration, rng_seed: u64) -> Duration {
    let frac_q32 = u64::from((crate::shard::mix64(rng_seed ^ 0x00E1_EC71_0471_37E0) >> 32) as u32);
    let base = timeout.as_nanos() as u64;
    // extra = base * frac / 2 where frac ∈ [0, 1) in Q32 fixed point.
    let extra = (((u128::from(base) * u128::from(frac_q32)) >> 32) / 2) as u64;
    Duration::from_nanos(base.saturating_add(extra))
}

// ---------------------------------------------------------------------
// Primary side: accept standbys, catch them up, stream, verify acks.
// ---------------------------------------------------------------------

/// Accept loop of the replication listener. Mirrors the client
/// acceptor: non-blocking accepts, one handler thread per standby,
/// finished handles reaped as it goes.
pub(crate) fn repl_acceptor_loop(
    listener: TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut live = handlers.lock().expect("repl handlers lock poisoned");
            let mut i = 0;
            while i < live.len() {
                if live[i].is_finished() {
                    let _ = live.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("ref-serve-repl".to_string())
                    .spawn(move || handle_standby(stream, &shared))
                    .expect("spawn repl handler");
                handlers
                    .lock()
                    .expect("repl handlers lock poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return,
        }
    }
}

/// Serves one standby connection end to end: handshake, disk catch-up,
/// live streaming (on a dedicated sender thread), and the ack-reading
/// loop with per-epoch fingerprint verification.
fn handle_standby(stream: TcpStream, shared: &Arc<Shared>) {
    let repl = shared.repl.as_ref().expect("repl handler without config");
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut conn = FrameConn::new(stream);

    let Ok(payload) = conn.read_frame_deadline(Duration::from_secs(5)) else {
        return;
    };
    let Some(hello) = parse_message(&payload) else {
        return;
    };
    if kind(&hello) != "hello" {
        return;
    }
    let their_term = hello.get("term").and_then(Value::as_u64).unwrap_or(0);
    let have = hello.get("have_seq").and_then(Value::as_u64).unwrap_or(0);
    let my_term = repl.term();

    if their_term > my_term {
        // Evidence of a newer primary: this node is deposed. Fence
        // before answering so no mutation sneaks through the window.
        repl.fence(their_term, &shared.metrics);
        let _ = writer.write_all(&message(
            "refuse",
            vec![
                ("reason", Value::str("fenced")),
                ("term", Value::from_u64(their_term)),
            ],
        ));
        return;
    }
    if repl.role() != Role::Primary {
        let mut fields = vec![
            ("reason", Value::str("not_primary")),
            ("term", Value::from_u64(my_term)),
        ];
        if let Some(leader) = repl.leader_repl() {
            fields.push(("leader", Value::str(leader)));
        }
        let _ = writer.write_all(&message("refuse", fields));
        return;
    }
    if have > shared.wal_seq.load(Ordering::SeqCst) {
        // The "standby" has more history than this primary: accepting it
        // would mean two divergent pasts. Refuse; it fences itself.
        let _ = writer.write_all(&message(
            "refuse",
            vec![
                ("reason", Value::str("standby_ahead")),
                ("term", Value::from_u64(my_term)),
            ],
        ));
        return;
    }
    if writer
        .write_all(&message(
            "meta",
            vec![
                ("term", Value::from_u64(my_term)),
                ("client_addr", Value::str(repl.self_client())),
            ],
        ))
        .is_err()
    {
        return;
    }

    // Register the live sink *before* reading the log, then stream the
    // disk history directly: every record appended after registration is
    // in the sink queue, everything before the read's end is on disk,
    // and the sender thread skips queue records the disk already
    // covered — no gap, no duplicate.
    let SinkHandle {
        id,
        rx,
        tx,
        acked,
        alive,
    } = repl.register_sink();
    let sent_upto = match catch_up(&mut writer, repl, have) {
        Ok(upto) => upto,
        Err(_) => {
            alive.store(false, Ordering::SeqCst);
            repl.drop_sink(id);
            return;
        }
    };
    let sender = {
        let alive = Arc::clone(&alive);
        std::thread::Builder::new()
            .name("ref-serve-repl-send".to_string())
            .spawn(move || sink_sender(writer, rx, sent_upto, &alive))
            .expect("spawn repl sender")
    };

    ack_loop(&mut conn, shared, repl, &tx, &acked, &alive);

    alive.store(false, Ordering::SeqCst);
    repl.drop_sink(id);
    drop(tx);
    let _ = sender.join();
}

/// Streams the snapshot (when the standby is behind the retained log)
/// and the on-disk records from `have` onward; returns the first
/// sequence *not* covered. Reading the live directory is safe: the
/// ticker is the sole writer and records become visible only whole.
fn catch_up(writer: &mut TcpStream, repl: &ReplShared, have: u64) -> std::io::Result<u64> {
    let (first, events) = wal::read_events(&repl.wal_dir)?;
    let mut from = have;
    if have < first {
        let (seq, snapshot) = wal::newest_checkpoint(&repl.wal_dir)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "standby is behind the retained log and no checkpoint covers the gap",
            )
        })?;
        writer.write_all(&message(
            "snap",
            vec![
                ("seq", Value::from_u64(seq)),
                ("snapshot", Value::str(snapshot)),
            ],
        ))?;
        from = seq;
    }
    for (i, event) in events.iter().enumerate() {
        let seq = first + i as u64;
        if seq < from {
            continue;
        }
        writer.write_all(&message(
            "rec",
            vec![
                ("seq", Value::from_u64(seq)),
                ("event", event_to_value(event)),
            ],
        ))?;
    }
    Ok((first + events.len() as u64).max(from))
}

/// Sender thread of one standby connection: drains the sink queue,
/// skipping records the disk catch-up already shipped.
fn sink_sender(
    mut writer: TcpStream,
    rx: mpsc::Receiver<SinkMsg>,
    mut next_send: u64,
    alive: &AtomicBool,
) {
    loop {
        let msg = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => {
                if !alive.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let frame = match msg {
            SinkMsg::Rec { seq, frame } => {
                if seq < next_send {
                    continue;
                }
                if seq > next_send {
                    // A hole between disk catch-up and the live queue
                    // should be impossible; never paper over it.
                    alive.store(false, Ordering::SeqCst);
                    return;
                }
                next_send = seq + 1;
                frame
            }
            SinkMsg::Raw(frame) => frame,
        };
        if writer.write_all(&frame).is_err() {
            alive.store(false, Ordering::SeqCst);
            return;
        }
    }
}

/// Primary-side ack reader for one standby: tracks progress for the
/// sync-mode wait and verifies the per-epoch state fingerprints.
fn ack_loop(
    conn: &mut FrameConn,
    shared: &Arc<Shared>,
    repl: &Arc<ReplShared>,
    tx: &mpsc::SyncSender<SinkMsg>,
    acked: &AtomicU64,
    alive: &AtomicBool,
) {
    loop {
        if shared.stop.load(Ordering::SeqCst)
            || !alive.load(Ordering::SeqCst)
            || repl.role() != Role::Primary
        {
            return;
        }
        let payload = match conn.read_frame() {
            Ok(Some(payload)) => payload,
            Ok(None) => continue,
            Err(_) => return,
        };
        let Some(msg) = parse_message(&payload) else {
            return;
        };
        if kind(&msg) != "ack" {
            continue;
        }
        let have = msg.get("have").and_then(Value::as_u64).unwrap_or(0);
        acked.store(have, Ordering::SeqCst);
        repl.note_ack(have);
        shared.metrics.repl_lag_records.store(
            repl.lag_records(shared.wal_seq.load(Ordering::SeqCst)),
            Ordering::Relaxed,
        );
        let epoch = msg.get("epoch").and_then(Value::as_u64);
        let fp = msg
            .get("fp")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok());
        if let (Some(epoch), Some(fp)) = (epoch, fp) {
            if let Some((want_epoch, expected)) = repl.fp_for_have(have) {
                if want_epoch != epoch || expected != fp {
                    // The replica's state split from ours. Halt its
                    // replication loudly: count it, tell it (so it
                    // fences itself), drop it. Never promote material.
                    ServeMetrics::bump(&shared.metrics.divergences);
                    let _ = tx.try_send(SinkMsg::Raw(message(
                        "diverged",
                        vec![
                            ("epoch", Value::from_u64(epoch)),
                            ("expected_epoch", Value::from_u64(want_epoch)),
                            ("expected", Value::str(format!("{expected:016x}"))),
                            ("got", Value::str(format!("{fp:016x}"))),
                        ],
                    )));
                    // The sender drains the queued notice before it
                    // observes the flag and exits.
                    alive.store(false, Ordering::SeqCst);
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Standby side: follow the primary, apply through the ticker, promote.
// ---------------------------------------------------------------------

/// Standby puller thread: connect to the primary, hand every frame to
/// the ticker (the sole engine owner) via the bus, send apply-acks, and
/// trigger promotion once the primary goes silent past the election
/// timeout.
pub(crate) fn standby_loop(shared: &Arc<Shared>) {
    let repl = Arc::clone(shared.repl.as_ref().expect("standby loop without config"));
    repl.note_heard(); // boot grace period before any election
    loop {
        if shared.stop.load(Ordering::SeqCst) || repl.role() != Role::Standby {
            return;
        }
        let target = repl
            .leader_repl()
            .or_else(|| repl.config.standby_of.clone());
        if let Some(addr) = target {
            if let Ok(stream) = TcpStream::connect(&addr) {
                follow_primary(shared, &repl, stream, &addr);
            }
        }
        if shared.stop.load(Ordering::SeqCst) || repl.role() != Role::Standby {
            return;
        }
        maybe_auto_promote(shared, &repl);
        if repl.role() != Role::Standby {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn maybe_auto_promote(shared: &Arc<Shared>, repl: &Arc<ReplShared>) {
    if !repl.config.auto_promote || repl.silence() < repl.effective_election_timeout() {
        return;
    }
    // The ticker performs the promotion so role flips are serialized
    // with event application; we just wait for the flip.
    if shared
        .bus
        .push(Class::Control, Item::Repl(ReplCommand::AutoPromote))
        .is_err()
    {
        return;
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline
        && repl.role() == Role::Standby
        && !shared.stop.load(Ordering::SeqCst)
    {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// One connected session against the primary: handshake, then pull
/// frames into the bus until disconnect, role change, or divergence.
fn follow_primary(shared: &Arc<Shared>, repl: &Arc<ReplShared>, stream: TcpStream, addr: &str) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut conn = FrameConn::new(stream);
    if writer
        .write_all(&message(
            "hello",
            vec![
                ("term", Value::from_u64(repl.term())),
                (
                    "have_seq",
                    Value::from_u64(shared.wal_seq.load(Ordering::SeqCst)),
                ),
            ],
        ))
        .is_err()
    {
        return;
    }
    let Ok(payload) = conn.read_frame_deadline(Duration::from_secs(5)) else {
        return;
    };
    let Some(first) = parse_message(&payload) else {
        return;
    };
    match kind(&first) {
        "meta" => {
            let term = first.get("term").and_then(Value::as_u64).unwrap_or(0);
            if term < repl.term() {
                // A stale primary from a previous term; ignore it.
                return;
            }
            repl.set_term(term);
            repl.set_leader_repl(Some(addr.to_string()));
            let leader_client = first
                .get("client_addr")
                .and_then(Value::as_str)
                .map(str::to_string);
            repl.set_leader_client(leader_client);
        }
        "refuse" => {
            match first.get("reason").and_then(Value::as_str) {
                Some("not_primary") => {
                    // Follow the redirect when one is offered; otherwise
                    // fall back to the configured address next round.
                    let hint = first
                        .get("leader")
                        .and_then(Value::as_str)
                        .map(str::to_string);
                    repl.set_leader_repl(hint);
                }
                Some("standby_ahead") => {
                    // Our durable history is *longer* than the primary's:
                    // the pasts diverged and no stream can reconcile
                    // them. Fence rather than serve either history.
                    let term = first.get("term").and_then(Value::as_u64).unwrap_or(0);
                    repl.fence(term.max(repl.term()), &shared.metrics);
                }
                _ => {
                    repl.set_leader_repl(None);
                }
            }
            return;
        }
        _ => return,
    }
    repl.note_heard();

    // Dedicated ack writer so slow ack flushes never delay frame pulls.
    let (ack_tx, ack_rx) = mpsc::channel::<Vec<u8>>();
    repl.set_ack_tx(ack_tx);
    let ack_writer = std::thread::Builder::new()
        .name("ref-serve-repl-ack".to_string())
        .spawn(move || {
            while let Ok(frame) = ack_rx.recv() {
                if writer.write_all(&frame).is_err() {
                    return;
                }
            }
        })
        .expect("spawn repl ack writer");

    loop {
        if shared.stop.load(Ordering::SeqCst) || repl.role() != Role::Standby || repl.take_resync()
        {
            break;
        }
        if shared.bus.depth() > 8192 {
            // The ticker is behind; let TCP back the primary off instead
            // of ballooning the bus.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let payload = match conn.read_frame() {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                if repl.silence() > repl.effective_election_timeout() {
                    // Connected but mute (wedged primary): treat it as
                    // dead and let the election path take over.
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        repl.note_heard();
        let Some(msg) = parse_message(&payload) else {
            break;
        };
        match kind(&msg) {
            "rec" => {
                let seq = msg.get("seq").and_then(Value::as_u64);
                let event = msg.get("event").and_then(|v| value_to_event(v).ok());
                let (Some(seq), Some(event)) = (seq, event) else {
                    break;
                };
                if shared
                    .bus
                    .push(
                        Class::Control,
                        Item::Repl(ReplCommand::Apply { seq, event }),
                    )
                    .is_err()
                {
                    break;
                }
            }
            "snap" => {
                let seq = msg.get("seq").and_then(Value::as_u64);
                let snapshot = msg
                    .get("snapshot")
                    .and_then(Value::as_str)
                    .map(str::to_string);
                let (Some(seq), Some(snapshot)) = (seq, snapshot) else {
                    break;
                };
                if shared
                    .bus
                    .push(
                        Class::Control,
                        Item::Repl(ReplCommand::Restore { seq, snapshot }),
                    )
                    .is_err()
                {
                    break;
                }
            }
            "hb" => {
                let term = msg.get("term").and_then(Value::as_u64).unwrap_or(0);
                if term < repl.term() {
                    break; // stale primary
                }
                repl.set_term(term);
            }
            "diverged" => {
                // The primary proved our state split from its own.
                // Never serve or promote a wrong market: fence.
                repl.fence(repl.term(), &shared.metrics);
                break;
            }
            _ => {}
        }
    }
    repl.clear_ack_tx();
    let _ = ack_writer.join();
}

/// Commands a replication stream injects into the ticker (the sole
/// engine mutator), keeping the standby's apply path identical to the
/// primary's.
#[derive(Debug)]
pub(crate) enum ReplCommand {
    /// Reset engine + WAL to a bootstrap checkpoint from the primary.
    Restore {
        /// Events the snapshot already covers.
        seq: u64,
        /// The snapshot text.
        snapshot: String,
    },
    /// Apply one replicated record.
    Apply {
        /// The record's WAL sequence.
        seq: u64,
        /// The event itself.
        event: MarketEvent,
    },
    /// The election timeout lapsed; promote if still a standby.
    AutoPromote,
}

/// Best-effort depose of an old primary after a promotion: present the
/// new, higher term on its replication listener so it fences itself if
/// it is somehow still alive.
pub(crate) fn fence_notify(addr: String, term: u64) {
    let Ok(mut stream) = TcpStream::connect(&addr) else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(&message(
        "hello",
        vec![
            ("term", Value::from_u64(term)),
            ("have_seq", Value::from_u64(0)),
        ],
    ));
    let mut conn = FrameConn::new(stream);
    let _ = conn.read_frame_deadline(Duration::from_millis(500));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_concatenate() {
        let a = encode_frame(b"hello");
        let b = encode_frame(b"");
        let c = encode_frame(&[0xFF; 300]);
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        stream.extend_from_slice(&c);
        let mut seen = Vec::new();
        let mut off = 0;
        while off < stream.len() {
            match decode_frame(&stream[off..]) {
                FrameDecode::Complete { payload, consumed } => {
                    seen.push(payload);
                    off += consumed;
                }
                other => panic!("unexpected {other:?} at {off}"),
            }
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], b"hello");
        assert!(seen[1].is_empty());
        assert_eq!(seen[2].len(), 300);
    }

    #[test]
    fn truncation_is_incomplete_never_partial() {
        let frame = encode_frame(b"some payload bytes");
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]),
                FrameDecode::Incomplete,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_is_corrupt() {
        let mut frame = encode_frame(b"x");
        frame[0..4].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(decode_frame(&frame), FrameDecode::Corrupt(_)));
    }

    #[test]
    fn payload_bit_flip_is_corrupt() {
        let mut frame = encode_frame(b"payload under test");
        let n = frame.len();
        frame[n - 3] ^= 0x10;
        assert!(matches!(decode_frame(&frame), FrameDecode::Corrupt(_)));
    }

    #[test]
    fn election_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(300);
        assert_eq!(jitter_timeout(base, 7), jitter_timeout(base, 7));
        assert_ne!(jitter_timeout(base, 1), jitter_timeout(base, 2));
        for seed in 0..256u64 {
            let t = jitter_timeout(base, seed);
            assert!(t >= base && t < base + base / 2, "seed {seed}: {t:?}");
        }
    }

    #[test]
    fn roles_round_trip_their_wire_names() {
        for role in [Role::Primary, Role::Standby, Role::Fenced] {
            assert_eq!(Role::from_u8(role as u8), role);
        }
        assert_eq!(Role::Primary.as_str(), "primary");
        assert_eq!(Role::Fenced.as_str(), "fenced");
    }
}
